"""Abstract syntax tree produced by the parser and consumed by the binder.

Plain data classes, no behavior beyond ``__repr__``: the binder turns these
into typed bound expressions and logical operators.  Every node keeps the
source ``position`` of its first token for error messages.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

__all__ = [
    # expressions
    "Expression", "Literal", "ColumnRef", "Star", "UnaryOp", "BinaryOp",
    "IsNull", "InList", "InSubquery", "Between", "Case", "CastExpr",
    "FunctionCall", "Parameter", "LikeExpr", "ExistsExpr", "ScalarSubquery",
    "WindowExpr",
    # table references
    "TableRef", "BaseTableRef", "SubqueryRef", "JoinRef", "TableFunctionRef",
    # statements
    "Statement", "SelectStatement", "SetOpStatement", "InsertStatement",
    "UpdateStatement", "DeleteStatement", "CreateTableStatement",
    "CreateViewStatement", "DropStatement", "TransactionStatement",
    "CheckpointStatement", "PragmaStatement", "CopyStatement",
    "ExplainStatement", "ColumnSpec", "OrderByItem",
]


class _Node:
    position: int = -1

    def __repr__(self) -> str:
        fields = ", ".join(
            f"{name}={getattr(self, name)!r}"
            for name in getattr(self, "__slots__", [])
            if name != "position"
        )
        return f"{type(self).__name__}({fields})"


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expression(_Node):
    __slots__ = ("position",)

    def __init__(self, position: int = -1) -> None:
        self.position = position


class Literal(Expression):
    """A constant: int, float, str, bool, or None."""

    __slots__ = ("value",)

    def __init__(self, value: Any, position: int = -1) -> None:
        super().__init__(position)
        self.value = value


class ColumnRef(Expression):
    """``col`` or ``table.col`` (parts in source order)."""

    __slots__ = ("parts",)

    def __init__(self, parts: List[str], position: int = -1) -> None:
        super().__init__(position)
        self.parts = parts

    @property
    def column_name(self) -> str:
        return self.parts[-1]

    @property
    def table_name(self) -> Optional[str]:
        return self.parts[-2] if len(self.parts) > 1 else None


class Star(Expression):
    """``*`` or ``table.*`` in a select list or COUNT(*)."""

    __slots__ = ("table",)

    def __init__(self, table: Optional[str] = None, position: int = -1) -> None:
        super().__init__(position)
        self.table = table


class UnaryOp(Expression):
    """``-x``, ``+x``, ``NOT x``."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expression, position: int = -1) -> None:
        super().__init__(position)
        self.op = op
        self.operand = operand


class BinaryOp(Expression):
    """Arithmetic, comparison, string concat, AND/OR."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expression, right: Expression,
                 position: int = -1) -> None:
        super().__init__(position)
        self.op = op
        self.left = left
        self.right = right


class IsNull(Expression):
    __slots__ = ("operand", "negated")

    def __init__(self, operand: Expression, negated: bool, position: int = -1) -> None:
        super().__init__(position)
        self.operand = operand
        self.negated = negated


class InList(Expression):
    __slots__ = ("operand", "items", "negated")

    def __init__(self, operand: Expression, items: List[Expression], negated: bool,
                 position: int = -1) -> None:
        super().__init__(position)
        self.operand = operand
        self.items = items
        self.negated = negated


class InSubquery(Expression):
    __slots__ = ("operand", "subquery", "negated")

    def __init__(self, operand: Expression, subquery: "SelectStatement",
                 negated: bool, position: int = -1) -> None:
        super().__init__(position)
        self.operand = operand
        self.subquery = subquery
        self.negated = negated


class Between(Expression):
    __slots__ = ("operand", "low", "high", "negated")

    def __init__(self, operand: Expression, low: Expression, high: Expression,
                 negated: bool, position: int = -1) -> None:
        super().__init__(position)
        self.operand = operand
        self.low = low
        self.high = high
        self.negated = negated


class Case(Expression):
    """``CASE [operand] WHEN .. THEN .. [ELSE ..] END``."""

    __slots__ = ("operand", "whens", "else_result")

    def __init__(self, operand: Optional[Expression],
                 whens: List[Tuple[Expression, Expression]],
                 else_result: Optional[Expression], position: int = -1) -> None:
        super().__init__(position)
        self.operand = operand
        self.whens = whens
        self.else_result = else_result


class CastExpr(Expression):
    """``CAST(x AS TYPE)`` or ``x::TYPE``."""

    __slots__ = ("operand", "type_name")

    def __init__(self, operand: Expression, type_name: str, position: int = -1) -> None:
        super().__init__(position)
        self.operand = operand
        self.type_name = type_name


class FunctionCall(Expression):
    """Scalar or aggregate function call (the binder decides which)."""

    __slots__ = ("name", "args", "distinct")

    def __init__(self, name: str, args: List[Expression], distinct: bool = False,
                 position: int = -1) -> None:
        super().__init__(position)
        self.name = name.lower()
        self.args = args
        self.distinct = distinct


class WindowExpr(Expression):
    """``func(args) OVER (PARTITION BY ... ORDER BY ...)``."""

    __slots__ = ("name", "args", "partition_by", "order_by")

    def __init__(self, name: str, args: List[Expression],
                 partition_by: List[Expression],
                 order_by: List["OrderByItem"], position: int = -1) -> None:
        super().__init__(position)
        self.name = name.lower()
        self.args = args
        self.partition_by = partition_by
        self.order_by = order_by


class Parameter(Expression):
    """A parameter placeholder: positional ``?`` or named ``:name``.

    Positional parameters are numbered left to right from 0 and bound from
    a sequence; named parameters carry ``name`` and are bound from a
    mapping.  The parser rejects mixing both styles in one SQL string.
    """

    __slots__ = ("index", "name")

    def __init__(self, index: int, position: int = -1,
                 name: Optional[str] = None) -> None:
        super().__init__(position)
        self.index = index
        self.name = name


class LikeExpr(Expression):
    __slots__ = ("operand", "pattern", "negated", "case_insensitive", "escape")

    def __init__(self, operand: Expression, pattern: Expression, negated: bool,
                 case_insensitive: bool, position: int = -1,
                 escape: Optional[Expression] = None) -> None:
        super().__init__(position)
        self.operand = operand
        self.pattern = pattern
        self.negated = negated
        self.case_insensitive = case_insensitive
        #: Optional ESCAPE clause expression (must evaluate to one character).
        self.escape = escape


class ExistsExpr(Expression):
    __slots__ = ("subquery", "negated")

    def __init__(self, subquery: "SelectStatement", negated: bool,
                 position: int = -1) -> None:
        super().__init__(position)
        self.subquery = subquery
        self.negated = negated


class ScalarSubquery(Expression):
    __slots__ = ("subquery",)

    def __init__(self, subquery: "SelectStatement", position: int = -1) -> None:
        super().__init__(position)
        self.subquery = subquery


# ---------------------------------------------------------------------------
# Table references
# ---------------------------------------------------------------------------

class TableRef(_Node):
    __slots__ = ("position",)

    def __init__(self, position: int = -1) -> None:
        self.position = position


class BaseTableRef(TableRef):
    """A named table or view, optionally aliased."""

    __slots__ = ("name", "alias")

    def __init__(self, name: str, alias: Optional[str] = None,
                 position: int = -1) -> None:
        super().__init__(position)
        self.name = name
        self.alias = alias


class SubqueryRef(TableRef):
    """``(SELECT ...) AS alias`` in a FROM clause."""

    __slots__ = ("subquery", "alias", "column_aliases")

    def __init__(self, subquery: "Statement", alias: Optional[str],
                 column_aliases: Optional[List[str]] = None,
                 position: int = -1) -> None:
        super().__init__(position)
        self.subquery = subquery
        self.alias = alias
        self.column_aliases = column_aliases


class JoinRef(TableRef):
    """``left <join type> right [ON cond | USING (cols)]``."""

    __slots__ = ("left", "right", "join_type", "condition", "using_columns")

    def __init__(self, left: TableRef, right: TableRef, join_type: str,
                 condition: Optional[Expression] = None,
                 using_columns: Optional[List[str]] = None,
                 position: int = -1) -> None:
        super().__init__(position)
        self.left = left
        self.right = right
        self.join_type = join_type  # inner / left / right / full / cross
        self.condition = condition
        self.using_columns = using_columns


class TableFunctionRef(TableRef):
    """A table-producing function in FROM, e.g. ``read_csv('f.csv')``."""

    __slots__ = ("name", "args", "alias")

    def __init__(self, name: str, args: List[Expression], alias: Optional[str],
                 position: int = -1) -> None:
        super().__init__(position)
        self.name = name.lower()
        self.args = args
        self.alias = alias


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

class Statement(_Node):
    __slots__ = ("position",)

    def __init__(self, position: int = -1) -> None:
        self.position = position


class OrderByItem(_Node):
    __slots__ = ("expression", "ascending", "nulls_first")

    def __init__(self, expression: Expression, ascending: bool = True,
                 nulls_first: Optional[bool] = None) -> None:
        self.expression = expression
        self.ascending = ascending
        #: None means the default: NULLS LAST for ASC, NULLS FIRST for DESC.
        self.nulls_first = nulls_first


class SelectStatement(Statement):
    __slots__ = ("ctes", "select_list", "distinct", "from_clause", "where",
                 "group_by", "having", "order_by", "limit", "offset")

    def __init__(self, position: int = -1) -> None:
        super().__init__(position)
        #: Common table expressions: list of (name, SelectStatement).
        self.ctes: List[Tuple[str, "Statement"]] = []
        #: List of (expression, alias or None).
        self.select_list: List[Tuple[Expression, Optional[str]]] = []
        self.distinct = False
        self.from_clause: Optional[TableRef] = None
        self.where: Optional[Expression] = None
        self.group_by: List[Expression] = []
        self.having: Optional[Expression] = None
        self.order_by: List[OrderByItem] = []
        self.limit: Optional[Expression] = None
        self.offset: Optional[Expression] = None


class SetOpStatement(Statement):
    """``left UNION [ALL] / EXCEPT / INTERSECT right``."""

    __slots__ = ("op", "all", "left", "right", "order_by", "limit", "offset", "ctes")

    def __init__(self, op: str, all_: bool, left: Statement, right: Statement,
                 position: int = -1) -> None:
        super().__init__(position)
        self.op = op  # union / except / intersect
        self.all = all_
        self.left = left
        self.right = right
        self.order_by: List[OrderByItem] = []
        self.limit: Optional[Expression] = None
        self.offset: Optional[Expression] = None
        self.ctes: List[Tuple[str, Statement]] = []


class InsertStatement(Statement):
    __slots__ = ("table", "columns", "values", "select")

    def __init__(self, table: str, columns: Optional[List[str]],
                 values: Optional[List[List[Expression]]],
                 select: Optional[Statement], position: int = -1) -> None:
        super().__init__(position)
        self.table = table
        self.columns = columns
        self.values = values
        self.select = select


class UpdateStatement(Statement):
    __slots__ = ("table", "assignments", "where")

    def __init__(self, table: str, assignments: List[Tuple[str, Expression]],
                 where: Optional[Expression], position: int = -1) -> None:
        super().__init__(position)
        self.table = table
        self.assignments = assignments
        self.where = where


class DeleteStatement(Statement):
    __slots__ = ("table", "where")

    def __init__(self, table: str, where: Optional[Expression],
                 position: int = -1) -> None:
        super().__init__(position)
        self.table = table
        self.where = where


class ColumnSpec(_Node):
    """One column in CREATE TABLE: name, type text, constraints."""

    __slots__ = ("name", "type_name", "nullable", "default")

    def __init__(self, name: str, type_name: str, nullable: bool = True,
                 default: Optional[Expression] = None) -> None:
        self.name = name
        self.type_name = type_name
        self.nullable = nullable
        self.default = default


class CreateTableStatement(Statement):
    __slots__ = ("name", "columns", "if_not_exists", "as_select")

    def __init__(self, name: str, columns: List[ColumnSpec], if_not_exists: bool,
                 as_select: Optional[Statement], position: int = -1) -> None:
        super().__init__(position)
        self.name = name
        self.columns = columns
        self.if_not_exists = if_not_exists
        self.as_select = as_select


class CreateViewStatement(Statement):
    __slots__ = ("name", "select", "sql", "or_replace")

    def __init__(self, name: str, select: Statement, sql: str, or_replace: bool,
                 position: int = -1) -> None:
        super().__init__(position)
        self.name = name
        self.select = select
        self.sql = sql
        self.or_replace = or_replace


class DropStatement(Statement):
    __slots__ = ("kind", "name", "if_exists")

    def __init__(self, kind: str, name: str, if_exists: bool,
                 position: int = -1) -> None:
        super().__init__(position)
        self.kind = kind  # "table" or "view"
        self.name = name
        self.if_exists = if_exists


class TransactionStatement(Statement):
    __slots__ = ("action",)

    def __init__(self, action: str, position: int = -1) -> None:
        super().__init__(position)
        self.action = action  # begin / commit / rollback


class CheckpointStatement(Statement):
    __slots__ = ()


class PragmaStatement(Statement):
    __slots__ = ("name", "value")

    def __init__(self, name: str, value: Any, position: int = -1) -> None:
        super().__init__(position)
        self.name = name
        self.value = value  # None for a read, otherwise the literal value


class CopyStatement(Statement):
    """``COPY table FROM 'file' (options)`` / ``COPY table TO 'file'``."""

    __slots__ = ("table", "path", "direction", "options", "select")

    def __init__(self, table: Optional[str], path: str, direction: str,
                 options: dict, select: Optional[Statement] = None,
                 position: int = -1) -> None:
        super().__init__(position)
        self.table = table
        self.path = path
        self.direction = direction  # "from" or "to"
        self.options = options
        self.select = select


class ExplainStatement(Statement):
    __slots__ = ("statement", "analyze")

    def __init__(self, statement: Statement, position: int = -1) -> None:
        super().__init__(position)
        self.statement = statement
        #: EXPLAIN ANALYZE: execute the plan and report runtime statistics.
        self.analyze = False
