"""Recursive-descent SQL parser.

Supports the SQL surface the paper's workloads require: analytical SELECTs
(joins, aggregation, HAVING, ORDER BY/LIMIT, DISTINCT, set operations,
subqueries, CTEs), the ETL statements (bulk INSERT/UPDATE/DELETE, COPY
FROM/TO for CSV), DDL (CREATE/DROP TABLE/VIEW, CTAS), transaction control,
CHECKPOINT, PRAGMA, and EXPLAIN.

Grammar is expressed directly in the method structure; precedence climbing
handles expressions:

    OR < AND < NOT < comparison/IS/IN/BETWEEN/LIKE < add(+,-,||) <
    mul(*,/,%) < unary(-,+) < postfix(::cast) < primary
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from ..errors import ParserError
from . import ast
from .lexer import Token, TokenType, tokenize

__all__ = ["Parser", "parse", "parse_one"]

_COMPARISON_OPS = {"=", "==", "<>", "!=", "<", "<=", ">", ">="}
_TYPE_START = {"IDENTIFIER"}  # type names are identifiers after CAST ... AS


def parse(sql: str) -> List[ast.Statement]:
    """Parse a SQL script into a list of statements."""
    return Parser(sql).parse_statements()


def parse_one(sql: str) -> ast.Statement:
    """Parse exactly one statement (trailing semicolons allowed)."""
    statements = parse(sql)
    if len(statements) != 1:
        raise ParserError(f"Expected exactly one statement, found {len(statements)}")
    return statements[0]


class Parser:
    def __init__(self, sql: str) -> None:
        self.sql = sql
        self.tokens = tokenize(sql)
        self.index = 0
        self._parameter_count = 0
        #: Parameter styles seen so far ("qmark"/"named"); mixing is an error.
        self._parameter_styles: set = set()

    # -- token helpers ---------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def peek(self, offset: int = 1) -> Token:
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self.index += 1
        return token

    def error(self, message: str, token: Optional[Token] = None) -> ParserError:
        token = token or self.current
        snippet = self.sql[max(0, token.position - 20):token.position + 20]
        return ParserError(f"{message} at position {token.position} (near {snippet!r})",
                           token.position)

    def expect_keyword(self, keyword: str) -> Token:
        if not self.current.is_keyword(keyword):
            raise self.error(f"Expected {keyword}")
        return self.advance()

    def expect_operator(self, operator: str) -> Token:
        if not self.current.is_operator(operator):
            raise self.error(f"Expected {operator!r}")
        return self.advance()

    def accept_keyword(self, *keywords: str) -> Optional[Token]:
        if self.current.is_keyword(*keywords):
            return self.advance()
        return None

    def accept_operator(self, *operators: str) -> Optional[Token]:
        if self.current.is_operator(*operators):
            return self.advance()
        return None

    def expect_identifier(self, what: str = "identifier") -> str:
        token = self.current
        if token.type is TokenType.IDENTIFIER:
            self.advance()
            return token.text
        # Allow non-reserved keywords as identifiers in a pinch.
        if token.type is TokenType.KEYWORD and token.text in (
            "FIRST", "LAST", "TEMP", "TEMPORARY", "KEY", "HEADER", "DELIMITER",
        ):
            self.advance()
            return token.text.lower()
        raise self.error(f"Expected {what}")

    # -- entry points -------------------------------------------------------
    def parse_statements(self) -> List[ast.Statement]:
        statements = []
        while not self.current.type is TokenType.EOF:
            if self.accept_operator(";"):
                continue
            statements.append(self.parse_statement())
            if not self.current.type is TokenType.EOF:
                self.expect_operator(";")
        return statements

    def parse_statement(self) -> ast.Statement:
        token = self.current
        if token.is_keyword("SELECT", "WITH") or token.is_operator("("):
            return self.parse_select_statement()
        if token.is_keyword("INSERT"):
            return self.parse_insert()
        if token.is_keyword("UPDATE"):
            return self.parse_update()
        if token.is_keyword("DELETE"):
            return self.parse_delete()
        if token.is_keyword("CREATE"):
            return self.parse_create()
        if token.is_keyword("DROP"):
            return self.parse_drop()
        if token.is_keyword("BEGIN", "START"):
            self.advance()
            self.accept_keyword("TRANSACTION")
            return ast.TransactionStatement("begin", token.position)
        if token.is_keyword("COMMIT"):
            self.advance()
            return ast.TransactionStatement("commit", token.position)
        if token.is_keyword("ROLLBACK"):
            self.advance()
            return ast.TransactionStatement("rollback", token.position)
        if token.is_keyword("CHECKPOINT"):
            self.advance()
            statement = ast.CheckpointStatement(token.position)
            return statement
        if token.is_keyword("PRAGMA"):
            return self.parse_pragma()
        if token.is_keyword("COPY"):
            return self.parse_copy()
        if token.is_keyword("EXPLAIN"):
            self.advance()
            analyze = bool(self.accept_keyword("ANALYZE"))
            statement = ast.ExplainStatement(self.parse_statement(),
                                             token.position)
            statement.analyze = analyze
            return statement
        raise self.error("Unrecognized statement")

    # -- SELECT -------------------------------------------------------------------
    def parse_select_statement(self) -> ast.Statement:
        """A query expression: CTEs, set operations, ORDER BY/LIMIT."""
        position = self.current.position
        ctes: List[Tuple[str, ast.Statement]] = []
        if self.accept_keyword("WITH"):
            while True:
                name = self.expect_identifier("CTE name")
                self.expect_keyword("AS")
                self.expect_operator("(")
                cte_select = self.parse_select_statement()
                self.expect_operator(")")
                ctes.append((name, cte_select))
                if not self.accept_operator(","):
                    break
        node = self.parse_set_op_tree()
        # ORDER BY / LIMIT apply to the whole set-op tree.
        order_by = self.parse_order_by()
        limit, offset = self.parse_limit_offset()
        if order_by or limit is not None or offset is not None:
            if isinstance(node, ast.SelectStatement) and not node.order_by \
                    and node.limit is None and node.offset is None:
                node.order_by = order_by
                node.limit = limit
                node.offset = offset
            elif isinstance(node, ast.SetOpStatement):
                node.order_by = order_by
                node.limit = limit
                node.offset = offset
            else:
                raise self.error("Conflicting ORDER BY/LIMIT clauses")
        if ctes:
            node.ctes = ctes + list(node.ctes)
        node.position = position
        return node

    def parse_set_op_tree(self) -> ast.Statement:
        left = self.parse_select_core()
        while True:
            token = self.current
            if token.is_keyword("UNION", "EXCEPT", "INTERSECT"):
                op = token.text.lower()
                self.advance()
                all_ = bool(self.accept_keyword("ALL"))
                if not all_:
                    self.accept_keyword("DISTINCT")
                right = self.parse_select_core()
                left = ast.SetOpStatement(op, all_, left, right, token.position)
            else:
                return left

    def parse_select_core(self) -> ast.Statement:
        """One SELECT block, or a parenthesized query expression."""
        if self.current.is_operator("("):
            self.advance()
            inner = self.parse_select_statement()
            self.expect_operator(")")
            return inner
        position = self.expect_keyword("SELECT").position
        statement = ast.SelectStatement(position)
        if self.accept_keyword("DISTINCT"):
            statement.distinct = True
        else:
            self.accept_keyword("ALL")
        # Select list.
        while True:
            expression = self.parse_expression()
            alias = None
            if self.accept_keyword("AS"):
                alias = self.expect_identifier("column alias")
            elif self.current.type is TokenType.IDENTIFIER:
                alias = self.advance().text
            statement.select_list.append((expression, alias))
            if not self.accept_operator(","):
                break
        if self.accept_keyword("FROM"):
            statement.from_clause = self.parse_table_ref()
        if self.accept_keyword("WHERE"):
            statement.where = self.parse_expression()
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            while True:
                statement.group_by.append(self.parse_expression())
                if not self.accept_operator(","):
                    break
        if self.accept_keyword("HAVING"):
            statement.having = self.parse_expression()
        return statement

    def parse_order_by(self) -> List[ast.OrderByItem]:
        items: List[ast.OrderByItem] = []
        if self.current.is_keyword("ORDER"):
            self.advance()
            self.expect_keyword("BY")
            while True:
                expression = self.parse_expression()
                ascending = True
                if self.accept_keyword("ASC"):
                    ascending = True
                elif self.accept_keyword("DESC"):
                    ascending = False
                nulls_first: Optional[bool] = None
                if self.accept_keyword("NULLS"):
                    if self.accept_keyword("FIRST"):
                        nulls_first = True
                    else:
                        self.expect_keyword("LAST")
                        nulls_first = False
                items.append(ast.OrderByItem(expression, ascending, nulls_first))
                if not self.accept_operator(","):
                    break
        return items

    def parse_limit_offset(self):
        limit = offset = None
        if self.accept_keyword("LIMIT"):
            limit = self.parse_expression()
        if self.accept_keyword("OFFSET"):
            offset = self.parse_expression()
        return limit, offset

    # -- FROM clause ------------------------------------------------------------------
    def parse_table_ref(self) -> ast.TableRef:
        left = self.parse_single_table_ref()
        while True:
            token = self.current
            if token.is_operator(","):
                self.advance()
                right = self.parse_single_table_ref()
                left = ast.JoinRef(left, right, "cross", position=token.position)
            elif token.is_keyword("CROSS"):
                self.advance()
                self.expect_keyword("JOIN")
                right = self.parse_single_table_ref()
                left = ast.JoinRef(left, right, "cross", position=token.position)
            elif token.is_keyword("JOIN", "INNER", "LEFT", "RIGHT", "FULL"):
                join_type = "inner"
                if token.is_keyword("LEFT"):
                    join_type = "left"
                    self.advance()
                    self.accept_keyword("OUTER")
                elif token.is_keyword("RIGHT"):
                    join_type = "right"
                    self.advance()
                    self.accept_keyword("OUTER")
                elif token.is_keyword("FULL"):
                    join_type = "full"
                    self.advance()
                    self.accept_keyword("OUTER")
                elif token.is_keyword("INNER"):
                    self.advance()
                self.expect_keyword("JOIN")
                right = self.parse_single_table_ref()
                condition = None
                using_columns = None
                if self.accept_keyword("ON"):
                    condition = self.parse_expression()
                elif self.accept_keyword("USING"):
                    self.expect_operator("(")
                    using_columns = []
                    while True:
                        using_columns.append(self.expect_identifier("column name"))
                        if not self.accept_operator(","):
                            break
                    self.expect_operator(")")
                else:
                    raise self.error("JOIN requires ON or USING")
                left = ast.JoinRef(left, right, join_type, condition, using_columns,
                                   token.position)
            else:
                return left

    def parse_single_table_ref(self) -> ast.TableRef:
        token = self.current
        if token.is_operator("("):
            self.advance()
            subquery = self.parse_select_statement()
            self.expect_operator(")")
            alias, column_aliases = self.parse_table_alias()
            return ast.SubqueryRef(subquery, alias, column_aliases, token.position)
        if token.type is TokenType.STRING:
            # Bare 'file.csv' in FROM scans the file directly (paper §2:
            # "the database can directly scan existing files (e.g. CSV)").
            self.advance()
            alias, _ = self.parse_table_alias()
            return ast.TableFunctionRef(
                "read_csv", [ast.Literal(token.text, token.position)], alias,
                token.position,
            )
        name = self.expect_identifier("table name")
        if self.current.is_operator("("):
            self.advance()
            args: List[ast.Expression] = []
            if not self.current.is_operator(")"):
                while True:
                    args.append(self.parse_expression())
                    if not self.accept_operator(","):
                        break
            self.expect_operator(")")
            alias, _ = self.parse_table_alias()
            return ast.TableFunctionRef(name, args, alias, token.position)
        alias, _ = self.parse_table_alias()
        return ast.BaseTableRef(name, alias, token.position)

    def parse_table_alias(self):
        alias = None
        column_aliases = None
        if self.accept_keyword("AS"):
            alias = self.expect_identifier("alias")
        elif self.current.type is TokenType.IDENTIFIER:
            alias = self.advance().text
        if alias is not None and self.current.is_operator("("):
            self.advance()
            column_aliases = []
            while True:
                column_aliases.append(self.expect_identifier("column alias"))
                if not self.accept_operator(","):
                    break
            self.expect_operator(")")
        return alias, column_aliases

    # -- DML -------------------------------------------------------------------------
    def parse_insert(self) -> ast.InsertStatement:
        position = self.expect_keyword("INSERT").position
        self.expect_keyword("INTO")
        table = self.expect_identifier("table name")
        columns = None
        if self.current.is_operator("("):
            self.advance()
            columns = []
            while True:
                columns.append(self.expect_identifier("column name"))
                if not self.accept_operator(","):
                    break
            self.expect_operator(")")
        if self.accept_keyword("VALUES"):
            values = []
            while True:
                self.expect_operator("(")
                row = []
                while True:
                    row.append(self.parse_expression())
                    if not self.accept_operator(","):
                        break
                self.expect_operator(")")
                values.append(row)
                if not self.accept_operator(","):
                    break
            return ast.InsertStatement(table, columns, values, None, position)
        select = self.parse_select_statement()
        return ast.InsertStatement(table, columns, None, select, position)

    def parse_update(self) -> ast.UpdateStatement:
        position = self.expect_keyword("UPDATE").position
        table = self.expect_identifier("table name")
        self.expect_keyword("SET")
        assignments = []
        while True:
            column = self.expect_identifier("column name")
            self.expect_operator("=")
            assignments.append((column, self.parse_expression()))
            if not self.accept_operator(","):
                break
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expression()
        return ast.UpdateStatement(table, assignments, where, position)

    def parse_delete(self) -> ast.DeleteStatement:
        position = self.expect_keyword("DELETE").position
        self.expect_keyword("FROM")
        table = self.expect_identifier("table name")
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expression()
        return ast.DeleteStatement(table, where, position)

    # -- DDL ------------------------------------------------------------------------
    def parse_create(self) -> ast.Statement:
        position = self.expect_keyword("CREATE").position
        or_replace = False
        if self.accept_keyword("OR"):
            self.expect_keyword("REPLACE")
            or_replace = True
        self.accept_keyword("TEMPORARY", "TEMP")
        if self.accept_keyword("VIEW"):
            name = self.expect_identifier("view name")
            self.expect_keyword("AS")
            select_start = self.current.position
            select = self.parse_select_statement()
            select_end = (self.current.position
                          if self.current.type is not TokenType.EOF else len(self.sql))
            sql = self.sql[select_start:select_end].strip()
            return ast.CreateViewStatement(name, select, sql, or_replace, position)
        self.expect_keyword("TABLE")
        if_not_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("NOT")
            if not self.current.is_keyword("EXISTS"):
                raise self.error("Expected EXISTS")
            self.advance()
            if_not_exists = True
        name = self.expect_identifier("table name")
        if self.accept_keyword("AS"):
            select = self.parse_select_statement()
            return ast.CreateTableStatement(name, [], if_not_exists, select, position)
        self.expect_operator("(")
        columns = []
        while True:
            columns.append(self.parse_column_spec())
            if not self.accept_operator(","):
                break
        self.expect_operator(")")
        return ast.CreateTableStatement(name, columns, if_not_exists, None, position)

    def parse_column_spec(self) -> ast.ColumnSpec:
        name = self.expect_identifier("column name")
        type_name = self.parse_type_name()
        nullable = True
        default = None
        while True:
            if self.accept_keyword("NOT"):
                self.expect_keyword("NULL")
                nullable = False
            elif self.current.is_keyword("NULL"):
                self.advance()
                nullable = True
            elif self.accept_keyword("DEFAULT"):
                default = self.parse_expression()
            elif self.accept_keyword("PRIMARY"):
                self.expect_keyword("KEY")
                nullable = False  # PRIMARY KEY implies NOT NULL; no index built
            elif self.current.is_keyword("UNIQUE"):
                self.advance()
            else:
                break
        return ast.ColumnSpec(name, type_name, nullable, default)

    def parse_type_name(self) -> str:
        token = self.current
        if token.type is not TokenType.IDENTIFIER:
            raise self.error("Expected a type name")
        self.advance()
        name = token.text
        # DOUBLE PRECISION-style two-word names.
        if self.current.type is TokenType.IDENTIFIER and \
                self.current.text.upper() in ("PRECISION", "VARYING"):
            self.advance()
        # Parenthesized width: VARCHAR(32), DECIMAL(10, 2).
        if self.current.is_operator("("):
            depth = 0
            parts = [name]
            while True:
                token = self.advance()
                parts.append(token.text)
                if token.is_operator("("):
                    depth += 1
                elif token.is_operator(")"):
                    depth -= 1
                    if depth == 0:
                        break
                elif token.type is TokenType.EOF:
                    raise self.error("Unterminated type parameter list")
            name = "".join(parts)
        return name

    def parse_drop(self) -> ast.DropStatement:
        position = self.expect_keyword("DROP").position
        if self.accept_keyword("VIEW"):
            kind = "view"
        else:
            self.expect_keyword("TABLE")
            kind = "table"
        if_exists = False
        if self.accept_keyword("IF"):
            if not self.current.is_keyword("EXISTS"):
                raise self.error("Expected EXISTS")
            self.advance()
            if_exists = True
        name = self.expect_identifier(f"{kind} name")
        return ast.DropStatement(kind, name, if_exists, position)

    # -- misc statements ------------------------------------------------------------
    def parse_pragma(self) -> ast.PragmaStatement:
        position = self.expect_keyword("PRAGMA").position
        name = self.expect_identifier("pragma name")
        value: Any = None
        if self.accept_operator("="):
            token = self.current
            if token.type is TokenType.NUMBER:
                self.advance()
                value = _parse_number(token.text)
            elif token.type is TokenType.STRING:
                self.advance()
                value = token.text
            elif token.is_keyword("TRUE"):
                self.advance()
                value = True
            elif token.is_keyword("FALSE"):
                self.advance()
                value = False
            elif token.type is TokenType.IDENTIFIER:
                self.advance()
                value = token.text
            else:
                raise self.error("Expected a PRAGMA value")
        elif self.current.is_operator("("):
            self.advance()
            token = self.advance()
            value = token.text if token.type is not TokenType.NUMBER \
                else _parse_number(token.text)
            self.expect_operator(")")
        return ast.PragmaStatement(name, value, position)

    def parse_copy(self) -> ast.CopyStatement:
        position = self.expect_keyword("COPY").position
        select = None
        table = None
        if self.current.is_operator("("):
            self.advance()
            select = self.parse_select_statement()
            self.expect_operator(")")
        else:
            table = self.expect_identifier("table name")
        if self.accept_keyword("FROM"):
            direction = "from"
        else:
            self.expect_keyword("TO")
            direction = "to"
        path_token = self.current
        if path_token.type is not TokenType.STRING:
            raise self.error("Expected a quoted file path")
        self.advance()
        options = self.parse_copy_options()
        return ast.CopyStatement(table, path_token.text, direction, options,
                                 select, position)

    def parse_copy_options(self) -> dict:
        options: dict = {}
        if self.accept_operator("("):
            while True:
                token = self.current
                if token.is_keyword("HEADER"):
                    self.advance()
                    if self.current.type in (TokenType.KEYWORD, TokenType.IDENTIFIER) \
                            and self.current.text.upper() in ("TRUE", "FALSE"):
                        options["header"] = self.advance().text.upper() == "TRUE"
                    else:
                        options["header"] = True
                elif token.is_keyword("DELIMITER"):
                    self.advance()
                    value = self.current
                    if value.type is not TokenType.STRING:
                        raise self.error("DELIMITER requires a quoted string")
                    self.advance()
                    options["delimiter"] = value.text
                elif token.type is TokenType.IDENTIFIER:
                    name = self.advance().text.lower()
                    if self.current.type is TokenType.STRING:
                        options[name] = self.advance().text
                    elif self.current.type is TokenType.NUMBER:
                        options[name] = _parse_number(self.advance().text)
                    elif self.current.is_keyword("TRUE", "FALSE"):
                        options[name] = self.advance().text == "TRUE"
                    else:
                        options[name] = True
                else:
                    raise self.error("Bad COPY option")
                if not self.accept_operator(","):
                    break
            self.expect_operator(")")
        return options

    # -- expressions --------------------------------------------------------------
    def parse_expression(self) -> ast.Expression:
        return self.parse_or()

    def parse_or(self) -> ast.Expression:
        left = self.parse_and()
        while self.current.is_keyword("OR"):
            token = self.advance()
            left = ast.BinaryOp("or", left, self.parse_and(), token.position)
        return left

    def parse_and(self) -> ast.Expression:
        left = self.parse_not()
        while self.current.is_keyword("AND"):
            token = self.advance()
            left = ast.BinaryOp("and", left, self.parse_not(), token.position)
        return left

    def parse_not(self) -> ast.Expression:
        if self.current.is_keyword("NOT"):
            token = self.advance()
            return ast.UnaryOp("not", self.parse_not(), token.position)
        return self.parse_comparison()

    def parse_comparison(self) -> ast.Expression:
        left = self.parse_additive()
        while True:
            token = self.current
            if token.type is TokenType.OPERATOR and token.text in _COMPARISON_OPS:
                self.advance()
                op = {"==": "=", "!=": "<>"}.get(token.text, token.text)
                right = self.parse_additive()
                left = ast.BinaryOp(op, left, right, token.position)
                continue
            negated = False
            lookahead = token
            if token.is_keyword("NOT") and self.peek().is_keyword(
                    "IN", "BETWEEN", "LIKE", "ILIKE"):
                self.advance()
                negated = True
                lookahead = self.current
            if lookahead.is_keyword("IS"):
                self.advance()
                is_negated = bool(self.accept_keyword("NOT"))
                self.expect_keyword("NULL")
                left = ast.IsNull(left, is_negated, lookahead.position)
                continue
            if lookahead.is_keyword("IN"):
                self.advance()
                self.expect_operator("(")
                if self.current.is_keyword("SELECT", "WITH"):
                    subquery = self.parse_select_statement()
                    self.expect_operator(")")
                    left = ast.InSubquery(left, subquery, negated, lookahead.position)
                else:
                    items = []
                    while True:
                        items.append(self.parse_expression())
                        if not self.accept_operator(","):
                            break
                    self.expect_operator(")")
                    left = ast.InList(left, items, negated, lookahead.position)
                continue
            if lookahead.is_keyword("BETWEEN"):
                self.advance()
                low = self.parse_additive()
                self.expect_keyword("AND")
                high = self.parse_additive()
                left = ast.Between(left, low, high, negated, lookahead.position)
                continue
            if lookahead.is_keyword("LIKE", "ILIKE"):
                case_insensitive = lookahead.text == "ILIKE"
                self.advance()
                pattern = self.parse_additive()
                escape = None
                if self.current.is_keyword("ESCAPE"):
                    self.advance()
                    escape = self.parse_additive()
                left = ast.LikeExpr(left, pattern, negated, case_insensitive,
                                    lookahead.position, escape=escape)
                continue
            if negated:
                raise self.error("Expected IN, BETWEEN, or LIKE after NOT")
            return left

    def parse_additive(self) -> ast.Expression:
        left = self.parse_multiplicative()
        while self.current.is_operator("+", "-", "||"):
            token = self.advance()
            op = {"+": "+", "-": "-", "||": "concat"}[token.text]
            left = ast.BinaryOp(op, left, self.parse_multiplicative(), token.position)
        return left

    def parse_multiplicative(self) -> ast.Expression:
        left = self.parse_unary()
        while self.current.is_operator("*", "/", "%"):
            token = self.advance()
            left = ast.BinaryOp(token.text, left, self.parse_unary(), token.position)
        return left

    def parse_unary(self) -> ast.Expression:
        token = self.current
        if token.is_operator("-"):
            self.advance()
            return ast.UnaryOp("-", self.parse_unary(), token.position)
        if token.is_operator("+"):
            self.advance()
            return self.parse_unary()
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expression:
        expression = self.parse_primary()
        while self.current.is_operator("::"):
            token = self.advance()
            type_name = self.parse_type_name()
            expression = ast.CastExpr(expression, type_name, token.position)
        return expression

    def parse_primary(self) -> ast.Expression:
        token = self.current
        if token.type is TokenType.NUMBER:
            self.advance()
            return ast.Literal(_parse_number(token.text), token.position)
        if token.type is TokenType.STRING:
            self.advance()
            return ast.Literal(token.text, token.position)
        if token.type is TokenType.PARAMETER:
            self.advance()
            name = None if token.text == "?" else token.text[1:]
            self._parameter_styles.add("qmark" if name is None else "named")
            if len(self._parameter_styles) > 1:
                raise ParserError(
                    "Cannot mix '?' and ':name' parameter styles in one "
                    "SQL string", token.position)
            parameter = ast.Parameter(self._parameter_count, token.position,
                                      name=name)
            self._parameter_count += 1
            return parameter
        if token.is_keyword("NULL"):
            self.advance()
            return ast.Literal(None, token.position)
        if token.is_keyword("TRUE"):
            self.advance()
            return ast.Literal(True, token.position)
        if token.is_keyword("FALSE"):
            self.advance()
            return ast.Literal(False, token.position)
        if token.is_keyword("CASE"):
            return self.parse_case()
        if token.is_keyword("CAST"):
            self.advance()
            self.expect_operator("(")
            operand = self.parse_expression()
            self.expect_keyword("AS")
            type_name = self.parse_type_name()
            self.expect_operator(")")
            return ast.CastExpr(operand, type_name, token.position)
        if token.is_keyword("EXISTS"):
            self.advance()
            self.expect_operator("(")
            subquery = self.parse_select_statement()
            self.expect_operator(")")
            return ast.ExistsExpr(subquery, False, token.position)
        if token.is_operator("*"):
            self.advance()
            return ast.Star(None, token.position)
        if token.is_operator("("):
            self.advance()
            if self.current.is_keyword("SELECT", "WITH"):
                subquery = self.parse_select_statement()
                self.expect_operator(")")
                return ast.ScalarSubquery(subquery, token.position)
            expression = self.parse_expression()
            self.expect_operator(")")
            return expression
        if token.type is TokenType.IDENTIFIER:
            return self.parse_identifier_expression()
        # Soft keywords (FIRST, LAST, ...) may still name functions/columns.
        if token.type is TokenType.KEYWORD and token.text in (
                "FIRST", "LAST", "KEY", "HEADER", "DELIMITER", "REPLACE",
                "LEFT", "RIGHT"):
            token = Token(TokenType.IDENTIFIER, token.text.lower(),
                          token.position)
            self.tokens[self.index] = token
            return self.parse_identifier_expression()
        raise self.error("Expected an expression")

    def parse_identifier_expression(self) -> ast.Expression:
        token = self.advance()
        parts = [token.text]
        # Function call?
        if self.current.is_operator("(") and len(parts) == 1:
            self.advance()
            distinct = bool(self.accept_keyword("DISTINCT"))
            args: List[ast.Expression] = []
            if not self.current.is_operator(")"):
                while True:
                    if self.current.is_operator("*"):
                        star = self.advance()
                        args.append(ast.Star(None, star.position))
                    else:
                        args.append(self.parse_expression())
                    if not self.accept_operator(","):
                        break
            self.expect_operator(")")
            if self.current.is_keyword("OVER"):
                if distinct:
                    raise self.error("DISTINCT is not supported in window "
                                     "functions")
                return self.parse_over_clause(token, args)
            return ast.FunctionCall(token.text, args, distinct, token.position)
        # Dotted path: table.column or table.*
        while self.current.is_operator("."):
            self.advance()
            if self.current.is_operator("*"):
                self.advance()
                return ast.Star(parts[-1], token.position)
            parts.append(self.expect_identifier("column name"))
        return ast.ColumnRef(parts, token.position)

    def parse_over_clause(self, function_token: Token,
                          args: List[ast.Expression]) -> ast.Expression:
        """``OVER (PARTITION BY ... ORDER BY ...)`` after a function call."""
        self.expect_keyword("OVER")
        self.expect_operator("(")
        partition_by: List[ast.Expression] = []
        if self.accept_keyword("PARTITION"):
            self.expect_keyword("BY")
            while True:
                partition_by.append(self.parse_expression())
                if not self.accept_operator(","):
                    break
        order_by = self.parse_order_by()
        self.expect_operator(")")
        return ast.WindowExpr(function_token.text, args, partition_by,
                              order_by, function_token.position)

    def parse_case(self) -> ast.Expression:
        token = self.expect_keyword("CASE")
        operand = None
        if not self.current.is_keyword("WHEN"):
            operand = self.parse_expression()
        whens = []
        while self.accept_keyword("WHEN"):
            condition = self.parse_expression()
            self.expect_keyword("THEN")
            result = self.parse_expression()
            whens.append((condition, result))
        if not whens:
            raise self.error("CASE requires at least one WHEN")
        else_result = None
        if self.accept_keyword("ELSE"):
            else_result = self.parse_expression()
        self.expect_keyword("END")
        return ast.Case(operand, whens, else_result, token.position)


def _parse_number(text: str):
    if "." in text or "e" in text or "E" in text:
        return float(text)
    return int(text)
