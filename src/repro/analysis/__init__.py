"""quacklint: the engine-aware static analyzer for the QuackDB reproduction.

The paper's pillars -- vectorized execution, transfer efficiency,
resilience, and cooperation -- are invariants of this codebase, and the
morsel-driven executor added one more (thread-safety of shared engine
state).  This package enforces them statically:

* rule engine + per-rule suppression comments: :mod:`repro.analysis.core`
* thread-safety registry seeded from the executor's shared classes:
  :mod:`repro.analysis.registry`
* the five rule families (QLC/QLV/QLZ/QLE/QLR): :mod:`repro.analysis.rules`
* ``python -m repro.analysis src/repro`` CLI, exits non-zero on findings:
  :mod:`repro.analysis.__main__`
"""

from __future__ import annotations

from .core import (
    AnalysisConfig,
    FileContext,
    Rule,
    Violation,
    analyze_paths,
    analyze_source,
    package_path,
)
from .config import find_pyproject, load_config
from .registry import SharedClassSpec, ThreadSafetyRegistry
from .rules import ALL_RULES, all_rule_ids

__all__ = [
    "AnalysisConfig",
    "FileContext",
    "Rule",
    "Violation",
    "analyze_paths",
    "analyze_source",
    "package_path",
    "find_pyproject",
    "load_config",
    "SharedClassSpec",
    "ThreadSafetyRegistry",
    "ALL_RULES",
    "all_rule_ids",
]
