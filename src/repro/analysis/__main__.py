"""CLI: ``python -m repro.analysis [paths...]``.

Exit codes: 0 clean, 1 violations found, 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from .config import load_config
from .core import analyze_paths, iter_python_files
from .rules import all_rule_ids


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="quacklint: engine-aware static analysis for the "
                    "QuackDB reproduction",
    )
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to analyze "
                             "(default: src/repro, else .)")
    parser.add_argument("--disable", action="append", default=[],
                        metavar="RULE",
                        help="disable a rule id or family prefix "
                             "(repeatable)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list every rule id and exit")
    parser.add_argument("--format", choices=("text", "json", "github"),
                        default="text", dest="output_format",
                        help="output format: human-readable text (default), "
                             "a structured JSON report, or GitHub Actions "
                             "::error annotations")
    parser.add_argument("--json", action="store_const", const="json",
                        dest="output_format",
                        help="alias for --format json")
    parser.add_argument("--config", default=None, metavar="PYPROJECT",
                        help="explicit pyproject.toml with a "
                             "[tool.quacklint] table")
    parser.add_argument("--fail-on", choices=("error", "warning"),
                        default="warning", dest="fail_on",
                        help="minimum severity that fails the run: "
                             "'warning' (default) exits 1 on any finding, "
                             "'error' reports warnings but exits 0 unless "
                             "an error-severity violation was found")
    parser.add_argument("--check-manifest", action="store_true",
                        help="verify the committed kernel capability "
                             "manifest against a fresh analysis of the "
                             "registered kernels and exit (non-zero on "
                             "drift or contract violations)")
    parser.add_argument("--write-manifest", action="store_true",
                        help="re-analyze the registered kernels, write the "
                             "kernel capability manifest, and exit")
    return parser


def _run_manifest_check() -> int:
    from .kernelcheck import MANIFEST_PATH, check_manifest, \
        cross_check_declarations

    problems = check_manifest()
    declaration_problems = cross_check_declarations()
    for problem in problems:
        print(f"kernelcheck: manifest drift: {problem}", file=sys.stderr)
    for problem in declaration_problems:
        print(f"kernelcheck: declaration mismatch: {problem}",
              file=sys.stderr)
    if problems or declaration_problems:
        print(f"kernelcheck: {len(problems) + len(declaration_problems)} "
              f"problem(s); regenerate with --write-manifest",
              file=sys.stderr)
        return 1
    print(f"kernelcheck: manifest up to date ({MANIFEST_PATH})")
    return 0


def _run_manifest_write() -> int:
    from .kernelcheck import cross_check_declarations, manifest_entries, \
        write_manifest

    path = write_manifest()
    print(f"kernelcheck: wrote {len(manifest_entries())} kernel facts "
          f"to {path}")
    declaration_problems = cross_check_declarations()
    for problem in declaration_problems:
        print(f"kernelcheck: declaration mismatch: {problem}",
              file=sys.stderr)
    return 1 if declaration_problems else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule_id, description in sorted(all_rule_ids().items()):
            print(f"{rule_id}  {description}")
        return 0

    if options.check_manifest:
        return _run_manifest_check()
    if options.write_manifest:
        return _run_manifest_write()

    paths: List[str] = list(options.paths or [])
    if not paths:
        paths = ["src/repro"] if os.path.isdir("src/repro") else ["."]
    for path in paths:
        if not os.path.exists(path):
            print(f"quacklint: path does not exist: {path}", file=sys.stderr)
            return 2

    config = load_config(pyproject_path=options.config, start=paths[0])
    if options.disable:
        config.disabled_rules = tuple(config.disabled_rules) \
            + tuple(options.disable)

    violations = analyze_paths(paths, config)
    scanned = sum(1 for _ in iter_python_files(paths))
    errors = [v for v in violations if v.severity == "error"]
    warnings = [v for v in violations if v.severity != "error"]

    if options.output_format == "json":
        print(json.dumps({
            "violations": [violation.__dict__ for violation in violations],
            "files_scanned": scanned,
            "files_flagged": len({v.path for v in violations}),
            "violation_count": len(violations),
            "error_count": len(errors),
            "warning_count": len(warnings),
        }, indent=2))
    elif options.output_format == "github":
        # GitHub Actions workflow-command annotations: one ::error (or
        # ::warning) line per violation, surfaced inline on the PR diff.
        # Newlines/percent in the message must be URL-style escaped per
        # the Actions spec.
        for violation in violations:
            message = (violation.message.replace("%", "%25")
                       .replace("\r", "%0D").replace("\n", "%0A"))
            command = "error" if violation.severity == "error" else "warning"
            print(f"::{command} file={violation.path},line={violation.line},"
                  f"col={violation.col + 1},title={violation.rule}::"
                  f"{message}")
    else:
        for violation in violations:
            print(violation.render())
        noun = "violation" if len(violations) == 1 else "violations"
        flagged_files = len({violation.path for violation in violations})
        breakdown = f" ({len(errors)} errors, {len(warnings)} warnings)" \
            if warnings else ""
        print(f"quacklint: {len(violations)} {noun}{breakdown} in "
              f"{flagged_files} file(s) ({scanned} files scanned)")
    failing = errors if options.fail_on == "error" else violations
    return 1 if failing else 0


if __name__ == "__main__":
    sys.exit(main())
