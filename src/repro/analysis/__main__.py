"""CLI: ``python -m repro.analysis [paths...]``.

Exit codes: 0 clean, 1 violations found, 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from .config import load_config
from .core import analyze_paths, iter_python_files
from .rules import all_rule_ids


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="quacklint: engine-aware static analysis for the "
                    "QuackDB reproduction",
    )
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to analyze "
                             "(default: src/repro, else .)")
    parser.add_argument("--disable", action="append", default=[],
                        metavar="RULE",
                        help="disable a rule id or family prefix "
                             "(repeatable)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list every rule id and exit")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit violations as JSON")
    parser.add_argument("--config", default=None, metavar="PYPROJECT",
                        help="explicit pyproject.toml with a "
                             "[tool.quacklint] table")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule_id, description in sorted(all_rule_ids().items()):
            print(f"{rule_id}  {description}")
        return 0

    paths: List[str] = list(options.paths or [])
    if not paths:
        paths = ["src/repro"] if os.path.isdir("src/repro") else ["."]
    for path in paths:
        if not os.path.exists(path):
            print(f"quacklint: path does not exist: {path}", file=sys.stderr)
            return 2

    config = load_config(pyproject_path=options.config, start=paths[0])
    if options.disable:
        config.disabled_rules = tuple(config.disabled_rules) \
            + tuple(options.disable)

    violations = analyze_paths(paths, config)
    scanned = sum(1 for _ in iter_python_files(paths))

    if options.as_json:
        print(json.dumps([violation.__dict__ for violation in violations],
                         indent=2))
    else:
        for violation in violations:
            print(violation.render())
        noun = "violation" if len(violations) == 1 else "violations"
        flagged_files = len({violation.path for violation in violations})
        print(f"quacklint: {len(violations)} {noun} in {flagged_files} "
              f"file(s) ({scanned} files scanned)")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
