"""Load ``[tool.quacklint]`` configuration from ``pyproject.toml``.

Recognized keys::

    [tool.quacklint]
    disable = ["QLE002"]               # rule ids (or prefixes) to turn off
    exclude = ["repro/baselines/"]     # path fragments to skip entirely

    [tool.quacklint.scopes]            # extra scope prefixes per rule family
    vectorization = ["repro/etl/"]

On interpreters without :mod:`tomllib` (< 3.11) configuration is skipped
and the built-in defaults apply; the analyzer itself has no third-party
dependencies by design.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

from .core import AnalysisConfig

try:
    import tomllib
except ImportError:  # pragma: no cover - py<3.11 fallback
    tomllib = None  # type: ignore[assignment]

__all__ = ["find_pyproject", "load_config"]


def find_pyproject(start: str) -> Optional[str]:
    """Nearest ``pyproject.toml`` at or above ``start``."""
    current = os.path.abspath(start)
    if os.path.isfile(current):
        current = os.path.dirname(current)
    while True:
        candidate = os.path.join(current, "pyproject.toml")
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(current)
        if parent == current:
            return None
        current = parent


def _read_tool_table(pyproject_path: str) -> Dict[str, Any]:
    if tomllib is None:
        return {}
    try:
        with open(pyproject_path, "rb") as handle:
            data = tomllib.load(handle)
    except (OSError, ValueError):
        return {}
    tool = data.get("tool", {})
    section = tool.get("quacklint", {}) if isinstance(tool, dict) else {}
    return section if isinstance(section, dict) else {}


def load_config(pyproject_path: Optional[str] = None,
                start: Optional[str] = None) -> AnalysisConfig:
    """Build an :class:`AnalysisConfig` from defaults + pyproject overrides."""
    defaults = AnalysisConfig()
    if pyproject_path is None and start is not None:
        pyproject_path = find_pyproject(start)
    if pyproject_path is None:
        return defaults
    section = _read_tool_table(pyproject_path)
    if not section:
        return defaults
    disable = tuple(str(entry) for entry in section.get("disable", ()))
    exclude = tuple(str(entry) for entry in
                    section.get("exclude", defaults.exclude))
    scopes_raw = section.get("scopes", {})
    scopes: Dict[str, tuple] = {}
    if isinstance(scopes_raw, dict):
        for family, prefixes in scopes_raw.items():
            if isinstance(prefixes, (list, tuple)):
                scopes[str(family)] = tuple(str(p) for p in prefixes)
    return AnalysisConfig(disabled_rules=disable, exclude=exclude,
                          scope_extensions=scopes)
