"""QLE -- exception-discipline rules: failures must not be swallowed.

The resilience pillar (paper §6) requires that detected corruption or
hardware faults *stop* operation on the affected data -- a ``try``/
``except Exception: pass`` turns that guarantee off.  Every broad handler
must either re-raise (bare ``raise`` or ``raise Wrapped(...) from exc``,
routing through the :mod:`repro.errors` hierarchy) or be suppressed with a
written justification.  Bare ``except:`` additionally catches
``KeyboardInterrupt``/``SystemExit`` and is never acceptable.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import AnalysisConfig, FileContext, Rule, Violation

__all__ = ["ExceptionDisciplineRule"]

_BROAD_NAMES = frozenset({"Exception", "BaseException"})

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _is_broad(handler_type: ast.AST) -> bool:
    if isinstance(handler_type, ast.Name):
        return handler_type.id in _BROAD_NAMES
    if isinstance(handler_type, ast.Tuple):
        return any(_is_broad(element) for element in handler_type.elts)
    return False


def _contains_raise(body: list) -> bool:
    """True when the handler body re-raises (ignoring nested functions)."""
    stack = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, _FUNCTION_NODES):
            continue  # a raise inside a nested def does not re-raise here
        stack.extend(ast.iter_child_nodes(node))
    return False


class ExceptionDisciplineRule(Rule):
    name = "exception-discipline"
    description = ("broad exception handlers must re-raise or wrap via "
                   "repro.errors, never swallow")
    ids = {
        "QLE001": "broad 'except Exception' that swallows without "
                  "re-raising",
        "QLE002": "bare 'except:' clause",
    }
    default_scope = ("repro/",)

    def check(self, ctx: FileContext,
              config: AnalysisConfig) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield Violation(
                    "QLE002", ctx.path, node.lineno, node.col_offset,
                    "bare 'except:' also catches KeyboardInterrupt/"
                    "SystemExit; catch Exception (and re-raise) or a "
                    "specific repro.errors type",
                )
                continue
            if _is_broad(node.type) and not _contains_raise(node.body):
                yield Violation(
                    "QLE001", ctx.path, node.lineno, node.col_offset,
                    "broad handler swallows the failure; re-raise, wrap in "
                    "the proper repro.errors type with context, or suppress "
                    "with a written justification",
                )
