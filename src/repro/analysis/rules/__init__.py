"""quacklint rule families.

One module per family; :data:`ALL_RULES` is the engine's default rule set.
Family prefixes: QLC (concurrency), QLL (lock order), QLV (vectorization),
QLZ (zero-copy), QLE (exception discipline), QLR (resource discipline),
QLO (observability discipline), QLP (plan discipline), QLK (kernel
contracts).
"""

from __future__ import annotations

from typing import Dict, List

from ..core import Rule
from .concurrency import ConcurrencyRule
from .exceptions import ExceptionDisciplineRule
from .kernels import KernelContractRule
from .lockorder import LockOrderRule
from .observability import ObservabilityRule
from .plans import PlanDisciplineRule
from .resources import ResourceDisciplineRule
from .vectorization import VectorizationRule
from .zerocopy import ZeroCopyRule

__all__ = [
    "ALL_RULES",
    "ConcurrencyRule",
    "KernelContractRule",
    "LockOrderRule",
    "VectorizationRule",
    "ZeroCopyRule",
    "ExceptionDisciplineRule",
    "PlanDisciplineRule",
    "ResourceDisciplineRule",
    "ObservabilityRule",
    "all_rule_ids",
]

ALL_RULES: List[Rule] = [
    ConcurrencyRule(),
    LockOrderRule(),
    VectorizationRule(),
    ZeroCopyRule(),
    ExceptionDisciplineRule(),
    ResourceDisciplineRule(),
    ObservabilityRule(),
    PlanDisciplineRule(),
    KernelContractRule(),
]


def all_rule_ids() -> Dict[str, str]:
    """Every emittable rule id -> its one-line description."""
    ids: Dict[str, str] = {}
    for rule in ALL_RULES:
        ids.update(rule.ids)
    return ids
