"""QLR -- resource-discipline rules: deterministic release in storage code.

A leaked file handle in ``storage/`` keeps the single-file database (or its
WAL sidecar) pinned past close -- on some platforms that blocks reopen, and
it always defeats the durability story of fsync-on-commit.  Acceptable
ownership patterns for ``open()``:

* ``with open(...) as f:`` -- scoped use;
* ``self._file = open(...)`` inside a class that defines ``close()`` or
  ``__exit__`` -- a managed long-lived handle;
* ``f = open(...)`` with a ``try`` (enclosing, or next in the same block)
  whose ``finally`` calls ``f.close()``.

Explicit ``lock.acquire()`` is flagged unless it sits inside (or
immediately precedes) a ``try`` whose ``finally`` calls ``release()``;
``with lock:`` is always the preferred form.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Set

from ..core import AnalysisConfig, FileContext, Rule, Violation

__all__ = ["ResourceDisciplineRule"]

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _is_open_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id == "open")


def _is_acquire_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "acquire")


def _managed_classes(tree: ast.Module) -> Set[str]:
    """Classes that define close() or __exit__ (may own long-lived handles)."""
    managed: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            for member in node.body:
                if isinstance(member, _FUNCTION_NODES) \
                        and member.name in ("close", "__exit__"):
                    managed.add(node.name)
                    break
    return managed


def _finally_calls(try_node: ast.Try, methods: Sequence[str],
                   name: Optional[str] = None) -> bool:
    """Does the finalbody call one of ``methods`` (optionally on ``name``)?"""
    for stmt in try_node.finalbody:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in methods:
                base = node.func.value
                if name is None:
                    return True
                if isinstance(base, ast.Name) and base.id == name:
                    return True
    return False


class ResourceDisciplineRule(Rule):
    name = "resource-discipline"
    description = ("file handles and locks in storage/ must be released via "
                   "with or try/finally")
    ids = {
        "QLR001": "open() outside with/managed-attribute/try-finally",
        "QLR002": "lock .acquire() without release() in a finally block",
    }
    default_scope = ("repro/storage/",)

    def check(self, ctx: FileContext,
              config: AnalysisConfig) -> Iterator[Violation]:
        managed = _managed_classes(ctx.tree)
        sanctioned: Set[int] = set()
        self._scan_block(list(ctx.tree.body), None, managed, sanctioned)
        for node in ast.walk(ctx.tree):
            if _is_open_call(node) and id(node) not in sanctioned:
                yield Violation(
                    "QLR001", ctx.path, node.lineno, node.col_offset,
                    "open() result is not scoped by 'with', owned by a "
                    "close()-managed attribute, or closed in a finally "
                    "block -- the handle can leak on error",
                )
            elif _is_acquire_call(node) and id(node) not in sanctioned:
                yield Violation(
                    "QLR002", ctx.path, node.lineno, node.col_offset,
                    "explicit .acquire() without a release() in a finally "
                    "block; prefer 'with lock:'",
                )

    # -- sanctioning pass ---------------------------------------------------
    def _scan_block(self, stmts: List[ast.stmt], current_class: Optional[str],
                    managed: Set[str], sanctioned: Set[int]) -> None:
        for index, stmt in enumerate(stmts):
            if isinstance(stmt, ast.With):
                for item in stmt.items:
                    if _is_open_call(item.context_expr):
                        sanctioned.add(id(item.context_expr))
            elif isinstance(stmt, ast.Assign) and any(
                    _is_open_call(node) for node in ast.walk(stmt.value)):
                self._sanction_assignment(stmt, index, stmts, current_class,
                                          managed, sanctioned)
            elif isinstance(stmt, ast.Expr) and _is_acquire_call(stmt.value):
                # ``lock.acquire()`` immediately guarded by a later
                # try/finally in the same block that calls release().
                base = stmt.value.func.value
                name = base.id if isinstance(base, ast.Name) else None
                for later in stmts[index + 1:]:
                    if isinstance(later, ast.Try) and later.finalbody \
                            and _finally_calls(later, ("release",), name):
                        sanctioned.add(id(stmt.value))
                        break
            elif isinstance(stmt, ast.Try) and stmt.finalbody:
                if _finally_calls(stmt, ("release",)):
                    for node in stmt.body:
                        for call in ast.walk(node):
                            if _is_acquire_call(call):
                                sanctioned.add(id(call))
                for node in stmt.body:
                    if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                            and isinstance(node.targets[0], ast.Name) \
                            and _is_open_call(node.value) \
                            and _finally_calls(stmt, ("close",),
                                               node.targets[0].id):
                        sanctioned.add(id(node.value))
            # Recurse into every nested statement block.
            next_class = stmt.name if isinstance(stmt, ast.ClassDef) \
                else current_class
            for field in ("body", "orelse", "finalbody"):
                child_block = getattr(stmt, field, None)
                if isinstance(child_block, list) and child_block \
                        and isinstance(child_block[0], ast.stmt):
                    self._scan_block(child_block, next_class, managed,
                                     sanctioned)
            for handler in getattr(stmt, "handlers", []) or []:
                self._scan_block(handler.body, next_class, managed,
                                 sanctioned)

    @staticmethod
    def _sanction_assignment(stmt: ast.Assign, index: int,
                             block: List[ast.stmt],
                             current_class: Optional[str], managed: Set[str],
                             sanctioned: Set[int]) -> None:
        if len(stmt.targets) != 1:
            return
        target = stmt.targets[0]
        if isinstance(target, ast.Attribute) \
                and isinstance(target.value, ast.Name) \
                and target.value.id == "self" and current_class in managed:
            # The attribute owns the handle (even behind a conditional
            # expression, e.g. ``open(...) if path else None``).
            for node in ast.walk(stmt.value):
                if _is_open_call(node):
                    sanctioned.add(id(node))
            return
        if isinstance(target, ast.Name):
            # ``f = open(...)`` directly followed (same block) by a
            # try/finally that closes it.
            for later in block[index + 1:]:
                if isinstance(later, ast.Try) and later.finalbody \
                        and _finally_calls(later, ("close",), target.id):
                    for node in ast.walk(stmt.value):
                        if _is_open_call(node):
                            sanctioned.add(id(node))
                    return
