"""QLK -- kernel contract rules: dtype, NULL, copy, and purity discipline.

Every function that constructs a :class:`Vector` is a *kernel*: it sits on
the per-chunk hot path and participates in the capability manifest
(``repro.analysis.kernelcheck``).  These rules are the file-local,
fixture-testable view of the same contracts the manifest verifies
registry-wide:

* QLK001 -- the kernel visibly produces a NumPy dtype that cannot convert
  losslessly to the LogicalType it returns (``Vector(DOUBLE,
  x.astype(np.int32), ...)`` truncates silently on the way back out);
* QLK002 -- the kernel reads ``.data`` but never consults ``.validity`` and
  does not document its own NULL contract: it computes on masked-out
  garbage and can leak it;
* QLK003 -- ``<expr>.data.astype(...)`` without ``copy=False`` copies an
  input array even when it already conforms (warning: advisory, the copy
  is sometimes wanted);
* QLK004 -- the kernel mutates module-global state (``global`` or a store
  through a module-level name), which breaks purity under morsel workers.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..core import AnalysisConfig, FileContext, Rule, Violation
from ..kernelcheck.facts import dtype_convertible

__all__ = ["KernelContractRule"]

#: Bind-time type names a ``Vector(<TYPE>, ...)`` first argument can carry.
_LOGICAL_NAMES = frozenset({
    "BOOLEAN", "TINYINT", "SMALLINT", "INTEGER", "BIGINT", "FLOAT", "DOUBLE",
    "VARCHAR", "DATE", "TIMESTAMP",
})

_NUMPY_DTYPE_NAMES = frozenset({
    "bool_", "bool", "int8", "int16", "int32", "int64",
    "float32", "float64", "object_", "object",
})


def _is_vector_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id == "Vector")


def _constructs_vector(funcdef: ast.FunctionDef) -> bool:
    for node in ast.walk(funcdef):
        if _is_vector_call(node):
            return True
    return False


def _dtype_from_node(node: ast.AST) -> Optional[str]:
    """A visible NumPy dtype name in an expression, if syntactically clear."""
    if isinstance(node, ast.Attribute) and node.attr in _NUMPY_DTYPE_NAMES:
        return node.attr.rstrip("_") if node.attr != "bool_" else "bool"
    if isinstance(node, ast.Name) and node.id in ("object", "bool", "float",
                                                  "int"):
        return {"object": "object", "bool": "bool", "float": "float64",
                "int": "int64"}[node.id]
    if isinstance(node, ast.Constant) and isinstance(node.value, str) \
            and node.value in _NUMPY_DTYPE_NAMES:
        return node.value
    return None


def _expr_dtype(node: ast.expr) -> Optional[str]:
    """Dtype evidence of a data expression: astype / allocation calls."""
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Attribute) and node.func.attr == "astype" \
                and node.args:
            return _dtype_from_node(node.args[0])
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in ("zeros", "empty", "full", "ones"):
            for keyword in node.keywords:
                if keyword.arg == "dtype":
                    return _dtype_from_node(keyword.value)
    return None


def _attr_root_name(node: ast.AST) -> Optional[str]:
    """The base Name of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _contains_data_attr(node: ast.AST) -> bool:
    """Is the expression rooted at a ``<expr>.data`` attribute access?"""
    while isinstance(node, ast.Subscript):
        node = node.value
    return isinstance(node, ast.Attribute) and node.attr == "data"


class KernelContractRule(Rule):
    name = "kernels"
    description = ("kernel contract discipline: declared dtype, NULL "
                   "handling, avoidable copies, and purity")
    ids = {
        "QLK001": "kernel returns a dtype not convertible to its declared "
                  "LogicalType",
        "QLK002": "kernel reads vector .data without honouring .validity or "
                  "declaring its own NULL contract",
        "QLK003": "avoidable copy: .data.astype(...) without copy=False on "
                  "an input array",
        "QLK004": "kernel mutates module-global state",
    }
    warning_ids = ("QLK003",)
    default_scope = ("repro/functions/",
                     "repro/execution/expression_executor.py")

    def check(self, ctx: FileContext,
              config: AnalysisConfig) -> Iterator[Violation]:
        module_names = self._module_level_names(ctx.tree)
        for funcdef in self._kernel_functions(ctx.tree):
            yield from self._check_dtype(ctx, funcdef)
            yield from self._check_null_contract(ctx, funcdef)
            yield from self._check_copies(ctx, funcdef)
            yield from self._check_purity(ctx, funcdef, module_names)

    # -- discovery ---------------------------------------------------------
    def _kernel_functions(self, tree: ast.Module) -> List[ast.FunctionDef]:
        found: List[ast.FunctionDef] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.FunctionDef) and _constructs_vector(node):
                # Nested factories: the inner ``execute`` constructs the
                # vector; keep the innermost function only.
                inner = [child for child in ast.walk(node)
                         if isinstance(child, ast.FunctionDef)
                         and child is not node and _constructs_vector(child)]
                if not inner:
                    found.append(node)
        return found

    def _module_level_names(self, tree: ast.Module) -> Set[str]:
        names: Set[str] = set()
        for node in tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign) \
                    and isinstance(node.target, ast.Name):
                names.add(node.target.id)
        return names

    # -- QLK001 ------------------------------------------------------------
    def _check_dtype(self, ctx: FileContext,
                     funcdef: ast.FunctionDef) -> Iterator[Violation]:
        # Linear scan: remember the last visible dtype evidence per local.
        local_dtypes: Dict[str, str] = {}
        for node in ast.walk(funcdef):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                evidence = _expr_dtype(node.value)
                if evidence is not None:
                    local_dtypes[node.targets[0].id] = evidence
        for node in ast.walk(funcdef):
            if not _is_vector_call(node):
                continue
            call = node
            if len(call.args) < 2 or not isinstance(call.args[0], ast.Name):
                continue
            declared = call.args[0].id
            if declared not in _LOGICAL_NAMES:
                continue
            data = call.args[1]
            produced = _expr_dtype(data)
            if produced is None and isinstance(data, ast.Name):
                produced = local_dtypes.get(data.id)
            if produced is None:
                continue
            if dtype_convertible(produced, declared) is False:
                yield Violation(
                    "QLK001", ctx.path, call.lineno, call.col_offset,
                    f"kernel {funcdef.name}() returns {produced} data in a "
                    f"{declared} vector; the dtype cannot convert losslessly "
                    f"to the declared LogicalType",
                )

    # -- QLK002 ------------------------------------------------------------
    def _check_null_contract(self, ctx: FileContext,
                             funcdef: ast.FunctionDef) -> Iterator[Violation]:
        docstring = ast.get_docstring(funcdef) or ""
        if "NULL" in docstring.upper():
            return  # the kernel declares its own NULL contract
        reads_data = False
        reads_validity = False
        calls_propagate = False
        for node in ast.walk(funcdef):
            if isinstance(node, ast.Attribute):
                if node.attr == "data":
                    reads_data = True
                elif node.attr == "validity":
                    reads_validity = True
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Name) \
                    and node.func.id == "_propagate_validity":
                calls_propagate = True
        if reads_data and not (reads_validity or calls_propagate):
            yield Violation(
                "QLK002", ctx.path, funcdef.lineno, funcdef.col_offset,
                f"kernel {funcdef.name}() reads vector .data but never "
                f"consults .validity and does not document a NULL contract; "
                f"it computes on masked-out garbage",
            )

    # -- QLK003 ------------------------------------------------------------
    def _check_copies(self, ctx: FileContext,
                      funcdef: ast.FunctionDef) -> Iterator[Violation]:
        for node in ast.walk(funcdef):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "astype"):
                continue
            if not _contains_data_attr(node.func.value):
                continue
            has_copy_false = any(
                keyword.arg == "copy"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is False
                for keyword in node.keywords)
            if not has_copy_false:
                yield Violation(
                    "QLK003", ctx.path, node.lineno, node.col_offset,
                    f"kernel {funcdef.name}() calls .data.astype(...) "
                    f"without copy=False; an already-conforming input is "
                    f"copied on every chunk",
                )

    # -- QLK004 ------------------------------------------------------------
    def _check_purity(self, ctx: FileContext, funcdef: ast.FunctionDef,
                      module_names: Set[str]) -> Iterator[Violation]:
        for node in ast.walk(funcdef):
            if isinstance(node, ast.Global):
                yield Violation(
                    "QLK004", ctx.path, node.lineno, node.col_offset,
                    f"kernel {funcdef.name}() declares global "
                    f"{', '.join(node.names)}; kernels must be pure to run "
                    f"under morsel workers",
                )
                continue
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if not isinstance(target, (ast.Subscript, ast.Attribute)):
                    continue
                root = _attr_root_name(target)
                if root is not None and root in module_names \
                        and root not in self._local_names(funcdef):
                    yield Violation(
                        "QLK004", ctx.path, node.lineno, node.col_offset,
                        f"kernel {funcdef.name}() writes through "
                        f"module-level name {root!r}; kernels must be pure "
                        f"to run under morsel workers",
                    )

    def _local_names(self, funcdef: ast.FunctionDef) -> Set[str]:
        names = {arg.arg for arg in funcdef.args.args}
        names |= {arg.arg for arg in funcdef.args.kwonlyargs}
        if funcdef.args.vararg is not None:
            names.add(funcdef.args.vararg.arg)
        if funcdef.args.kwarg is not None:
            names.add(funcdef.args.kwarg.arg)
        for node in ast.walk(funcdef):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)) \
                    and isinstance(node.target, ast.Name):
                names.add(node.target.id)
            elif isinstance(node, ast.For) \
                    and isinstance(node.target, ast.Name):
                names.add(node.target.id)
        return names
