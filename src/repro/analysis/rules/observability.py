"""QLO -- observability-discipline rules for the quacktrace layer.

Two ways instrumentation itself becomes a bug:

* **a span that never closes** never reaches the sink -- the trace silently
  loses an operator (or leaks the span on the tracer's thread-local stack,
  corrupting parent links for every later query on that thread).  Manual
  ``start_span()``/``start_query()`` calls must be paired with
  ``end_span()``/``finish_query()``; the context-manager forms
  (``tracer.span(...)``, ``engine_span(...)``) are always safe.
* **a metric object constructed off-registry** is invisible: it never shows
  up in ``connection.metrics()`` or the Prometheus dump, so the counter
  mutates but nobody can read it.  All instruments must come from the
  :class:`~repro.observability.metrics.MetricsRegistry` factories
  (``registry().counter(...)``).
* **an introspection provider that yields while holding an engine lock**
  (QLO003) turns a snapshot into a live cursor: the lock is held until the
  consumer finishes pulling -- across arbitrary query execution -- which
  both blocks the engine and deadlocks against the declared lock hierarchy
  the moment the query touches the same subsystem.  Snapshot providers in
  ``repro/introspection/`` must copy-then-release: extract plain data under
  the lock, release it, then return (or yield from) the copy.
* **telemetry emitted while holding an engine lock** (QLO004) couples the
  engine's critical sections to file-system latency: every ``emit_*``
  method (``emit_sample``, ``emit_span``, ``emit_statement``) ends in a
  blocking ``write()``+``flush()``, so one slow disk stalls whatever lock
  the caller was holding -- and every thread queued behind it.  Telemetry
  export is fed copy-then-release, exactly like QLO003: snapshot under the
  lock, release, then emit from the copy (the sampler thread and the
  ``Session.execute`` epilogue are the two sanctioned emission sites).

Pairing for QLO001 is checked at *class* scope: a span started in one
method and closed in another (``Connection._execute_statement`` starts the
query span, ``_finish_statement`` closes it) is a legitimate ownership
pattern, but a class that starts spans and never closes any is not.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set, Tuple

from ..core import AnalysisConfig, FileContext, Rule, Violation

__all__ = ["ObservabilityRule"]

_START_CALLS = ("start_span", "start_query")
_END_CALLS = ("end_span", "finish_query")
_METRIC_CLASSES = ("Counter", "Gauge", "Histogram")
_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _called_attr(node: ast.AST) -> Optional[str]:
    """Attribute name of a method call (``x.start_span(...)`` -> that name)."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _calls_any(scope: ast.AST, names: Tuple[str, ...]) -> bool:
    return any(_called_attr(node) in names for node in ast.walk(scope))


def _is_lock_expr(node: ast.AST) -> bool:
    """Does this with-item context expression look like an engine lock?

    Matches ``self._lock``, ``manager._lock``, a bare ``lock`` name, and
    lock-returning calls (``self._lock()``) -- any terminal identifier
    containing "lock".
    """
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return "lock" in node.attr.lower()
    if isinstance(node, ast.Name):
        return "lock" in node.id.lower()
    return False


class ObservabilityRule(Rule):
    name = "observability"
    description = ("manual spans must be closed and metrics must come from "
                   "the registry")
    ids = {
        "QLO001": "span started with start_span()/start_query() but never "
                  "closed in the enclosing class or function",
        "QLO002": "metric object constructed outside the MetricsRegistry",
        "QLO003": "introspection snapshot provider yields while holding an "
                  "engine lock (must copy-then-release)",
        "QLO004": "telemetry emitted (emit_* call) while holding an engine "
                  "lock (must copy-then-release, then emit outside)",
    }
    default_scope = ("repro/",)

    def check(self, ctx: FileContext,
              config: AnalysisConfig) -> Iterator[Violation]:
        yield from self._check_span_pairing(ctx)
        yield from self._check_metric_construction(ctx)
        yield from self._check_snapshot_locks(ctx)
        yield from self._check_emit_under_lock(ctx)

    # -- QLO001: span lifecycle ------------------------------------------------
    def _check_span_pairing(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.pkg_path.startswith("repro/observability/"):
            # The tracer itself constructs and hands over spans; pairing is
            # its callers' contract.
            return
        for scope, scope_name in self._pairing_scopes(ctx.tree):
            starts = []
            for node in ast.walk(scope):
                attr = _called_attr(node)
                if attr in _START_CALLS:
                    starts.append(node)
            if not starts:
                continue
            if _calls_any(scope, _END_CALLS):
                continue
            for call in starts:
                yield Violation(
                    "QLO001", ctx.path, call.lineno, call.col_offset,
                    f"span opened here is never closed in {scope_name}; "
                    f"call end_span()/finish_query(), or use the "
                    f"'with tracer.span(...)' / engine_span() context "
                    f"manager forms",
                )

    @staticmethod
    def _pairing_scopes(tree: ast.Module):
        """Yield (scope node, human name): classes, then module-level defs.

        Methods are checked through their class so start/close pairs split
        across methods (enter/exit, execute/finish) are not false positives.
        """
        class_members: Set[int] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                yield node, f"class {node.name}"
                for member in ast.walk(node):
                    if isinstance(member, _FUNCTION_NODES):
                        class_members.add(id(member))
        for node in ast.walk(tree):
            if isinstance(node, _FUNCTION_NODES) \
                    and id(node) not in class_members:
                yield node, f"function {node.name}()"

    # -- QLO003: yield under an engine lock -----------------------------------
    def _check_snapshot_locks(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.pkg_path.startswith("repro/introspection/"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            if not any(_is_lock_expr(item.context_expr)
                       for item in node.items):
                continue
            for inner in ast.walk(node):
                if isinstance(inner, (ast.Yield, ast.YieldFrom)):
                    yield Violation(
                        "QLO003", ctx.path, inner.lineno, inner.col_offset,
                        "yield inside a 'with <lock>:' block holds the "
                        "engine lock until the consumer resumes the "
                        "generator; copy the snapshot under the lock, "
                        "release it, then yield from the copy",
                    )

    # -- QLO004: telemetry emission under an engine lock -----------------------
    def _check_emit_under_lock(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            if not any(_is_lock_expr(item.context_expr)
                       for item in node.items):
                continue
            for inner in ast.walk(node):
                attr = _called_attr(inner)
                if attr is None or not attr.startswith("emit_"):
                    continue
                yield Violation(
                    "QLO004", ctx.path, inner.lineno, inner.col_offset,
                    f"{attr}() inside a 'with <lock>:' block ties the lock's "
                    f"hold time to telemetry-sink I/O (write+flush per "
                    f"record); snapshot the data under the lock, release "
                    f"it, then emit from the copy",
                )

    # -- QLO002: off-registry metrics -----------------------------------------
    def _check_metric_construction(self,
                                   ctx: FileContext) -> Iterator[Violation]:
        if ctx.pkg_path.startswith("repro/observability/"):
            # The registry module is the one sanctioned constructor site.
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = None
            if isinstance(func, ast.Name) and func.id in _METRIC_CLASSES:
                name = func.id
            elif isinstance(func, ast.Attribute) \
                    and func.attr in _METRIC_CLASSES:
                name = func.attr
            if name is None:
                continue
            yield Violation(
                "QLO002", ctx.path, node.lineno, node.col_offset,
                f"{name}(...) constructed outside the metrics registry is "
                f"invisible to connection.metrics() and the Prometheus "
                f"export; use registry().{name.lower()}(name, help)",
            )
