"""QLZ -- zero-copy rules: protect the client transfer path.

Result transfer is the paper's §5/§6 centerpiece: chunks cross the
client/engine boundary "without requiring copying".  The modules on that
path (``client/result.py``, ``client/appender.py``, ``types/vector.py``)
must not sneak a copy or a per-value Python conversion back in:

* ``np.copy(x)`` duplicates the buffer -- wrap or view instead;
* ``x.tolist()`` materializes one Python object per value, which is the
  per-value transfer overhead the bulk API exists to avoid;
* ``np.array(x)`` copies by default -- use ``np.asarray`` or pass
  ``copy=False`` explicitly.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import AnalysisConfig, FileContext, Rule, Violation

__all__ = ["ZeroCopyRule"]

_NUMPY_ALIASES = frozenset({"np", "numpy"})


def _is_numpy_call(call: ast.Call, func_name: str) -> bool:
    func = call.func
    return (isinstance(func, ast.Attribute) and func.attr == func_name
            and isinstance(func.value, ast.Name)
            and func.value.id in _NUMPY_ALIASES)


class ZeroCopyRule(Rule):
    name = "zero-copy"
    description = ("the client transfer path must not introduce copies or "
                   "per-value conversion")
    ids = {
        "QLZ001": "np.copy() in the transfer path",
        "QLZ002": ".tolist() per-value materialization in the transfer path",
        "QLZ003": "np.array() without copy=False in the transfer path",
    }
    default_scope = (
        "repro/client/result.py",
        "repro/client/appender.py",
        "repro/types/vector.py",
    )

    def check(self, ctx: FileContext,
              config: AnalysisConfig) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if _is_numpy_call(node, "copy"):
                yield Violation(
                    "QLZ001", ctx.path, node.lineno, node.col_offset,
                    "np.copy() duplicates the buffer on the zero-copy "
                    "transfer path; hand over the engine's own array "
                    "(np.asarray / Vector.from_numpy)",
                )
            elif isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "tolist" and not node.args:
                yield Violation(
                    "QLZ002", ctx.path, node.lineno, node.col_offset,
                    ".tolist() converts one Python object per value; keep "
                    "data in NumPy form across the client boundary",
                )
            elif _is_numpy_call(node, "array"):
                copy_kw = next((kw for kw in node.keywords
                                if kw.arg == "copy"), None)
                copies = copy_kw is None or not (
                    isinstance(copy_kw.value, ast.Constant)
                    and copy_kw.value.value is False)
                if copies:
                    yield Violation(
                        "QLZ003", ctx.path, node.lineno, node.col_offset,
                        "np.array() copies by default; use np.asarray() or "
                        "np.array(..., copy=False) on the transfer path",
                    )
