"""QLL -- lock-order rules: nested acquisitions must follow the hierarchy.

The engine declares one global lock order (outermost first) in
:mod:`repro.sanitizer.hierarchy`; every code path that nests two named
locks must acquire them in (a subsequence of) that order, or two threads
running the paths in opposite orders can deadlock.  LockSan witnesses the
orders actually taken at runtime; this rule family catches inversions
before the code ever runs:

* **QLL001** -- a ``with`` acquisition of lock B textually nested inside a
  ``with`` acquisition of lock A, where B is declared *outer* to A;
* **QLL002** -- a ``self.<method>()`` call made while holding lock A, where
  the callee (or anything it calls, up to two self-call hops) acquires a
  lock declared outer to A.  This is the one/two-hop interprocedural
  variant: the inversion is invisible in either method alone.

Lock expressions resolve to hierarchy names through the thread-safety
registry: ``self.<attr>`` inside a class listed in
:data:`~repro.sanitizer.hierarchy.CLASS_LOCK_ATTRS` resolves precisely;
other receivers (``table.data.lock``, ``db._checkpoint_lock``) fall back to
the globally unambiguous attribute names.  Unresolvable ``with`` subjects
are ignored -- the rule only reasons about locks it can name.  Reentrant
same-name nesting (an RLock re-entered through a helper) is never an
inversion and is skipped.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Union

from ..core import AnalysisConfig, FileContext, Rule, Violation
from ..registry import ThreadSafetyRegistry

__all__ = ["LockOrderRule"]

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _lock_name_of(registry: ThreadSafetyRegistry, pkg_path: str,
                  class_name: Optional[str], expr: ast.AST) -> Optional[str]:
    """Hierarchy name of the lock a ``with`` subject acquires, or None."""
    if not isinstance(expr, ast.Attribute):
        return None
    on_self = isinstance(expr.value, ast.Name) and expr.value.id == "self"
    return registry.resolve_lock_attr(pkg_path, class_name, expr.attr,
                                      on_self)


def _self_method_called(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name) \
            and func.value.id == "self":
        return func.attr
    return None


class LockOrderRule(Rule):
    name = "lockorder"
    description = ("nested lock acquisitions must follow the declared "
                   "engine lock hierarchy (sanitizer/hierarchy.py)")
    ids = {
        "QLL001": "nested 'with' acquisition inverts the declared lock "
                  "hierarchy",
        "QLL002": "method call while holding a lock reaches (within two "
                  "self-call hops) an acquisition outer to it",
    }
    default_scope = ("repro/",)

    def check(self, ctx: FileContext,
              config: AnalysisConfig) -> Iterator[Violation]:
        registry: ThreadSafetyRegistry = config.registry  # type: ignore[assignment]
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, registry, node)
            elif isinstance(node, _FUNCTION_NODES):
                yield from self._check_function(ctx, registry, None, {},
                                                node)

    # -- per-class: build the two-hop acquires closure first ----------------
    def _check_class(self, ctx: FileContext, registry: ThreadSafetyRegistry,
                     cls: ast.ClassDef) -> Iterator[Violation]:
        direct: Dict[str, Set[str]] = {}
        calls: Dict[str, Set[str]] = {}
        for node in cls.body:
            if not isinstance(node, _FUNCTION_NODES):
                continue
            acquires: Set[str] = set()
            called: Set[str] = set()
            for inner in ast.walk(node):
                if isinstance(inner, ast.With):
                    for item in inner.items:
                        name = _lock_name_of(registry, ctx.pkg_path,
                                             cls.name, item.context_expr)
                        if name is not None:
                            acquires.add(name)
                elif isinstance(inner, ast.Call):
                    callee = _self_method_called(inner)
                    if callee is not None:
                        called.add(callee)
            direct[node.name] = acquires
            calls[node.name] = called

        # closure[m] = locks m may acquire within two self-call hops.
        one_hop = {
            name: direct[name].union(
                *(direct.get(c, set()) for c in calls[name]))
            for name in direct
        }
        closure = {
            name: one_hop[name].union(
                *(one_hop.get(c, set()) for c in calls[name]))
            for name in direct
        }

        for node in cls.body:
            if isinstance(node, _FUNCTION_NODES):
                yield from self._check_function(ctx, registry, cls.name,
                                                closure, node)

    # -- per-method: walk with a held-locks stack ---------------------------
    def _check_function(self, ctx: FileContext,
                        registry: ThreadSafetyRegistry,
                        class_name: Optional[str],
                        closure: Dict[str, Set[str]],
                        func: _FunctionNode) -> Iterator[Violation]:
        yield from self._walk_body(ctx, registry, class_name, closure,
                                   func.body, [])

    def _walk_body(self, ctx: FileContext, registry: ThreadSafetyRegistry,
                   class_name: Optional[str], closure: Dict[str, Set[str]],
                   body: List[ast.stmt],
                   held: List[str]) -> Iterator[Violation]:
        for stmt in body:
            yield from self._walk_stmt(ctx, registry, class_name, closure,
                                       stmt, held)

    def _walk_stmt(self, ctx: FileContext, registry: ThreadSafetyRegistry,
                   class_name: Optional[str], closure: Dict[str, Set[str]],
                   stmt: ast.AST, held: List[str]) -> Iterator[Violation]:
        if isinstance(stmt, ast.With):
            acquired: List[str] = []
            for item in stmt.items:
                yield from self._check_calls(ctx, registry, closure,
                                             item.context_expr, held)
                name = _lock_name_of(registry, ctx.pkg_path, class_name,
                                     item.context_expr)
                if name is None:
                    continue
                yield from self._check_inversion(
                    ctx, registry, stmt, held + acquired, name, "QLL001",
                    f"'with' acquisition of '{name}'")
                acquired.append(name)
            yield from self._walk_body(ctx, registry, class_name, closure,
                                       stmt.body, held + acquired)
            return
        if isinstance(stmt, _FUNCTION_NODES):
            # A nested def runs later, without the enclosing locks.
            yield from self._walk_body(ctx, registry, class_name, closure,
                                       stmt.body, [])
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, (ast.stmt, ast.excepthandler)):
                yield from self._walk_stmt(ctx, registry, class_name,
                                           closure, child, held)
            else:
                yield from self._check_calls(ctx, registry, closure, child,
                                             held)

    def _check_calls(self, ctx: FileContext,
                     registry: ThreadSafetyRegistry,
                     closure: Dict[str, Set[str]], expr: ast.AST,
                     held: List[str]) -> Iterator[Violation]:
        """QLL002 checks for every self-call in one expression subtree.

        Lambdas are pruned: their bodies run after the locks are released,
        so acquisitions reached through them are not nested acquisitions.
        """
        if not held or isinstance(expr, ast.Lambda):
            return
        if isinstance(expr, ast.Call):
            callee = _self_method_called(expr)
            if callee is not None and callee in closure:
                for name in sorted(closure[callee]):
                    yield from self._check_inversion(
                        ctx, registry, expr, held, name, "QLL002",
                        f"call of self.{callee}() which may acquire "
                        f"'{name}' (within two self-call hops)")
        for child in ast.iter_child_nodes(expr):
            yield from self._check_calls(ctx, registry, closure, child,
                                         held)

    @staticmethod
    def _check_inversion(ctx: FileContext, registry: ThreadSafetyRegistry,
                         node: ast.AST, held: List[str], name: str,
                         rule_id: str, what: str) -> Iterator[Violation]:
        level = registry.lock_level(name)
        if level is None:
            return
        for outer in held:
            if outer == name:
                continue  # reentrant same-name nesting, never an inversion
            outer_level = registry.lock_level(outer)
            if outer_level is not None and level < outer_level:
                yield Violation(
                    rule_id, ctx.path, getattr(node, "lineno", 1),
                    getattr(node, "col_offset", 0),
                    f"{what} while holding '{outer}' inverts the declared "
                    f"lock hierarchy ('{name}' is outer to '{outer}'); "
                    f"acquire '{name}' first or restructure -- see "
                    f"repro/sanitizer/hierarchy.py",
                )
                return