"""QLC -- concurrency rules: lock discipline for worker-shared state.

The morsel-driven executor (``execution/parallel.py``) runs pipeline
fragments on real threads.  Classes registered in the thread-safety registry
are reachable from those workers, so every write to their ``self`` state
must happen under ``with self.<lock>:`` (QLC001).  Module-level globals in
worker-reachable modules have no lock to name, so writing them from a
function is flagged outright (QLC002).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from ..core import AnalysisConfig, FileContext, Rule, Violation
from ..registry import SharedClassSpec, ThreadSafetyRegistry

__all__ = ["ConcurrencyRule"]

#: Method names that mutate the receiver in place.
_MUTATOR_METHODS = frozenset({
    "append", "add", "insert", "extend", "remove", "discard", "pop",
    "popitem", "clear", "update", "setdefault", "move_to_end", "sort",
    "reverse", "appendleft", "popleft",
})

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _self_attr_of(node: ast.AST) -> Optional[str]:
    """The ``self`` attribute a write target ultimately mutates, or None.

    ``self.x = v`` / ``self.x[i] = v`` / ``self.x.y = v`` all mutate the
    object graph rooted at attribute ``x`` of ``self``.
    """
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        inner = node.value
        if isinstance(node, ast.Attribute) and isinstance(inner, ast.Name) \
                and inner.id == "self":
            return node.attr
        node = inner
    return None


def _written_attrs(stmt: ast.AST) -> List[Tuple[str, ast.AST]]:
    """(attr, node) pairs for every ``self`` attribute this statement writes."""
    found: List[Tuple[str, ast.AST]] = []

    def add_target(target: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                add_target(element)
            return
        attr = _self_attr_of(target)
        if attr is not None:
            found.append((attr, target))

    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            add_target(target)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        add_target(stmt.target)
    elif isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            add_target(target)
    return found


def _mutating_call_attr(call: ast.Call) -> Optional[str]:
    """Attribute mutated by ``self.<attr>....<mutator>(...)`` or
    ``setattr(self, "attr", ...)``, if resolvable."""
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr in _MUTATOR_METHODS:
        return _self_attr_of(func.value)
    if isinstance(func, ast.Name) and func.id == "setattr" and call.args:
        first = call.args[0]
        if isinstance(first, ast.Name) and first.id == "self":
            second = call.args[1] if len(call.args) >= 2 else None
            if isinstance(second, ast.Constant) and isinstance(second.value, str):
                return second.value
            return "<dynamic>"
    return None


def _is_lock_context(expr: ast.AST, lock_attr: str) -> bool:
    return (isinstance(expr, ast.Attribute) and expr.attr == lock_attr
            and isinstance(expr.value, ast.Name) and expr.value.id == "self")


class ConcurrencyRule(Rule):
    name = "concurrency"
    description = ("writes to worker-shared engine state must hold the "
                   "class lock (thread-safety registry)")
    ids = {
        "QLC001": "unguarded write to shared state in a registered "
                  "thread-shared class",
        "QLC002": "module-global write inside a worker-reachable module",
    }
    default_scope = ("repro/",)

    def check(self, ctx: FileContext,
              config: AnalysisConfig) -> Iterator[Violation]:
        registry: ThreadSafetyRegistry = config.registry  # type: ignore[assignment]
        specs = registry.classes_in(ctx.pkg_path)
        if specs:
            for node in ctx.tree.body:
                if isinstance(node, ast.ClassDef) and node.name in specs:
                    yield from self._check_class(ctx, node, specs[node.name],
                                                 registry)
        if registry.is_worker_reachable(ctx.pkg_path):
            yield from self._check_globals(ctx)

    # -- QLC001 ------------------------------------------------------------
    def _check_class(self, ctx: FileContext, cls: ast.ClassDef,
                     spec: SharedClassSpec,
                     registry: ThreadSafetyRegistry) -> Iterator[Violation]:
        for node in cls.body:
            if not isinstance(node, _FUNCTION_NODES):
                continue
            if node.name == "__init__":
                continue  # not yet published to other threads
            held = node.name.endswith(registry.locked_suffix)
            yield from self._walk_body(ctx, cls.name, spec, node.body, held)

    def _walk_body(self, ctx: FileContext, cls_name: str,
                   spec: SharedClassSpec, body: List[ast.stmt],
                   held: bool) -> Iterator[Violation]:
        for stmt in body:
            yield from self._check_stmt(ctx, cls_name, spec, stmt, held)

    def _check_stmt(self, ctx: FileContext, cls_name: str,
                    spec: SharedClassSpec, stmt: ast.AST,
                    held: bool) -> Iterator[Violation]:
        if isinstance(stmt, ast.With):
            now_held = held or any(
                _is_lock_context(item.context_expr, spec.lock_attr)
                for item in stmt.items)
            for item in stmt.items:
                yield from self._check_expr(ctx, cls_name, spec,
                                            item.context_expr, held)
            yield from self._walk_body(ctx, cls_name, spec, stmt.body,
                                       now_held)
            return
        if isinstance(stmt, _FUNCTION_NODES):
            # A nested def/closure may run after the enclosing with-block
            # has exited: never assume the lock is still held inside it.
            yield from self._walk_body(ctx, cls_name, spec, stmt.body, False)
            return
        if not held:
            for attr, node in _written_attrs(stmt):
                yield from self._flag(ctx, cls_name, spec, attr, node)
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, (ast.stmt, ast.excepthandler)):
                yield from self._check_stmt(ctx, cls_name, spec, child, held)
            else:
                yield from self._check_expr(ctx, cls_name, spec, child, held)

    def _check_expr(self, ctx: FileContext, cls_name: str,
                    spec: SharedClassSpec, expr: ast.AST,
                    held: bool) -> Iterator[Violation]:
        if isinstance(expr, ast.Lambda):
            held = False  # the lambda may run after the lock is released
        if not held and isinstance(expr, ast.Call):
            attr = _mutating_call_attr(expr)
            if attr is not None:
                yield from self._flag(ctx, cls_name, spec, attr, expr)
        for child in ast.iter_child_nodes(expr):
            yield from self._check_expr(ctx, cls_name, spec, child, held)

    def _flag(self, ctx: FileContext, cls_name: str, spec: SharedClassSpec,
              attr: str, node: ast.AST) -> Iterator[Violation]:
        if attr in spec.unguarded_ok:
            return
        yield Violation(
            "QLC001", ctx.path, getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0),
            f"write to {cls_name}.{attr} without holding "
            f"self.{spec.lock_attr}; wrap in 'with self.{spec.lock_attr}:', "
            f"move into a '*_locked' helper, or register the attribute as a "
            f"documented benign race in the thread-safety registry",
        )

    # -- QLC002 ------------------------------------------------------------
    def _check_globals(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, _FUNCTION_NODES):
                for stmt in ast.walk(node):
                    if isinstance(stmt, ast.Global):
                        yield Violation(
                            "QLC002", ctx.path, stmt.lineno, stmt.col_offset,
                            f"module-global write ({', '.join(stmt.names)}) "
                            f"in a worker-reachable module; globals have no "
                            f"lock discipline -- move the state onto a "
                            f"registered class",
                        )
