"""QLC -- concurrency rules: lock discipline for worker-shared state.

The morsel-driven executor (``execution/parallel.py``) runs pipeline
fragments on real threads.  Classes registered in the thread-safety registry
are reachable from those workers, so every write to their ``self`` state
must happen under ``with self.<lock>:`` (QLC001).  Module-level globals in
worker-reachable modules have no lock to name, so writing them from a
function is flagged outright (QLC002).

The analysis is *interprocedural within a class*: instead of judging each
method in isolation, the rule first collects every write and every
``self.<method>()`` call site together with the lexical lock state, then
runs a small fixpoint (two iterations, so the discipline propagates through
one- and two-hop helper chains):

* a method whose name ends in ``_locked`` is **assumed held** -- the suffix
  is the engine's documented calling convention;
* a *private* method (leading underscore) with at least one in-class call
  site, all of whose call sites hold the lock, becomes **effectively
  held** -- its unguarded writes are fine because every path into it
  already owns the lock;
* calling a ``*_locked`` method from a site that does not hold the lock is
  its own violation (QLC003): the convention promises the lock is held, and
  breaking the promise is a data race even if the callee never writes.

Call sites inside nested ``def``/``lambda`` bodies never inherit the
enclosing method's lock state -- the closure may run after the ``with``
block exits.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

from ..core import AnalysisConfig, FileContext, Rule, Violation
from ..registry import SharedClassSpec, ThreadSafetyRegistry

__all__ = ["ConcurrencyRule"]

#: Method names that mutate the receiver in place.
_MUTATOR_METHODS = frozenset({
    "append", "add", "insert", "extend", "remove", "discard", "pop",
    "popitem", "clear", "update", "setdefault", "move_to_end", "sort",
    "reverse", "appendleft", "popleft",
})

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Fixpoint iterations: 2 lets "effectively held" flow through two-hop
#: helper chains (public-under-lock -> _helper_a -> _helper_b).
_PROPAGATION_ROUNDS = 2


def _self_attr_of(node: ast.AST) -> Optional[str]:
    """The ``self`` attribute a write target ultimately mutates, or None.

    ``self.x = v`` / ``self.x[i] = v`` / ``self.x.y = v`` all mutate the
    object graph rooted at attribute ``x`` of ``self``.
    """
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        inner = node.value
        if isinstance(node, ast.Attribute) and isinstance(inner, ast.Name) \
                and inner.id == "self":
            return node.attr
        node = inner
    return None


def _written_attrs(stmt: ast.AST) -> List[Tuple[str, ast.AST]]:
    """(attr, node) pairs for every ``self`` attribute this statement writes."""
    found: List[Tuple[str, ast.AST]] = []

    def add_target(target: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                add_target(element)
            return
        attr = _self_attr_of(target)
        if attr is not None:
            found.append((attr, target))

    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            add_target(target)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        add_target(stmt.target)
    elif isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            add_target(target)
    return found


def _mutating_call_attr(call: ast.Call) -> Optional[str]:
    """Attribute mutated by ``self.<attr>....<mutator>(...)`` or
    ``setattr(self, "attr", ...)``, if resolvable."""
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr in _MUTATOR_METHODS:
        return _self_attr_of(func.value)
    if isinstance(func, ast.Name) and func.id == "setattr" and call.args:
        first = call.args[0]
        if isinstance(first, ast.Name) and first.id == "self":
            second = call.args[1] if len(call.args) >= 2 else None
            if isinstance(second, ast.Constant) and isinstance(second.value, str):
                return second.value
            return "<dynamic>"
    return None


def _self_method_called(call: ast.Call) -> Optional[str]:
    """Name of the method for a direct ``self.<name>(...)`` call, or None."""
    func = call.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name) \
            and func.value.id == "self":
        return func.attr
    return None


def _is_lock_context(expr: ast.AST, lock_attr: str) -> bool:
    return (isinstance(expr, ast.Attribute) and expr.attr == lock_attr
            and isinstance(expr.value, ast.Name) and expr.value.id == "self")


@dataclass
class _Site:
    """One write or self-call, with the lock state at that program point.

    ``lexical_held`` -- the site sits inside ``with self.<lock>:`` (or in a
    ``*_locked`` method body).  ``caller_credit`` -- the site is in the
    method's own body (not a nested def/lambda), so it may inherit
    "effectively held" status from the enclosing method.
    """

    node: ast.AST
    lexical_held: bool
    caller_credit: bool

    def held(self, method_held: bool) -> bool:
        return self.lexical_held or (self.caller_credit and method_held)


@dataclass
class _MethodEvents:
    """Everything the fixpoint needs to know about one method."""

    name: str
    writes: List[Tuple[str, _Site]] = dataclass_field(default_factory=list)
    #: callee method name -> call sites (``self.<callee>(...)``).
    calls: List[Tuple[str, _Site]] = dataclass_field(default_factory=list)


class _ClassCollector:
    """AST walk over one method collecting writes and self-call sites."""

    def __init__(self, lock_attr: str) -> None:
        self.lock_attr = lock_attr

    def collect(self, method: _FunctionNode, seed_held: bool) -> _MethodEvents:
        events = _MethodEvents(method.name)
        self._walk_body(events, method.body, seed_held, True)
        return events

    def _walk_body(self, events: _MethodEvents, body: List[ast.stmt],
                   held: bool, credit: bool) -> None:
        for stmt in body:
            self._walk_stmt(events, stmt, held, credit)

    def _walk_stmt(self, events: _MethodEvents, stmt: ast.AST,
                   held: bool, credit: bool) -> None:
        if isinstance(stmt, ast.With):
            now_held = held or any(
                _is_lock_context(item.context_expr, self.lock_attr)
                for item in stmt.items)
            for item in stmt.items:
                self._walk_expr(events, item.context_expr, held, credit)
            self._walk_body(events, stmt.body, now_held, credit)
            return
        if isinstance(stmt, _FUNCTION_NODES):
            # A nested def/closure may run after the enclosing with-block
            # has exited: never assume the lock is still held inside it,
            # and never credit it with the enclosing method's status.
            self._walk_body(events, stmt.body, False, False)
            return
        for attr, node in _written_attrs(stmt):
            events.writes.append((attr, _Site(node, held, credit)))
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, (ast.stmt, ast.excepthandler)):
                self._walk_stmt(events, child, held, credit)
            else:
                self._walk_expr(events, child, held, credit)

    def _walk_expr(self, events: _MethodEvents, expr: ast.AST,
                   held: bool, credit: bool) -> None:
        if isinstance(expr, ast.Lambda):
            held = False  # the lambda may run after the lock is released
            credit = False
        if isinstance(expr, ast.Call):
            attr = _mutating_call_attr(expr)
            if attr is not None:
                events.writes.append((attr, _Site(expr, held, credit)))
            callee = _self_method_called(expr)
            if callee is not None:
                events.calls.append((callee, _Site(expr, held, credit)))
        for child in ast.iter_child_nodes(expr):
            self._walk_expr(events, child, held, credit)


class ConcurrencyRule(Rule):
    name = "concurrency"
    description = ("writes to worker-shared engine state must hold the "
                   "class lock (thread-safety registry)")
    ids = {
        "QLC001": "unguarded write to shared state in a registered "
                  "thread-shared class",
        "QLC002": "module-global write inside a worker-reachable module",
        "QLC003": "call of a '*_locked' method from a site that does not "
                  "hold the lock",
    }
    default_scope = ("repro/",)

    def check(self, ctx: FileContext,
              config: AnalysisConfig) -> Iterator[Violation]:
        registry: ThreadSafetyRegistry = config.registry  # type: ignore[assignment]
        specs = registry.classes_in(ctx.pkg_path)
        if specs:
            for node in ctx.tree.body:
                if isinstance(node, ast.ClassDef) and node.name in specs:
                    yield from self._check_class(ctx, node, specs[node.name],
                                                 registry)
        if registry.is_worker_reachable(ctx.pkg_path):
            yield from self._check_globals(ctx)

    # -- QLC001 / QLC003 -----------------------------------------------------
    def _check_class(self, ctx: FileContext, cls: ast.ClassDef,
                     spec: SharedClassSpec,
                     registry: ThreadSafetyRegistry) -> Iterator[Violation]:
        suffix = registry.locked_suffix
        collector = _ClassCollector(spec.lock_attr)
        methods: Dict[str, _MethodEvents] = {}
        for node in cls.body:
            if not isinstance(node, _FUNCTION_NODES):
                continue
            if node.name == "__init__":
                continue  # not yet published to other threads
            methods[node.name] = collector.collect(
                node, seed_held=node.name.endswith(suffix))

        held_methods = self._propagate_held(methods, suffix)

        for name, events in methods.items():
            method_held = name in held_methods
            for attr, site in events.writes:
                if not site.held(method_held):
                    yield from self._flag(ctx, cls.name, spec, attr,
                                          site.node)
            for callee, site in events.calls:
                if callee.endswith(suffix) and callee in methods \
                        and not site.held(method_held):
                    yield Violation(
                        "QLC003", ctx.path,
                        getattr(site.node, "lineno", 1),
                        getattr(site.node, "col_offset", 0),
                        f"call of {cls.name}.{callee} without holding "
                        f"self.{spec.lock_attr}; the '{suffix}' suffix "
                        f"promises the caller owns the lock -- wrap the "
                        f"call in 'with self.{spec.lock_attr}:'",
                    )

    @staticmethod
    def _propagate_held(methods: Dict[str, _MethodEvents],
                        suffix: str) -> Set[str]:
        """Methods that always run with the lock held.

        Seeds with the ``*_locked`` convention, then fixpoints: a private
        method all of whose in-class call sites hold the lock is itself
        held.  Two rounds propagate through two-hop helper chains.
        """
        held: Set[str] = {name for name in methods if name.endswith(suffix)}
        sites_by_callee: Dict[str, List[Tuple[str, _Site]]] = {}
        for name, events in methods.items():
            for callee, site in events.calls:
                sites_by_callee.setdefault(callee, []).append((name, site))
        for _ in range(_PROPAGATION_ROUNDS):
            for name in methods:
                if name in held or not name.startswith("_") \
                        or name.startswith("__"):
                    continue
                sites = sites_by_callee.get(name)
                if sites and all(site.held(caller in held)
                                 for caller, site in sites):
                    held.add(name)
        return held

    def _flag(self, ctx: FileContext, cls_name: str, spec: SharedClassSpec,
              attr: str, node: ast.AST) -> Iterator[Violation]:
        if attr in spec.unguarded_ok:
            return
        yield Violation(
            "QLC001", ctx.path, getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0),
            f"write to {cls_name}.{attr} without holding "
            f"self.{spec.lock_attr}; wrap in 'with self.{spec.lock_attr}:', "
            f"move into a '*_locked' helper, or register the attribute as a "
            f"documented benign race in the thread-safety registry",
        )

    # -- QLC002 ------------------------------------------------------------
    def _check_globals(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, _FUNCTION_NODES):
                for stmt in ast.walk(node):
                    if isinstance(stmt, ast.Global):
                        yield Violation(
                            "QLC002", ctx.path, stmt.lineno, stmt.col_offset,
                            f"module-global write ({', '.join(stmt.names)}) "
                            f"in a worker-reachable module; globals have no "
                            f"lock discipline -- move the state onto a "
                            f"registered class",
                        )
