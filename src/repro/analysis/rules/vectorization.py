"""QLV -- vectorization rules: no element-at-a-time loops in kernels.

The paper's core argument is that a vectorized engine amortizes
interpretation overhead over whole vectors; a Python ``for`` loop over
``Vector``/``DataChunk`` element data reintroduces exactly the per-value
overhead the engine exists to avoid.  Kernels under ``functions/`` and
``execution/`` must express their work as NumPy array operations.

Legitimate exceptions exist -- VARCHAR kernels operate on object-dtype
arrays where no NumPy bulk primitive applies -- and are suppressed inline
with a justification (``# quacklint: disable=QLV001 -- why``).  The
deliberately scalar ``baselines/tuple_engine.py`` is excluded by scope:
it exists to *measure* the overhead this rule forbids.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Sequence, Set

from ..core import AnalysisConfig, FileContext, Rule, Violation

__all__ = ["VectorizationRule"]

#: Attributes that expose per-element engine data.
_ELEMENT_ATTRS = frozenset({"data", "validity"})


def _target_names(target: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.add(node.id)
    return names


def _bare_names(node: ast.AST) -> Set[str]:
    """Names used directly in an index expression.

    Attribute bases are excluded on purpose: ``data[vector.validity]`` is a
    bulk masked operation even though ``vector`` is the loop variable, while
    ``data[index]`` is the element-at-a-time pattern this rule exists for.
    """
    if isinstance(node, ast.Name):
        return {node.id}
    if isinstance(node, ast.Attribute):
        return set()
    names: Set[str] = set()
    for child in ast.iter_child_nodes(node):
        names |= _bare_names(child)
    return names


def _element_attribute(node: ast.AST) -> Optional[str]:
    """Describe ``<expr>.data`` / ``<expr>.validity``, or None."""
    if isinstance(node, ast.Attribute) and node.attr in _ELEMENT_ATTRS:
        base = node.value
        if isinstance(base, ast.Name):
            return f"{base.id}.{node.attr}"
        return f"<expr>.{node.attr}"
    return None


def _iter_targets_element_data(iter_expr: ast.AST) -> Optional[str]:
    """Element-data expression iterated over directly (incl. zip/enumerate)."""
    described = _element_attribute(iter_expr)
    if described is not None:
        return described
    if isinstance(iter_expr, ast.Call) and isinstance(iter_expr.func, ast.Name) \
            and iter_expr.func.id in ("zip", "enumerate", "reversed"):
        for arg in iter_expr.args:
            described = _element_attribute(arg)
            if described is not None:
                return described
    return None


class VectorizationRule(Rule):
    name = "vectorization"
    description = ("kernels must use NumPy bulk operations, not "
                   "element-at-a-time loops over vector data")
    ids = {
        "QLV001": "loop body indexes vector element data with the loop "
                  "variable",
        "QLV002": "loop iterates directly over vector element data",
    }
    default_scope = ("repro/functions/", "repro/execution/")

    def check(self, ctx: FileContext,
              config: AnalysisConfig) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_loop(ctx, node, node.target, node.iter,
                                            node.body)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for generator in node.generators:
                    described = _iter_targets_element_data(generator.iter)
                    if described is not None:
                        yield Violation(
                            "QLV002", ctx.path, node.lineno, node.col_offset,
                            f"comprehension iterates over {described} "
                            f"element-by-element; use a NumPy bulk operation",
                        )

    def _check_loop(self, ctx: FileContext, loop: ast.AST, target: ast.AST,
                    iter_expr: ast.AST,
                    body: Sequence[ast.stmt]) -> Iterator[Violation]:
        described = _iter_targets_element_data(iter_expr)
        if described is not None:
            yield Violation(
                "QLV002", ctx.path, loop.lineno, loop.col_offset,
                f"for-loop iterates over {described} element-by-element; "
                f"use a NumPy bulk operation",
            )
            return
        loop_vars = _target_names(target)
        if not loop_vars:
            return
        for stmt in body:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Subscript):
                    continue
                described = _element_attribute(node.value)
                if described is None:
                    continue
                if loop_vars & _bare_names(node.slice):
                    yield Violation(
                        "QLV001", ctx.path, loop.lineno, loop.col_offset,
                        f"for-loop indexes {described}[...] with its loop "
                        f"variable (element-at-a-time kernel); vectorize "
                        f"with NumPy bulk operations or suppress with a "
                        f"justification",
                    )
                    return  # one finding per loop is enough
