"""QLP -- plan-discipline rules for optimizer and planner rewrites.

quackplan (:mod:`repro.verifier`) catches broken plans at *runtime*; these
rules catch the coding patterns that produce them, at lint time, in the two
places that construct plans: ``repro/optimizer/`` and the physical planner.

* **QLP001** -- assigning to another node's ``.schema`` / ``.column_ids``
  mutates a plan node in place.  Ancestors that already captured the old
  schema (widths, column positions, cost estimates) now disagree with the
  child; the verifier sees this as a binding violation only when the query
  actually runs.  Rebuild the node instead -- or, at a leaf where paired
  fields are rebound in lockstep, suppress with a justification.
* **QLP002** -- constructing a ``Logical*``/``Physical*`` operator while
  passing some *other* node's ``.schema`` through verbatim.  A borrowed
  schema silently goes stale when the rewrite changes the expressions it
  was derived from; re-derive it from the expressions' return types.
  Advisory (warning severity): borrowing is occasionally correct, e.g.
  when the expressions are provably unchanged.
* **QLP003** -- growing a plan node's expression list in place
  (``node.pushed_filters.append(...)`` etc.) without re-deriving the
  node's schema.  In-place growth is invisible to parents holding a
  reference and skips every schema re-derivation.

``QLP000`` is reserved: the engine uses it for files that fail to parse
(:data:`repro.analysis.core.PARSE_ERROR_RULE`), so this family starts at
QLP001.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..core import AnalysisConfig, FileContext, Rule, Violation

__all__ = ["PlanDisciplineRule"]

#: Node fields whose in-place reassignment rebinds the plan under parents.
_SCHEMA_FIELDS = ("schema", "column_ids")

#: List-growing methods that mutate a node's expression lists in place.
_GROW_METHODS = ("append", "extend", "insert")

#: Expression-list attributes of plan operators.
_PLAN_LIST_FIELDS = ("pushed_filters", "conditions", "expressions",
                     "groups", "aggregates", "items", "rows")


def _receiver_is_self(node: ast.AST) -> bool:
    return isinstance(node, ast.Name) and node.id == "self"


def _is_operator_constructor(func: ast.AST) -> Optional[str]:
    """Name of the plan-operator class being constructed, if any."""
    name = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    if name is not None and (name.startswith("Logical")
                             or name.startswith("Physical")):
        return name
    return None


class PlanDisciplineRule(Rule):
    name = "plans"
    description = ("plan rewrites must rebuild operator nodes and re-derive "
                   "schemas, not mutate them in place")
    ids = {
        "QLP001": "plan node schema/column_ids reassigned in place; "
                  "ancestors holding the node now disagree with it",
        "QLP002": "operator constructed with another node's .schema passed "
                  "through verbatim; re-derive it from the expressions",
        "QLP003": "plan node expression list grown in place without "
                  "re-deriving the node's schema",
    }
    #: QLP002 is advisory: borrowing a schema is correct when the
    #: expressions deriving it are provably unchanged.
    warning_ids = ("QLP002",)
    default_scope = ("repro/optimizer/",
                     "repro/execution/physical_planner.py")

    def check(self, ctx: FileContext,
              config: AnalysisConfig) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                yield from self._check_schema_assign(ctx, node)
            elif isinstance(node, ast.Call):
                yield from self._check_borrowed_schema(ctx, node)
                yield from self._check_list_growth(ctx, node)

    # -- QLP001: in-place schema rebinds --------------------------------------
    def _check_schema_assign(self, ctx: FileContext,
                             node: ast.AST) -> Iterator[Violation]:
        targets = node.targets if isinstance(node, ast.Assign) \
            else [node.target]
        for target in targets:
            if not isinstance(target, ast.Attribute):
                continue
            if target.attr not in _SCHEMA_FIELDS:
                continue
            if _receiver_is_self(target.value):
                # A node initializing/adjusting its own fields (e.g. in
                # __init__) is construction, not cross-node mutation.
                continue
            yield Violation(
                "QLP001", ctx.path, target.lineno, target.col_offset,
                f"assignment to .{target.attr} mutates a plan node in "
                f"place; parents that captured the old schema now "
                f"disagree with the child -- rebuild the operator instead",
            )

    # -- QLP002: borrowed schemas ---------------------------------------------
    def _check_borrowed_schema(self, ctx: FileContext,
                               node: ast.Call) -> Iterator[Violation]:
        constructed = _is_operator_constructor(node.func)
        if constructed is None:
            return
        arguments = list(node.args) + [kw.value for kw in node.keywords]
        for argument in arguments:
            if isinstance(argument, ast.Attribute) \
                    and argument.attr == "schema" \
                    and not _receiver_is_self(argument.value):
                yield Violation(
                    "QLP002", ctx.path, argument.lineno, argument.col_offset,
                    f"{constructed}(...) borrows another node's .schema "
                    f"verbatim; if the rewrite can change the expressions "
                    f"it was derived from, re-derive the schema from their "
                    f"return types",
                )

    # -- QLP003: in-place list growth -----------------------------------------
    def _check_list_growth(self, ctx: FileContext,
                           node: ast.Call) -> Iterator[Violation]:
        func = node.func
        if not isinstance(func, ast.Attribute) \
                or func.attr not in _GROW_METHODS:
            return
        receiver = func.value
        if not isinstance(receiver, ast.Attribute) \
                or receiver.attr not in _PLAN_LIST_FIELDS:
            return
        if _receiver_is_self(receiver.value):
            return
        yield Violation(
            "QLP003", ctx.path, node.lineno, node.col_offset,
            f".{receiver.attr}.{func.attr}(...) grows a plan node's "
            f"expression list in place without re-deriving its schema; "
            f"rebuild the node with the combined list instead",
        )
