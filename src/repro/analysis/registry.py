"""The thread-safety registry: which engine state is shared across threads.

PR 1 introduced morsel-driven parallelism: ``execution/parallel.py`` runs
pipeline fragments on a ``ThreadPoolExecutor``, so everything a fragment can
reach -- the execution context, the buffer manager, the catalog, the
transaction manager -- is *shared mutable state*.  Each of those classes
already serializes writes behind a ``threading.Lock``; this registry writes
that design down in machine-checkable form so the concurrency rule family
(QLC) can enforce it forever:

* every class listed in :data:`DEFAULT_SHARED_CLASSES` must guard writes to
  ``self`` state with ``with self.<lock_attr>:``;
* methods whose names end in ``_locked`` are asserted (by convention) to be
  called with the lock already held, and are exempt;
* ``__init__`` is exempt -- the object is not yet published to other
  threads while it is being constructed;
* attributes in ``unguarded_ok`` are *documented* benign races
  (e.g. ``ExecutionContext.interrupted`` is a monotonic bool flag polled
  between chunks; ``_subquery_results`` is only touched by the coordinator
  because :func:`~repro.execution.parallel.expressions_parallel_safe` keeps
  subquery pipelines serial).

Modules listed in :data:`DEFAULT_WORKER_REACHABLE` execute on worker
threads; writes to module-level globals there are flagged outright (QLC002)
because no lock discipline can be inferred for them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from ..sanitizer.hierarchy import (
    CLASS_LOCK_ATTRS,
    GLOBAL_LOCK_ATTRS,
    LOCK_HIERARCHY,
)

__all__ = [
    "SharedClassSpec",
    "ThreadSafetyRegistry",
    "DEFAULT_SHARED_CLASSES",
    "DEFAULT_WORKER_REACHABLE",
]


@dataclass(frozen=True)
class SharedClassSpec:
    """Lock discipline for one class shared across worker threads."""

    lock_attr: str
    #: Attributes with documented benign unguarded writes.
    unguarded_ok: FrozenSet[str] = frozenset()


#: Seeded from the modules the morsel-driven executor actually shares:
#: physical.py (ExecutionContext), parallel.py (MorselDriver),
#: buffer_manager.py, catalog.py, transaction/manager.py, and the
#: client-facing Connection (one connection may be driven from several
#: application threads).
DEFAULT_SHARED_CLASSES: Dict[str, Dict[str, SharedClassSpec]] = {
    "repro/execution/physical.py": {
        # ``interrupted`` is a cross-thread cancellation flag: single bool
        # store, polled between chunks -- guarding it would serialize the
        # hot path for nothing.  ``_subquery_results`` is coordinator-only:
        # pipelines containing subqueries never parallelize (see
        # expressions_parallel_safe).  ``lowering_active`` is likewise
        # coordinator-only: plans (including subquery plans) are lowered
        # before/outside morsel workers.
        "ExecutionContext": SharedClassSpec(
            "_stats_lock", frozenset({"interrupted", "_subquery_results",
                                      "lowering_active"})),
    },
    "repro/execution/parallel.py": {
        # ``_parent_span`` is written once by the coordinator before any
        # morsel task is submitted (pool.submit is the happens-before edge)
        # and only read by workers afterwards.
        "MorselDriver": SharedClassSpec("_lock",
                                        frozenset({"_parent_span"})),
    },
    "repro/storage/buffer_manager.py": {
        "BufferManager": SharedClassSpec("_lock"),
    },
    "repro/catalog/catalog.py": {
        "Catalog": SharedClassSpec("_lock"),
    },
    "repro/transaction/manager.py": {
        "TransactionManager": SharedClassSpec("_lock"),
    },
    "repro/client/connection.py": {
        # ``_active_context`` is published so Connection.interrupt() (called
        # from another thread) can set the cancellation flag; a stale read
        # merely misses an interrupt window, it cannot corrupt state.
        # The accounting scratch (``_statement_seq``, ``_buffer_baseline``,
        # ``last_accounting``) is written on the result-cache hit path,
        # which deliberately skips the connection lock; a torn value can
        # only mislabel one accounting estimate, never corrupt engine
        # state, and guarding it would put a lock on the hottest path.
        # ``_session_id`` is written once by SessionRegistry.create before
        # the connection serves any statement.
        "Connection": SharedClassSpec(
            "_lock", frozenset({"_active_context", "_session_id",
                                "_statement_seq", "_buffer_baseline",
                                "last_accounting"})),
    },
    "repro/server/cache.py": {
        # Every connection thread looks up / stores through the shared
        # caches; all state (the LRU map and its counters) lives behind one
        # lock per cache.
        "PlanCache": SharedClassSpec("_lock"),
        "ResultCache": SharedClassSpec("_lock"),
    },
    "repro/server/admission.py": {
        "AdmissionController": SharedClassSpec("_lock"),
    },
    "repro/server/session.py": {
        "SessionRegistry": SharedClassSpec("_lock"),
        # Session stats share the registry's lock (aliased at construction)
        # so the repro_sessions() snapshot is one consistent critical
        # section.  ``_closed``/``state`` transitions happen under it too.
        "Session": SharedClassSpec("_registry_lock"),
    },
    "repro/introspection/profiler.py": {
        # The sampler daemon writes buckets while any connection thread may
        # snapshot them through repro_profile().
        "SamplingProfiler": SharedClassSpec("_lock"),
    },
    "repro/observability/history.py": {
        # The telemetry daemon appends samples while any connection thread
        # snapshots them through repro_metrics_history().
        # ``_span_watermark`` is sampler-thread-only state on the sampler.
        "MetricsHistory": SharedClassSpec("_lock"),
        "TelemetrySampler": SharedClassSpec(
            "_lock", frozenset({"_span_watermark"})),
    },
    "repro/observability/accounting.py": {
        # Every connection thread appends statement bills; introspection
        # snapshots them concurrently.
        "StatementLog": SharedClassSpec("_lock"),
    },
    "repro/observability/export.py": {
        # The sampler daemon and the closing coordinator may emit into the
        # sink concurrently.
        "JsonlTelemetrySink": SharedClassSpec("_lock"),
    },
    "repro/server/capture.py": {
        # Sessions on many worker threads emit captured statements.
        "WorkloadCapture": SharedClassSpec("_lock"),
    },
    "repro/introspection/flight.py": {
        # Every connection thread appends to the statement ring.
        "FlightRecorder": SharedClassSpec("_lock"),
    },
    "repro/verifier/verifier.py": {
        # quackplan is shared engine state: statements on concurrent
        # connections (and subquery lowerings mid-execution) report their
        # check results here.
        "PlanVerifier": SharedClassSpec("_lock"),
        "PlanCheckLog": SharedClassSpec("_lock"),
    },
}

#: Modules whose functions run on morsel worker threads (or are called from
#: code that does).  Module-global writes here are always violations.
DEFAULT_WORKER_REACHABLE: Tuple[str, ...] = (
    "repro/execution/",
    "repro/functions/",
    "repro/types/",
    "repro/storage/buffer_manager.py",
    "repro/storage/table_data.py",
    "repro/catalog/",
    "repro/transaction/",
    "repro/verifier/",
)


@dataclass
class ThreadSafetyRegistry:
    """Queryable view over the shared-state seed data (tests may override)."""

    shared_classes: Dict[str, Dict[str, SharedClassSpec]] = field(
        default_factory=lambda: {
            path: dict(classes)
            for path, classes in DEFAULT_SHARED_CLASSES.items()
        })
    worker_reachable: Tuple[str, ...] = DEFAULT_WORKER_REACHABLE
    locked_suffix: str = "_locked"

    def spec_for(self, pkg_path: str,
                 class_name: str) -> Optional[SharedClassSpec]:
        return self.shared_classes.get(pkg_path, {}).get(class_name)

    def classes_in(self, pkg_path: str) -> Dict[str, SharedClassSpec]:
        return self.shared_classes.get(pkg_path, {})

    def is_worker_reachable(self, pkg_path: str) -> bool:
        return any(pkg_path == prefix or pkg_path.startswith(prefix)
                   for prefix in self.worker_reachable)

    # -- lock hierarchy (shared with the runtime sanitizer) -----------------
    lock_hierarchy: Tuple[str, ...] = LOCK_HIERARCHY
    class_lock_attrs: Dict[str, Dict[str, Dict[str, str]]] = field(
        default_factory=lambda: {
            path: {cls: dict(attrs) for cls, attrs in classes.items()}
            for path, classes in CLASS_LOCK_ATTRS.items()
        })
    global_lock_attrs: Dict[str, str] = field(
        default_factory=lambda: dict(GLOBAL_LOCK_ATTRS))

    def lock_level(self, name: str) -> Optional[int]:
        """Position of lock ``name`` in the hierarchy (0 = outermost)."""
        try:
            return self.lock_hierarchy.index(name)
        except ValueError:
            return None

    def resolve_lock_attr(self, pkg_path: str, class_name: Optional[str],
                          attr: str, on_self: bool) -> Optional[str]:
        """Hierarchy name of the lock behind attribute ``attr``, or None.

        ``self.<attr>`` inside a class listed in :data:`CLASS_LOCK_ATTRS`
        resolves precisely; any other receiver falls back to the globally
        unambiguous attribute names (``_checkpoint_lock``, ``_stats_lock``,
        ``lock``) -- deliberately not ``_lock``, which half the engine uses.
        """
        if on_self and class_name is not None:
            attrs = self.class_lock_attrs.get(pkg_path, {}).get(class_name)
            if attrs and attr in attrs:
                return attrs[attr]
        if not on_self:
            return self.global_lock_attrs.get(attr)
        return None
