"""The committed kernel capability manifest and its drift gate.

``kernel_manifest.json`` is a build artifact that lives *in the tree*: it
records what the analyzer inferred about every registered kernel, plus a
sha256 fingerprint of each kernel module's source.  CI (and
``python -m repro.analysis --check-manifest``) regenerates the facts and
fails when the committed manifest no longer matches -- so kernel code cannot
change contracts silently.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Optional

from .analyzer import analyze_registry, source_fingerprints
from .facts import KernelFact, dtype_convertible

__all__ = [
    "MANIFEST_PATH",
    "MANIFEST_VERSION",
    "generate_manifest",
    "load_manifest",
    "manifest_entries",
    "write_manifest",
    "check_manifest",
    "cross_check_declarations",
]

MANIFEST_VERSION = 1

#: The committed manifest sits next to this module so it ships with the
#: package and is found regardless of the working directory.
MANIFEST_PATH = pathlib.Path(__file__).resolve().parent / "kernel_manifest.json"


def generate_manifest() -> Dict[str, Any]:
    """Run the analyzer and build the manifest document."""
    facts = analyze_registry()
    return {
        "version": MANIFEST_VERSION,
        "sources": source_fingerprints(),
        "kernels": [fact.as_dict() for fact in facts],
    }


def write_manifest(path: Optional[pathlib.Path] = None) -> pathlib.Path:
    """Regenerate and write the manifest; returns the path written."""
    target = path or MANIFEST_PATH
    document = generate_manifest()
    target.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n",
                      encoding="utf-8")
    return target


def load_manifest(path: Optional[pathlib.Path] = None) -> Dict[str, Any]:
    """Load the committed manifest document."""
    target = path or MANIFEST_PATH
    return json.loads(target.read_text(encoding="utf-8"))


def manifest_entries(path: Optional[pathlib.Path] = None) -> List[KernelFact]:
    """The committed manifest as :class:`KernelFact` objects."""
    document = load_manifest(path)
    return [KernelFact.from_dict(entry) for entry in document["kernels"]]


def check_manifest(path: Optional[pathlib.Path] = None) -> List[str]:
    """Drift gate: regenerate facts and diff against the committed manifest.

    Returns a list of human-readable problems; empty means the manifest is
    current.  Fingerprints are checked first so a stale manifest reports the
    changed module even when the inferred facts happen to agree.
    """
    problems: List[str] = []
    try:
        committed = load_manifest(path)
    except FileNotFoundError:
        return [f"manifest missing: {path or MANIFEST_PATH} "
                "(run python -m repro.analysis --write-manifest)"]
    except (OSError, ValueError) as error:
        return [f"manifest unreadable: {error}"]

    if committed.get("version") != MANIFEST_VERSION:
        problems.append(
            f"manifest version {committed.get('version')!r} != "
            f"{MANIFEST_VERSION} (regenerate)")

    current_sources = source_fingerprints()
    committed_sources = committed.get("sources", {})
    for module, digest in sorted(current_sources.items()):
        if committed_sources.get(module) != digest:
            problems.append(f"source drift: {module} changed since the "
                            "manifest was generated")
    for module in sorted(set(committed_sources) - set(current_sources)):
        problems.append(f"source drift: {module} in manifest but not analyzed")

    current = {fact.key: fact.as_dict() for fact in analyze_registry()}
    committed_kernels = {
        f"{entry.get('kind')}:{entry.get('name')}": entry
        for entry in committed.get("kernels", [])
    }
    for key in sorted(set(current) - set(committed_kernels)):
        problems.append(f"kernel {key} registered but missing from manifest")
    for key in sorted(set(committed_kernels) - set(current)):
        problems.append(f"kernel {key} in manifest but no longer registered")
    for key in sorted(set(current) & set(committed_kernels)):
        fresh, stale = current[key], committed_kernels[key]
        for field_name in sorted(set(fresh) | set(stale)):
            if fresh.get(field_name) != stale.get(field_name):
                problems.append(
                    f"kernel {key}: field {field_name!r} drifted "
                    f"({stale.get(field_name)!r} -> {fresh.get(field_name)!r})")
    return problems


def cross_check_declarations(
        facts: Optional[List[KernelFact]] = None) -> List[str]:
    """Bind-declaration cross-check: inferred dtype vs. declared LogicalType.

    Returns one message per kernel whose produced NumPy dtype cannot losslessly
    convert to the LogicalType its bind function declares (the registry-level
    view of QLK001).
    """
    problems: List[str] = []
    for fact in (facts if facts is not None else analyze_registry()):
        verdict = dtype_convertible(fact.inferred_dtype, fact.declared_type)
        if verdict is False:
            problems.append(
                f"{fact.key}: kernel produces {fact.inferred_dtype} but bind "
                f"declares {fact.declared_type} ({fact.source})")
    return problems
