"""Runtime conformance harness: does each kernel honour its manifest entry?

The static analyzer *claims* contracts; this harness *checks* them by
fuzzing every kernel with NULL-heavy, empty, and extreme vectors:

* garbage independence -- two runs differing only in the poison planted at
  masked-out lanes must agree on every valid output lane (a kernel that
  computes on masked garbage and leaks it through ``np.where`` fails here);
* NULL propagation -- for ``propagate`` kernels, a NULL in any argument
  lane must yield NULL in that output lane (extra NULLs are allowed);
* input immutability -- kernels never write into their argument arrays;
* dtype conformance -- the produced array dtype is convertible to the
  declared LogicalType; and
* shape -- empty vectors round-trip without crashing, lengths match.

Aggregates are additionally checked for skip-NULL semantics: the result
over the full input must equal the result over the input with NULL rows
physically removed.
"""

# quacklint: disable-file=QLE001 -- the harness fuzzes kernels with hostile
# inputs; a raised exception IS the finding (reported as a ConformanceIssue),
# so broad handlers here convert failures into results by design.

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .facts import NULL_PROPAGATE, NULL_SKIP, KernelFact

__all__ = ["ConformanceIssue", "run_conformance"]


@dataclass
class ConformanceIssue:
    """One contract violation observed at runtime."""

    kernel: str
    check: str
    detail: str

    def __str__(self) -> str:
        return f"{self.kernel} [{self.check}]: {self.detail}"


_SIZES = (0, 1, 17, 64)

#: Valid-lane sample values per LogicalType name (cycled to length).
_VALUES: Dict[str, List[object]] = {
    "BOOLEAN": [True, False, True, True, False],
    "TINYINT": [0, 1, -3, 7, 5],
    "SMALLINT": [0, 2, -9, 31, 8],
    "INTEGER": [0, 1, -2, 3, 100, -7, 2],
    "BIGINT": [0, 5, -11, 1_000_000, 3, -2],
    "FLOAT": [0.0, 1.5, -2.25, 100.0, 0.125],
    "DOUBLE": [0.0, 1.5, -2.25, 1e10, -0.5, 3.75, 42.0],
    "VARCHAR": ["", "a", "Hello", "foo%bar", "quack", "Zebra"],
    "DATE": [0, 1, 365, 20_000, -400, 7_305],
    "TIMESTAMP": [0, 86_400_000_000, 123_456_789, 5_000_000],
}

#: Two distinct poison families planted at masked-out lanes.
_POISON: Dict[str, Tuple[object, object]] = {
    "BOOLEAN": (True, False),
    "TINYINT": (111, -99),
    "SMALLINT": (31_000, -31_000),
    "INTEGER": (999_983, -123_457),
    "BIGINT": (88_888_888, -77_777_777),
    "FLOAT": (3.0e38, -1.5e38),
    "DOUBLE": (1.0e308, -6.66e307),
    "VARCHAR": ("GARBAGE-A", "GARBAGE-B"),
    "DATE": (2_000_003, -2_000_003),
    "TIMESTAMP": (9_000_000_000_000, -9_000_000_000_000),
}

_VALIDITY_PATTERNS = ("all-valid", "all-null", "alternating", "head-null")


def _validity(pattern: str, size: int, seed: int) -> np.ndarray:
    if pattern == "all-valid":
        return np.ones(size, dtype=np.bool_)
    if pattern == "all-null":
        return np.zeros(size, dtype=np.bool_)
    mask = np.ones(size, dtype=np.bool_)
    if pattern == "alternating":
        mask[seed % 2::2] = False
    else:  # head-null
        mask[: min(size, 3 + seed % 3)] = False
    return mask


def _make_vector(logical: object, size: int, validity: np.ndarray,
                 poison_index: int, seed: int) -> object:
    from ...types import Vector

    name = str(logical)
    values = _VALUES.get(name, _VALUES["INTEGER"])
    poison = _POISON.get(name, _POISON["INTEGER"])[poison_index]
    dtype = logical.numpy_dtype  # type: ignore[attr-defined]
    if name == "VARCHAR":
        data = np.empty(size, dtype=object)
    else:
        data = np.zeros(size, dtype=dtype)
    for row in range(size):
        if validity[row]:
            data[row] = values[(row + seed) % len(values)]
        else:
            data[row] = poison
    return Vector(logical, data, validity.copy())


def _snapshot(vectors: Sequence[object]) -> List[Tuple[np.ndarray, np.ndarray]]:
    return [(vector.data.copy(), vector.validity.copy())  # type: ignore[attr-defined]
            for vector in vectors]


def _inputs_mutated(vectors: Sequence[object],
                    snapshots: List[Tuple[np.ndarray, np.ndarray]]) -> bool:
    for vector, (data, validity) in zip(vectors, snapshots):
        if not np.array_equal(vector.validity, validity):  # type: ignore[attr-defined]
            return True
        before = np.asarray(data)
        after = np.asarray(vector.data)  # type: ignore[attr-defined]
        if before.dtype == object or after.dtype == object:
            if list(after) != list(before):
                return True
        elif not np.array_equal(after, before):
            return True
    return False


def _valid_lanes_equal(first: object, second: object) -> bool:
    if not np.array_equal(first.validity, second.validity):  # type: ignore[attr-defined]
        return False
    valid = np.asarray(first.validity)  # type: ignore[attr-defined]
    left = np.asarray(first.data)[valid]  # type: ignore[attr-defined]
    right = np.asarray(second.data)[valid]  # type: ignore[attr-defined]
    if left.dtype == object or right.dtype == object:
        return list(left) == list(right)
    if left.dtype.kind == "f":
        return bool(np.allclose(left, right, equal_nan=True))
    return bool(np.array_equal(left, right))


def _probe_arg_types(bind: Callable) -> List[List[object]]:
    """Concrete coerced argument-type lists the bind function accepts."""
    from ...types import BOOLEAN, DATE, DOUBLE, INTEGER, VARCHAR

    accepted: List[List[object]] = []
    for arity in range(0, 5):
        for base in (DOUBLE, VARCHAR, INTEGER, DATE, BOOLEAN):
            try:
                _, coerced = bind([base] * arity)
            except Exception:
                continue
            if list(coerced) not in accepted:
                accepted.append(list(coerced))
            break
    return accepted


# -- scalar kernels ----------------------------------------------------------

def _check_scalar(fact: KernelFact, issues: List[ConformanceIssue]) -> None:
    from ...functions.scalar import SCALAR_FUNCTIONS
    from .facts import dtype_convertible

    function = SCALAR_FUNCTIONS.get(fact.name)
    if function is None:
        issues.append(ConformanceIssue(fact.key, "registry",
                                       "manifest entry has no registered kernel"))
        return
    signatures = _probe_arg_types(function.bind)
    if not signatures:
        issues.append(ConformanceIssue(fact.key, "bind",
                                       "no probe signature binds"))
        return
    for arg_types in signatures:
        try:
            return_type, coerced = function.bind(list(arg_types))
        except Exception as error:
            issues.append(ConformanceIssue(fact.key, "bind", repr(error)))
            continue
        arg_types = list(coerced)
        for size in _SIZES:
            for pattern in _VALIDITY_PATTERNS:
                _fuzz_scalar_case(fact, function, return_type, arg_types,
                                  size, pattern, issues)


def _fuzz_scalar_case(fact: KernelFact, function: object, return_type: object,
                      arg_types: List[object], size: int, pattern: str,
                      issues: List[ConformanceIssue]) -> None:
    from .facts import dtype_convertible

    validities = [_validity(pattern, size, seed)
                  for seed in range(len(arg_types))]
    runs = []
    for poison_index in (0, 1):
        vectors = [_make_vector(arg_type, size, validity, poison_index, seed)
                   for seed, (arg_type, validity)
                   in enumerate(zip(arg_types, validities))]
        snapshots = _snapshot(vectors)
        try:
            result = function.execute(vectors, size)  # type: ignore[attr-defined]
        except Exception as error:
            issues.append(ConformanceIssue(
                fact.key, "crash",
                f"size={size} validity={pattern} poison={poison_index}: "
                f"{error!r}"))
            return
        if _inputs_mutated(vectors, snapshots):
            issues.append(ConformanceIssue(
                fact.key, "input-immutability",
                f"size={size} validity={pattern}: kernel wrote into its "
                "argument arrays"))
            return
        runs.append(result)

    first, second = runs
    if len(first) != size:
        issues.append(ConformanceIssue(
            fact.key, "shape",
            f"size={size}: result length {len(first)}"))
        return
    produced = np.asarray(first.data).dtype.name
    if dtype_convertible(produced, str(return_type)) is False:
        issues.append(ConformanceIssue(
            fact.key, "dtype",
            f"produced {produced}, declared {return_type}"))
        return
    if not _valid_lanes_equal(first, second):
        issues.append(ConformanceIssue(
            fact.key, "garbage-independence",
            f"size={size} validity={pattern}: output depends on values at "
            "masked-out (NULL) input lanes"))
        return
    if fact.null_contract == NULL_PROPAGATE and size:
        any_null = np.zeros(size, dtype=np.bool_)
        for validity in validities:
            any_null |= ~validity
        leaked = any_null & np.asarray(first.validity)
        if leaked.any():
            issues.append(ConformanceIssue(
                fact.key, "null-propagation",
                f"size={size} validity={pattern}: NULL input lanes "
                f"{np.flatnonzero(leaked)[:5].tolist()} produced valid "
                "output"))


# -- aggregate kernels -------------------------------------------------------

def _check_aggregate(fact: KernelFact, issues: List[ConformanceIssue]) -> None:
    from ...functions.aggregate import bind_aggregate, compute_aggregate
    from ...types import DOUBLE, VARCHAR

    bases = [DOUBLE] if fact.name not in ("min", "max", "first", "count") \
        else [DOUBLE, VARCHAR]
    for base in bases:
        star = False
        try:
            return_type, coerced = bind_aggregate(fact.name, [base], False)
        except Exception:
            try:
                return_type, coerced = bind_aggregate(fact.name, [], True)
                star = True
            except Exception as error:
                issues.append(ConformanceIssue(fact.key, "bind", repr(error)))
                continue
        arg_type = coerced[0] if coerced else base
        for size in (0, 1, 31):
            for pattern in _VALIDITY_PATTERNS:
                _fuzz_aggregate_case(fact, star, arg_type, return_type, size,
                                     pattern, compute_aggregate, issues)


def _fuzz_aggregate_case(fact: KernelFact, star: bool, arg_type: object,
                         return_type: object, size: int, pattern: str,
                         compute: Callable,
                         issues: List[ConformanceIssue]) -> None:
    group_count = max(1, min(4, size))
    group_ids = (np.arange(size, dtype=np.int64) % group_count
                 if size else np.zeros(0, dtype=np.int64))
    validity = _validity(pattern, size, 0)
    results = []
    for poison_index in (0, 1):
        argument = None if star else _make_vector(arg_type, size, validity,
                                                  poison_index, 0)
        try:
            result = compute(fact.name, False, argument, group_ids,
                             group_count, return_type)
        except Exception as error:
            issues.append(ConformanceIssue(
                fact.key, "crash",
                f"size={size} validity={pattern}: {error!r}"))
            return
        results.append(result)
    if not _valid_lanes_equal(results[0], results[1]):
        issues.append(ConformanceIssue(
            fact.key, "garbage-independence",
            f"size={size} validity={pattern}: group results depend on "
            "masked-out input rows"))
        return
    if star or fact.null_contract != NULL_SKIP:
        return
    # Skip-NULL equivalence: physically removing NULL rows must not change
    # any group's result.
    keep = np.flatnonzero(validity)
    argument = _make_vector(arg_type, size, validity, 0, 0)
    from ...types import Vector
    reduced = Vector(argument.dtype,  # type: ignore[attr-defined]
                     np.asarray(argument.data)[keep],  # type: ignore[attr-defined]
                     np.ones(len(keep), dtype=np.bool_))
    try:
        expected = compute(fact.name, False, reduced, group_ids[keep],
                           group_count, return_type)
    except Exception as error:
        issues.append(ConformanceIssue(
            fact.key, "skip-nulls",
            f"size={size} validity={pattern}: NULL-free rerun crashed "
            f"{error!r}"))
        return
    if not _valid_lanes_equal(results[0], expected):
        issues.append(ConformanceIssue(
            fact.key, "skip-nulls",
            f"size={size} validity={pattern}: result differs from the "
            "NULL-rows-removed rerun"))


# -- builtin operators -------------------------------------------------------

def _operator_expression(fact: KernelFact) -> Optional[Tuple[object, List[object]]]:
    """(BoundExpression over column refs, argument LogicalTypes) for one op."""
    from ...planner.expressions import (
        BoundColumnRef,
        BoundInList,
        BoundIsNull,
        BoundLike,
        BoundOperator,
    )
    from ...types import BOOLEAN, DOUBLE, VARCHAR

    name = fact.name
    if name in ("=", "<>", "<", "<=", ">", ">="):
        args = [DOUBLE, DOUBLE]
        return BoundOperator(name, [BoundColumnRef(0, DOUBLE),
                                    BoundColumnRef(1, DOUBLE)], BOOLEAN), args
    if name in ("+", "-", "*", "/", "%"):
        args = [DOUBLE, DOUBLE]
        return BoundOperator(name, [BoundColumnRef(0, DOUBLE),
                                    BoundColumnRef(1, DOUBLE)], DOUBLE), args
    if name in ("and", "or"):
        args = [BOOLEAN, BOOLEAN]
        return BoundOperator(name, [BoundColumnRef(0, BOOLEAN),
                                    BoundColumnRef(1, BOOLEAN)], BOOLEAN), args
    if name == "not":
        return BoundOperator("not", [BoundColumnRef(0, BOOLEAN)],
                             BOOLEAN), [BOOLEAN]
    if name == "negate":
        return BoundOperator("negate", [BoundColumnRef(0, DOUBLE)],
                             DOUBLE), [DOUBLE]
    if name == "concat":
        return BoundOperator("concat", [BoundColumnRef(0, VARCHAR),
                                        BoundColumnRef(1, VARCHAR)],
                             VARCHAR), [VARCHAR, VARCHAR]
    if name in ("is_null", "is_not_null"):
        return BoundIsNull(BoundColumnRef(0, DOUBLE),
                           name == "is_not_null"), [DOUBLE]
    if name == "in_list":
        return BoundInList(BoundColumnRef(0, DOUBLE),
                           [BoundColumnRef(1, DOUBLE)], False), [DOUBLE, DOUBLE]
    if name == "like":
        return BoundLike(BoundColumnRef(0, VARCHAR), BoundColumnRef(1, VARCHAR),
                         False, False), [VARCHAR, VARCHAR]
    return None  # CASE needs constant branches; covered by engine tests.


def _check_operator(fact: KernelFact, issues: List[ConformanceIssue]) -> None:
    from ...execution.expression_executor import ExpressionExecutor
    from ...types.chunk import DataChunk

    built = _operator_expression(fact)
    if built is None:
        return
    expression, arg_types = built
    executor = ExpressionExecutor()
    for size in _SIZES:
        if size == 0:
            continue  # DataChunk carries no empty-chunk constructor contract
        for pattern in _VALIDITY_PATTERNS:
            validities = [_validity(pattern, size, seed)
                          for seed in range(len(arg_types))]
            runs = []
            crashed = False
            for poison_index in (0, 1):
                columns = [
                    _make_vector(arg_type, size, validity, poison_index, seed)
                    for seed, (arg_type, validity)
                    in enumerate(zip(arg_types, validities))]
                chunk = DataChunk(columns)
                snapshots = _snapshot(columns)
                try:
                    result = executor.execute(expression, chunk)
                except Exception as error:
                    issues.append(ConformanceIssue(
                        fact.key, "crash",
                        f"size={size} validity={pattern}: {error!r}"))
                    crashed = True
                    break
                if _inputs_mutated(columns, snapshots):
                    issues.append(ConformanceIssue(
                        fact.key, "input-immutability",
                        f"size={size} validity={pattern}: operator wrote "
                        "into its input chunk"))
                    crashed = True
                    break
                runs.append(result)
            if crashed:
                return
            if not _valid_lanes_equal(runs[0], runs[1]):
                issues.append(ConformanceIssue(
                    fact.key, "garbage-independence",
                    f"size={size} validity={pattern}: output depends on "
                    "masked-out input lanes"))
                return
            if fact.null_contract == NULL_PROPAGATE:
                any_null = np.zeros(size, dtype=np.bool_)
                for validity in validities:
                    any_null |= ~validity
                if (any_null & np.asarray(runs[0].validity)).any():
                    issues.append(ConformanceIssue(
                        fact.key, "null-propagation",
                        f"size={size} validity={pattern}: NULL input lanes "
                        "produced valid output"))
                    return


# -- entry point -------------------------------------------------------------

def run_conformance(
        facts: Optional[Sequence[KernelFact]] = None) -> List[ConformanceIssue]:
    """Fuzz every kernel against its manifest entry; empty list = clean."""
    if facts is None:
        from .manifest import manifest_entries
        try:
            facts = manifest_entries()
        except (OSError, ValueError):
            from .analyzer import analyze_registry
            facts = analyze_registry()
    issues: List[ConformanceIssue] = []
    for fact in facts:
        if fact.kind == "scalar":
            _check_scalar(fact, issues)
        elif fact.kind == "aggregate":
            _check_aggregate(fact, issues)
        elif fact.kind == "operator":
            _check_operator(fact, issues)
    return issues
