"""AST-level abstract interpretation of registered kernels.

The analyzer is *runtime assisted*: it locates each kernel's ``FunctionDef``
through its code object, then interprets the AST with the kernel's concrete
closure environment in scope.  Factory-built kernels (e.g.
``_numeric_unary_kernel(np.sign, INTEGER)``) are therefore analysed as the
*specialised* kernel -- branches on captured constants such as
``result_dtype is not None`` are pruned, not merged.

The abstract domain tracks, per value:

* NumPy dtype as a string (``"float64"``, ``"object"``, ``"argument"`` when
  it mirrors the input vector's dtype, ``"unknown"``);
* provenance (input array vs. freshly allocated);
* validity derivation (narrowing-only vs. widened / data-dependent).

From the interpreted returns the analyzer derives every :class:`KernelFact`
field: declared vs. produced dtype, NULL contract, copy behaviour,
vectorization, purity, and fusion eligibility.
"""

# quacklint: disable-file=QLE001 -- the abstract interpreter probes bind
# functions with deliberately wrong signatures and getattr's arbitrary
# closure objects; an exception is a negative probe result, not a failure.

from __future__ import annotations

import ast
import hashlib
import inspect
import sys
import types as pytypes
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .facts import (
    ARG_DEPENDENT,
    COPY_FRESH,
    COPY_INPLACE,
    COPY_UNKNOWN,
    COPY_VIEW,
    NULL_CUSTOM,
    NULL_PROPAGATE,
    NULL_SKIP,
    NULL_UNCHECKED,
    UNKNOWN,
    KernelFact,
)

__all__ = ["analyze_registry", "analyze_scalar_functions", "analyze_aggregates",
           "analyze_operators", "source_fingerprints"]

#: Modules whose source participates in the manifest fingerprint.
KERNEL_MODULES = (
    "repro.functions.scalar",
    "repro.functions.aggregate",
    "repro.execution.expression_executor",
)

_MISSING = object()


# -- abstract values ---------------------------------------------------------

@dataclass
class AVal:
    """One abstract value flowing through a kernel body."""

    kind: str  # const | array | vector | vectors | logical | unknown
    value: Any = _MISSING          # concrete payload for kind == "const"
    dtype: str = UNKNOWN           # numpy dtype name for array/vector data
    logical: str = UNKNOWN         # LogicalType name for vector/logical
    fresh: bool = False            # allocated inside the kernel
    from_input: bool = False       # derived from an input vector's arrays
    from_validity: bool = False    # derived from input validity masks
    from_data: bool = False        # derived from input data values
    widened: bool = False          # validity may become True where input was NULL

    def clone(self) -> "AVal":
        return AVal(**self.__dict__)


def _const(value: Any) -> AVal:
    return AVal("const", value=value)


def _unknown() -> AVal:
    return AVal("unknown")


def _input_vector() -> AVal:
    return AVal("vector", dtype=ARG_DEPENDENT, logical=ARG_DEPENDENT,
                from_input=True)


def _is_none(val: AVal) -> Optional[bool]:
    if val.kind == "const":
        return val.value is None
    if val.kind in ("vector", "vectors", "array", "logical"):
        return False
    return None


def _dtype_name(obj: Any) -> str:
    try:
        name = np.dtype(obj).name
    except Exception:
        return UNKNOWN
    return name


# -- evidence gathered while interpreting ------------------------------------

@dataclass
class Evidence:
    propagate_helper: bool = False
    validity_read: bool = False
    data_read: bool = False
    per_row_loop: bool = False
    inplace_input_write: bool = False
    global_mutation: bool = False
    io_call: bool = False
    self_state: bool = False
    avoidable_copies: List[str] = field(default_factory=list)
    followed: List[str] = field(default_factory=list)
    #: (logical, dtype, data AVal, validity AVal) per return site.
    returns: List[Tuple[str, str, AVal, AVal]] = field(default_factory=list)


# -- module source cache -----------------------------------------------------

@dataclass
class ModuleInfo:
    module: pytypes.ModuleType
    path: str
    source: str
    tree: ast.Module
    sha256: str
    #: firstlineno -> FunctionDef (module level and class methods alike).
    by_line: Dict[int, ast.FunctionDef]
    #: method name -> FunctionDef for class bodies.
    methods: Dict[str, ast.FunctionDef]


_MODULE_CACHE: Dict[str, ModuleInfo] = {}


def _load_module(name: str) -> ModuleInfo:
    info = _MODULE_CACHE.get(name)
    if info is not None:
        return info
    __import__(name)
    module = sys.modules[name]
    path = inspect.getsourcefile(module) or ""
    source = inspect.getsource(module)
    tree = ast.parse(source)
    by_line: Dict[int, ast.FunctionDef] = {}
    methods: Dict[str, ast.FunctionDef] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            by_line[node.lineno] = node
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, ast.FunctionDef):
                    methods[item.name] = item
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    info = ModuleInfo(module, path, source, tree, digest, by_line, methods)
    _MODULE_CACHE[name] = info
    return info


def source_fingerprints() -> Dict[str, str]:
    """sha256 of each kernel module's source, keyed by module name."""
    return {name: _load_module(name).sha256 for name in KERNEL_MODULES}


def _find_funcdef(fn: Callable) -> Tuple[Optional[ast.FunctionDef],
                                         Optional[ModuleInfo]]:
    code = getattr(fn, "__code__", None)
    if code is None:
        return None, None
    for name in KERNEL_MODULES:
        info = _load_module(name)
        if info.path == code.co_filename:
            node = info.by_line.get(code.co_firstlineno)
            if node is None:
                # Decorated / lambda kernels: scan nearby lines.
                node = info.by_line.get(code.co_firstlineno + 1)
            return node, info
    return None, None


def _closure_env(fn: Callable) -> Dict[str, AVal]:
    env: Dict[str, AVal] = {}
    code = getattr(fn, "__code__", None)
    closure = getattr(fn, "__closure__", None)
    if code is not None and closure is not None:
        for name, cell in zip(code.co_freevars, closure):
            try:
                env[name] = _const(cell.cell_contents)
            except ValueError:
                env[name] = _unknown()
    return env


# -- the interpreter ---------------------------------------------------------

_PER_ROW_ITERS = ("range", "enumerate", "flatnonzero")
_ALLOC_FUNCS = {"zeros": None, "empty": None, "ones": "ones", "full": "full"}


class _Interp:
    """Walks one kernel body, maintaining an abstract environment."""

    def __init__(self, genv: Dict[str, Any], methods: Dict[str, ast.FunctionDef],
                 evidence: Evidence, depth: int = 0) -> None:
        self.genv = genv
        self.methods = methods
        self.evidence = evidence
        self.depth = depth
        self.env: Dict[str, AVal] = {}

    # -- name resolution --------------------------------------------------
    def _lookup(self, name: str) -> AVal:
        val = self.env.get(name)
        if val is not None:
            return val
        if name in self.genv:
            return _const(self.genv[name])
        import builtins
        if hasattr(builtins, name):
            return _const(getattr(builtins, name))
        return _unknown()

    # -- test resolution ---------------------------------------------------
    def _truth(self, node: ast.expr) -> Optional[bool]:
        if isinstance(node, ast.Compare):
            return self._truth_compare(node)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            inner = self._truth(node.operand)
            return None if inner is None else not inner
        if isinstance(node, ast.BoolOp):
            parts = [self._truth(value) for value in node.values]
            if isinstance(node.op, ast.And):
                if any(part is False for part in parts):
                    return False
                if all(part is True for part in parts):
                    return True
            else:
                if any(part is True for part in parts):
                    return True
                if all(part is False for part in parts):
                    return False
            return None
        val = self._eval(node)
        if val.kind == "const":
            try:
                return bool(val.value)
            except Exception:
                return None
        return None

    def _truth_compare(self, node: ast.Compare) -> Optional[bool]:
        if len(node.ops) == 1:
            left = self._eval(node.left)
            right = self._eval(node.comparators[0])
            op = node.ops[0]
            if isinstance(op, (ast.Is, ast.IsNot)):
                left_none = _is_none(left)
                if right.kind == "const" and right.value is None \
                        and left_none is not None:
                    return left_none if isinstance(op, ast.Is) else not left_none
            if left.kind == "const" and right.kind == "const":
                try:
                    if isinstance(op, ast.Eq):
                        return bool(left.value == right.value)
                    if isinstance(op, ast.NotEq):
                        return bool(left.value != right.value)
                    if isinstance(op, ast.In):
                        return bool(left.value in right.value)
                    if isinstance(op, ast.NotIn):
                        return bool(left.value not in right.value)
                    if isinstance(op, ast.Is):
                        return left.value is right.value
                    if isinstance(op, ast.IsNot):
                        return left.value is not right.value
                except Exception:
                    return None
        return None

    # -- expression evaluation ---------------------------------------------
    def _eval(self, node: ast.expr) -> AVal:
        if isinstance(node, ast.Constant):
            return _const(node.value)
        if isinstance(node, ast.Name):
            return self._lookup(node.id)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.BoolOp):
            return self._eval_boolop(node)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node)
        if isinstance(node, ast.UnaryOp):
            return self._eval_unaryop(node)
        if isinstance(node, ast.Compare):
            return self._eval_compare(node)
        if isinstance(node, ast.IfExp):
            branch = self._truth(node.test)
            if branch is True:
                return self._eval(node.body)
            if branch is False:
                return self._eval(node.orelse)
            return self._merge(self._eval(node.body), self._eval(node.orelse))
        if isinstance(node, (ast.List, ast.Tuple)):
            elements = [self._eval(element) for element in node.elts]
            if all(element.kind == "const" for element in elements):
                values = tuple(element.value for element in elements)
                return _const(list(values) if isinstance(node, ast.List)
                              else values)
            return AVal("vectors")
        if isinstance(node, ast.ListComp):
            return AVal("vectors")
        if isinstance(node, ast.Dict):
            return _unknown()
        return _unknown()

    def _eval_attribute(self, node: ast.Attribute) -> AVal:
        base = self._eval(node.value)
        attr = node.attr
        if base.kind == "const":
            try:
                return _const(getattr(base.value, attr))
            except Exception:
                return _unknown()
        if base.kind == "vector":
            if attr == "data":
                self.evidence.data_read = True
                return AVal("array", dtype=base.dtype, from_input=base.from_input,
                            fresh=base.fresh, from_data=True)
            if attr == "validity":
                self.evidence.validity_read = True
                return AVal("array", dtype="bool", from_input=base.from_input,
                            fresh=base.fresh, from_validity=True)
            if attr == "dtype":
                return AVal("logical", logical=base.logical)
        if base.kind == "logical":
            if attr == "numpy_dtype":
                return AVal("logical", logical=base.logical)
            return _unknown()
        if base.kind == "array" and attr == "dtype":
            if base.dtype not in (UNKNOWN, ARG_DEPENDENT):
                try:
                    return _const(np.dtype(base.dtype))
                except Exception:
                    return _unknown()
            return _unknown()
        return _unknown()

    def _eval_subscript(self, node: ast.Subscript) -> AVal:
        base = self._eval(node.value)
        if base.kind == "vectors":
            return _input_vector()
        if base.kind == "array":
            # Masked reads / scalar indexing keep provenance and dtype.
            out = base.clone()
            out.fresh = False if isinstance(node.slice, ast.Constant) else base.fresh
            return out
        if base.kind == "const":
            index = self._eval(node.slice)
            if index.kind == "const":
                try:
                    return _const(base.value[index.value])
                except Exception:
                    return _unknown()
        return _unknown()

    def _call_name(self, func: ast.expr) -> Tuple[Optional[str], Optional[str]]:
        """(base, attr) of the callee; base None for bare names."""
        if isinstance(func, ast.Name):
            return None, func.id
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name):
                return func.value.id, func.attr
            return "", func.attr
        return None, None

    def _eval_call(self, node: ast.Call) -> AVal:
        base_name, attr = self._call_name(node.func)
        args = [self._eval(arg) for arg in node.args]
        kwargs = {kw.arg: self._eval(kw.value) for kw in node.keywords
                  if kw.arg is not None}

        callee = self._eval(node.func) if not isinstance(node.func, ast.Lambda) \
            else _unknown()

        # Vector(...) construction.
        if callee.kind == "const" and getattr(callee.value, "__name__", "") == \
                "Vector":
            return self._make_vector(args)

        # I/O and impurity probes.
        if base_name is None and attr in ("print", "open", "input"):
            self.evidence.io_call = True
            return _unknown()

        if attr == "copy":
            receiver = self._eval(node.func.value) \
                if isinstance(node.func, ast.Attribute) else _unknown()
            if receiver.kind in ("array", "vector"):
                out = receiver.clone()
                out.fresh = True
                out.from_input = False
                return out
            return _unknown()

        if attr == "astype":
            receiver = self._eval(node.func.value) \
                if isinstance(node.func, ast.Attribute) else _unknown()
            dtype = self._dtype_of(args[0]) if args else UNKNOWN
            copy_kw = kwargs.get("copy")
            if receiver.kind == "array":
                if receiver.from_input and not (
                        copy_kw is not None and copy_kw.kind == "const"
                        and copy_kw.value is False):
                    line = getattr(node, "lineno", 0)
                    self.evidence.avoidable_copies.append(
                        f"astype without copy=False at line {line}")
                out = receiver.clone()
                out.dtype = dtype if dtype != UNKNOWN else receiver.dtype
                out.fresh = True
                out.from_input = False
                return out
            return AVal("array", dtype=dtype, fresh=True)

        # numpy allocation and transforms.
        if callee.kind == "const":
            fn = callee.value
            fn_name = getattr(fn, "__name__", "")
            if fn is np.ones or fn_name == "ones":
                dtype = self._dtype_of(kwargs.get("dtype")) \
                    if "dtype" in kwargs else "float64"
                return AVal("array", dtype=dtype, fresh=True, widened=True)
            if fn in (np.zeros, np.empty) or fn_name in ("zeros", "empty"):
                dtype = self._dtype_of(kwargs.get("dtype")) \
                    if "dtype" in kwargs else "float64"
                return AVal("array", dtype=dtype, fresh=True)
            if fn is np.full or fn_name == "full":
                dtype = self._dtype_of(kwargs.get("dtype")) \
                    if "dtype" in kwargs else UNKNOWN
                widened = bool(len(args) > 1 and args[1].kind == "const"
                               and args[1].value is True)
                return AVal("array", dtype=dtype, fresh=True, widened=widened)
            if fn_name == "_propagate_validity":
                self.evidence.propagate_helper = True
                self.evidence.validity_read = True
                return AVal("array", dtype="bool", fresh=True,
                            from_validity=True)
            if fn_name == "where":
                merged = self._merge_args(args[1:])
                merged.fresh = True
                merged.from_input = False
                return merged
            if fn_name == "asarray":
                merged = self._merge_args(args)
                if "dtype" in kwargs:
                    merged.dtype = self._dtype_of(kwargs["dtype"])
                return merged
            if isinstance(fn, np.ufunc) or callable(fn):
                # A concrete ufunc keeps its array arguments' dtype; any
                # other callable's result dtype is not trusted.
                merged = self._merge_args(args)
                out = AVal("array", fresh=True,
                           dtype=merged.dtype if isinstance(fn, np.ufunc)
                           else UNKNOWN,
                           from_data=merged.from_data,
                           from_validity=merged.from_validity)
                if fn_name in ("isfinite", "isnan", "flatnonzero", "argsort",
                               "lexsort"):
                    out.dtype = "bool" if fn_name.startswith("is") else "int64"
                return out

        # self.execute(...) and followed helper methods.
        if base_name == "self":
            if attr == "execute":
                return _input_vector()
            target = self.methods.get(attr or "")
            if target is not None and self.depth < 3:
                self.evidence.followed.append(attr or "")
                return self._follow(target, args)
            return _unknown()

        return _unknown()

    def _follow(self, funcdef: ast.FunctionDef, args: List[AVal]) -> AVal:
        sub = _Interp(self.genv, self.methods, self.evidence, self.depth + 1)
        params = [arg.arg for arg in funcdef.args.args]
        if params and params[0] == "self":
            params = params[1:]
        for name, val in zip(params, args):
            sub.env[name] = val
        for name in params[len(args):]:
            sub.env[name] = _unknown()
        result = sub.exec_block(funcdef.body)
        return result if result is not None else _unknown()

    def _make_vector(self, args: List[AVal]) -> AVal:
        logical = UNKNOWN
        dtype = UNKNOWN
        data = args[1] if len(args) > 1 else _unknown()
        validity = args[2] if len(args) > 2 else AVal("array", dtype="bool",
                                                      fresh=True, widened=True)
        if args:
            head = args[0]
            if head.kind == "const":
                logical = str(head.value)
                dtype = _dtype_name(getattr(head.value, "numpy_dtype", None))
            elif head.kind == "logical":
                logical = head.logical
                dtype = self._dtype_of(head)
        if data.kind == "array" and data.dtype != UNKNOWN:
            dtype = data.dtype
        out = AVal("vector", logical=logical, dtype=dtype, fresh=data.fresh,
                   from_input=data.from_input, widened=validity.widened)
        self.evidence.returns.append((logical, dtype, data, validity))
        return out

    def _dtype_of(self, val: Optional[AVal]) -> str:
        if val is None:
            return UNKNOWN
        if val.kind == "const":
            return _dtype_name(val.value)
        if val.kind == "logical":
            if val.logical in (UNKNOWN, ARG_DEPENDENT):
                return val.logical
            try:
                from ...types import type_from_string
                return _dtype_name(type_from_string(val.logical).numpy_dtype)
            except Exception:
                return UNKNOWN
        return UNKNOWN

    def _merge(self, left: AVal, right: AVal) -> AVal:
        if left.kind == "const" and right.kind == "const" \
                and left.value is right.value:
            return left
        kind = left.kind if left.kind == right.kind else "unknown"
        out = AVal(kind)
        out.dtype = left.dtype if left.dtype == right.dtype else ARG_DEPENDENT
        out.logical = left.logical if left.logical == right.logical \
            else ARG_DEPENDENT
        out.fresh = left.fresh and right.fresh
        out.from_input = left.from_input or right.from_input
        out.from_validity = left.from_validity or right.from_validity
        out.from_data = left.from_data or right.from_data
        out.widened = left.widened or right.widened
        return out

    def _merge_args(self, args: Sequence[AVal]) -> AVal:
        arrays = [arg for arg in args if arg.kind == "array"]
        if not arrays:
            return AVal("array", dtype=UNKNOWN, fresh=True)
        out = arrays[0].clone()
        for other in arrays[1:]:
            out = self._merge(out, other)
            out.kind = "array"
        return out

    def _eval_boolop(self, node: ast.BoolOp) -> AVal:
        values = [self._eval(value) for value in node.values]
        # `result_dtype or source.dtype` with a concrete closure resolves.
        if isinstance(node.op, ast.Or):
            for val in values[:-1]:
                if val.kind == "const":
                    if val.value:
                        return val
                    continue
                break
            else:
                return values[-1]
        arrays = [val for val in values if val.kind == "array"]
        if arrays:
            out = self._merge_args(values)
            out.dtype = "bool"
            if isinstance(node.op, ast.Or) and any(a.from_validity or a.from_data
                                                   for a in arrays):
                out.widened = True
            return out
        return _unknown()

    def _eval_binop(self, node: ast.BinOp) -> AVal:
        left = self._eval(node.left)
        right = self._eval(node.right)
        if left.kind == "const" and right.kind == "const":
            try:
                import operator as op_mod
                ops = {ast.Add: op_mod.add, ast.Sub: op_mod.sub,
                       ast.Mult: op_mod.mul, ast.Mod: op_mod.mod}
                fn = ops.get(type(node.op))
                if fn is not None:
                    return _const(fn(left.value, right.value))
            except Exception:
                return _unknown()
        arrays = [val for val in (left, right) if val.kind == "array"]
        if arrays:
            out = self._merge_args([left, right])
            out.fresh = True
            out.from_input = False
            if isinstance(node.op, ast.BitOr) and any(
                    a.from_validity or a.from_data for a in arrays):
                out.widened = True
            return out
        return _unknown()

    def _eval_unaryop(self, node: ast.UnaryOp) -> AVal:
        val = self._eval(node.operand)
        if val.kind == "const":
            try:
                if isinstance(node.op, ast.USub):
                    return _const(-val.value)
                if isinstance(node.op, ast.Not):
                    return _const(not val.value)
                if isinstance(node.op, ast.Invert):
                    return _const(~val.value)
            except Exception:
                return _unknown()
        if val.kind == "array":
            out = val.clone()
            out.fresh = True
            out.from_input = False
            return out
        return _unknown()

    def _eval_compare(self, node: ast.Compare) -> AVal:
        truth = self._truth(node)
        if truth is not None:
            return _const(truth)
        operands = [self._eval(node.left)] + \
            [self._eval(cmp) for cmp in node.comparators]
        arrays = [val for val in operands if val.kind == "array"]
        if arrays:
            out = self._merge_args(operands)
            out.dtype = "bool"
            out.fresh = True
            out.from_input = False
            return out
        return _unknown()

    # -- statements ---------------------------------------------------------
    def exec_block(self, stmts: Sequence[ast.stmt]) -> Optional[AVal]:
        result: Optional[AVal] = None
        for stmt in stmts:
            value = self._exec_stmt(stmt)
            if value is not None:
                if result is None:
                    result = value
                else:
                    result = self._merge(result, value)
                if isinstance(stmt, ast.Return):
                    return result
        return result

    def _exec_stmt(self, stmt: ast.stmt) -> Optional[AVal]:
        if isinstance(stmt, ast.Return):
            if stmt.value is None:
                return _unknown()
            value = self._eval(stmt.value)
            # Vector(...) constructions record themselves in _make_vector;
            # a plain `return result` of a tracked vector records here.
            if value.kind == "vector" and not isinstance(stmt.value, ast.Call):
                self.evidence.returns.append(
                    (value.logical, value.dtype, value,
                     AVal("array", dtype="bool",
                          from_validity=value.from_input,
                          widened=value.widened)))
            return value
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, value)
            return None
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign(stmt.target, self._eval(stmt.value))
            return None
        if isinstance(stmt, ast.AugAssign):
            self._aug_assign(stmt)
            return None
        if isinstance(stmt, ast.If):
            return self._exec_if(stmt)
        if isinstance(stmt, (ast.For, ast.While)):
            return self._exec_loop(stmt)
        if isinstance(stmt, ast.With):
            return self.exec_block(stmt.body)
        if isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
            return None
        if isinstance(stmt, ast.Global):
            self.evidence.global_mutation = True
            return None
        if isinstance(stmt, (ast.Raise, ast.Pass, ast.Break, ast.Continue)):
            return None
        if isinstance(stmt, ast.Try):
            result = self.exec_block(stmt.body)
            for handler in stmt.handlers:
                sub = self.exec_block(handler.body)
                if sub is not None:
                    result = sub if result is None else self._merge(result, sub)
            return result
        if isinstance(stmt, ast.FunctionDef):
            self.env[stmt.name] = _unknown()
            return None
        return None

    def _assign(self, target: ast.expr, value: AVal) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
            return
        if isinstance(target, ast.Tuple):
            for element in target.elts:
                self._assign(element, _unknown())
            return
        if isinstance(target, ast.Subscript):
            base = target.value
            # data[mask] = ... / result.validity[take] = ...
            if isinstance(base, ast.Attribute):
                owner = self._eval(base.value)
                if base.attr == "validity" and owner.kind == "vector":
                    # Any elementwise validity rewrite -- True (coalesce),
                    # False (nullif), or copied (CASE) -- is custom NULL
                    # semantics: the output mask is no longer a pure
                    # function of the input masks.
                    owner = owner.clone()
                    owner.widened = True
                    self._mark_local_vector(base.value, owner)
                    return
                if base.attr == "data" and owner.kind == "vector":
                    if owner.from_input and not owner.fresh:
                        self.evidence.inplace_input_write = True
                    return
            arr = self._eval(base)
            if arr.kind == "array" and arr.from_input and not arr.fresh:
                self.evidence.inplace_input_write = True
            if arr.kind == "const":
                self.evidence.global_mutation = True
            return
        if isinstance(target, ast.Attribute):
            owner = self._eval(target.value)
            if isinstance(target.value, ast.Name) and target.value.id == "self":
                self.evidence.self_state = True
            elif owner.kind == "const":
                self.evidence.global_mutation = True
            return

    def _mark_local_vector(self, node: ast.expr, owner: AVal) -> None:
        if isinstance(node, ast.Name) and node.id in self.env:
            self.env[node.id] = owner

    def _aug_assign(self, stmt: ast.AugAssign) -> None:
        target = stmt.target
        value = self._eval(stmt.value)
        if isinstance(target, ast.Name):
            current = self.env.get(target.id, _unknown())
            if current.kind == "array":
                out = current.clone()
                out.from_data = current.from_data or value.from_data
                out.from_validity = current.from_validity or value.from_validity
                if isinstance(stmt.op, ast.BitOr) and (value.from_data or
                                                       value.from_validity):
                    out.widened = True
                self.env[target.id] = out
            return
        if isinstance(target, ast.Subscript):
            arr = self._eval(target.value)
            if arr.kind == "array" and arr.from_input and not arr.fresh:
                self.evidence.inplace_input_write = True

    def _exec_if(self, stmt: ast.If) -> Optional[AVal]:
        branch = self._truth(stmt.test)
        if branch is True:
            return self.exec_block(stmt.body)
        if branch is False:
            return self.exec_block(stmt.orelse)
        saved = dict(self.env)
        then_value = self.exec_block(stmt.body)
        then_env = self.env
        self.env = dict(saved)
        else_value = self.exec_block(stmt.orelse)
        merged: Dict[str, AVal] = {}
        for name in set(then_env) | set(self.env):
            left = then_env.get(name)
            right = self.env.get(name)
            if left is None or right is None:
                merged[name] = (left or right or _unknown())
            elif left is right:
                merged[name] = left
            else:
                merged[name] = self._merge(left, right)
        self.env = merged
        if then_value is not None and else_value is not None:
            return self._merge(then_value, else_value)
        return then_value or else_value

    def _exec_loop(self, stmt: Any) -> Optional[AVal]:
        if isinstance(stmt, ast.For):
            if isinstance(stmt.iter, ast.Call):
                _, iter_name = self._call_name(stmt.iter.func)
                if iter_name in _PER_ROW_ITERS:
                    self.evidence.per_row_loop = True
            iterated = self._eval(stmt.iter)
            if iterated.kind == "vectors":
                self._assign(stmt.target, _input_vector())
            else:
                self._assign(stmt.target, _unknown())
        body_value = self.exec_block(stmt.body)
        else_value = self.exec_block(stmt.orelse) if stmt.orelse else None
        if body_value is not None and else_value is not None:
            return self._merge(body_value, else_value)
        return body_value or else_value


# -- classification ----------------------------------------------------------

def _classify(evidence: Evidence, kind: str) -> Tuple[str, str, str, bool, bool]:
    """(inferred_dtype, null_contract, copy_behaviour, vectorized, pure)."""
    dtypes = {ret[1] for ret in evidence.returns if ret[1] != UNKNOWN}
    if not dtypes:
        inferred = UNKNOWN
    elif len(dtypes) == 1:
        inferred = dtypes.pop()
    else:
        inferred = ARG_DEPENDENT

    widened = any(ret[3].widened or ret[2].widened for ret in evidence.returns)
    derived = any(ret[3].from_validity for ret in evidence.returns)
    if kind == "aggregate":
        contract = NULL_SKIP if evidence.validity_read else NULL_CUSTOM
    elif widened:
        contract = NULL_CUSTOM
    elif evidence.propagate_helper or derived or evidence.validity_read:
        contract = NULL_PROPAGATE
    elif evidence.data_read:
        contract = NULL_UNCHECKED
    else:
        contract = NULL_PROPAGATE

    if evidence.inplace_input_write:
        copy = COPY_INPLACE
    elif evidence.returns and all(ret[2].fresh or not ret[2].from_input
                                  for ret in evidence.returns):
        copy = COPY_FRESH
    elif evidence.returns:
        copy = COPY_VIEW
    else:
        copy = COPY_UNKNOWN

    vectorized = not evidence.per_row_loop
    pure = not (evidence.global_mutation or evidence.io_call)
    return inferred, contract, copy, vectorized, pure


def _notes(evidence: Evidence) -> List[str]:
    notes: List[str] = []
    notes.extend(sorted(set(evidence.avoidable_copies)))
    if evidence.per_row_loop:
        notes.append("per-row python loop over element data")
    if evidence.self_state:
        notes.append("mutates executor-instance state (per-query, allowed)")
    if evidence.followed:
        notes.append("follows helpers: " +
                     ", ".join(sorted(set(evidence.followed))))
    return notes


def _make_fact(name: str, kind: str, arity: str, signature: str,
               declared: str, evidence: Evidence, source: str) -> KernelFact:
    inferred, contract, copy, vectorized, pure = _classify(evidence, kind)
    thread_safe = pure
    fusable = (pure and thread_safe and vectorized
               and contract != NULL_UNCHECKED and kind != "aggregate")
    return KernelFact(
        name=name, kind=kind, arity=arity, signature=signature,
        declared_type=declared, inferred_dtype=inferred, null_contract=contract,
        copy_behaviour=copy, vectorized=vectorized, pure=pure,
        thread_safe=thread_safe, fusable=fusable, source=source,
        notes=_notes(evidence))


def _source_of(funcdef: Optional[ast.FunctionDef], info: Optional[ModuleInfo],
               fallback: str) -> str:
    if funcdef is None or info is None:
        return fallback
    short = "/".join(info.path.split("/")[-3:])
    return f"{short}:{funcdef.lineno}"


# -- scalar functions --------------------------------------------------------

def _probe_scalar_bind(bind: Callable) -> Tuple[str, str, str, str]:
    """(declared_type, arity, signature_args, probe_name) via bind probing."""
    from ...types import BOOLEAN, DATE, DOUBLE, INTEGER, VARCHAR
    bases = (DOUBLE, VARCHAR, INTEGER, DATE, BOOLEAN)
    successes: Dict[int, Tuple[Any, List[Any]]] = {}
    returns = set()
    for arity in range(0, 7):
        for base in bases:
            try:
                result_type, coerced = bind([base] * arity)
            except Exception:
                continue
            successes.setdefault(arity, (result_type, list(coerced)))
            returns.add(str(result_type))
    if not successes:
        return UNKNOWN, UNKNOWN, "", ""
    arities = sorted(successes)
    if arities[-1] >= 6:
        arity = f"{arities[0]}+"
    elif arities[0] == arities[-1]:
        arity = str(arities[0])
    else:
        arity = f"{arities[0]}-{arities[-1]}"
    declared = returns.pop() if len(returns) == 1 else ARG_DEPENDENT
    probe_arity = arities[0] if arities[0] > 0 else (arities[-1] if
                                                     arities[-1] > 0 else 0)
    result_type, coerced = successes[probe_arity]
    args = ", ".join(str(t) for t in coerced)
    return declared, arity, args, str(result_type)


def analyze_scalar_functions() -> List[KernelFact]:
    from ...functions.scalar import SCALAR_FUNCTIONS
    facts = []
    for name, function in sorted(SCALAR_FUNCTIONS.items()):
        declared, arity, sig_args, probe_return = \
            _probe_scalar_bind(function.bind)
        signature = f"{name}({sig_args}) -> {probe_return or declared}"
        funcdef, info = _find_funcdef(function.execute)
        evidence = Evidence()
        if funcdef is not None and info is not None:
            interp = _Interp(vars(info.module), info.methods, evidence)
            interp.env.update(_closure_env(function.execute))
            params = [arg.arg for arg in funcdef.args.args]
            if params:
                interp.env[params[0]] = AVal("vectors")
            for param in params[1:]:
                interp.env[param] = _unknown()
            interp.exec_block(funcdef.body)
        facts.append(_make_fact(
            name, "scalar", arity, signature, declared, evidence,
            _source_of(funcdef, info, "repro/functions/scalar.py")))
    return facts


# -- aggregates --------------------------------------------------------------

def analyze_aggregates() -> List[KernelFact]:
    from ...functions.aggregate import (AGGREGATE_NAMES, bind_aggregate,
                                        compute_aggregate)
    from ...types import DOUBLE, INTEGER, VARCHAR
    facts = []
    funcdef, info = _find_funcdef(compute_aggregate)
    for name in sorted(AGGREGATE_NAMES):
        returns = set()
        coerced_args: List[Any] = []
        for base in (DOUBLE, INTEGER, VARCHAR):
            try:
                result_type, coerced = bind_aggregate(name, [base], False)
            except Exception:
                continue
            returns.add(str(result_type))
            if not coerced_args:
                coerced_args = [str(t) for t in coerced]
        star = False
        if not returns:
            try:
                result_type, coerced = bind_aggregate(name, [], True)
                returns.add(str(result_type))
                star = True
            except Exception:
                pass
        declared = returns.pop() if len(returns) == 1 else ARG_DEPENDENT
        signature = f"{name}({', '.join(coerced_args) or '*'}) -> {declared}"
        evidence = Evidence()
        if funcdef is not None and info is not None:
            interp = _Interp(vars(info.module), info.methods, evidence)
            interp.env["name"] = _const(name)
            interp.env["distinct"] = _const(False)
            interp.env["argument"] = _const(None) if star else _input_vector()
            interp.env["group_ids"] = AVal("array", dtype="int64",
                                           from_input=True)
            interp.env["group_count"] = _unknown()
            interp.env["return_type"] = AVal("logical", logical=declared)
            interp.exec_block(funcdef.body)
        facts.append(_make_fact(
            name, "aggregate", "1" if not star else "0-1", signature, declared,
            evidence, _source_of(funcdef, info, "repro/functions/aggregate.py")))
    return facts


# -- builtin expression operators --------------------------------------------

#: op -> (method, seeded environment attributes on the abstract expression).
_OPERATOR_SPECS: List[Tuple[str, str, Dict[str, Any]]] = [
    ("=", "_execute_operator", {}), ("<>", "_execute_operator", {}),
    ("<", "_execute_operator", {}), ("<=", "_execute_operator", {}),
    (">", "_execute_operator", {}), (">=", "_execute_operator", {}),
    ("+", "_execute_operator", {}), ("-", "_execute_operator", {}),
    ("*", "_execute_operator", {}), ("/", "_execute_operator", {}),
    ("%", "_execute_operator", {}), ("not", "_execute_operator", {}),
    ("negate", "_execute_operator", {}), ("concat", "_execute_operator", {}),
    ("and", "_execute_conjunction", {"op": "and"}),
    ("or", "_execute_conjunction", {"op": "or"}),
    ("is_null", "_is_null", {"negated": False}),
    ("is_not_null", "_is_null", {"negated": True}),
    ("in_list", "_execute_in_list", {"negated": False}),
    ("like", "_execute_like",
     {"negated": False, "case_insensitive": False, "escape": None}),
    ("case", "_execute_case", {}),
]

_OPERATOR_SIGNATURES = {
    "=": ("2", "ANY = ANY -> BOOLEAN", "BOOLEAN"),
    "<>": ("2", "ANY <> ANY -> BOOLEAN", "BOOLEAN"),
    "<": ("2", "ANY < ANY -> BOOLEAN", "BOOLEAN"),
    "<=": ("2", "ANY <= ANY -> BOOLEAN", "BOOLEAN"),
    ">": ("2", "ANY > ANY -> BOOLEAN", "BOOLEAN"),
    ">=": ("2", "ANY >= ANY -> BOOLEAN", "BOOLEAN"),
    "+": ("2", "NUMERIC + NUMERIC -> NUMERIC", ARG_DEPENDENT),
    "-": ("2", "NUMERIC - NUMERIC -> NUMERIC", ARG_DEPENDENT),
    "*": ("2", "NUMERIC * NUMERIC -> NUMERIC", ARG_DEPENDENT),
    "/": ("2", "NUMERIC / NUMERIC -> NUMERIC", ARG_DEPENDENT),
    "%": ("2", "NUMERIC % NUMERIC -> NUMERIC", ARG_DEPENDENT),
    "not": ("1", "NOT BOOLEAN -> BOOLEAN", "BOOLEAN"),
    "negate": ("1", "- NUMERIC -> NUMERIC", ARG_DEPENDENT),
    "concat": ("2", "VARCHAR || VARCHAR -> VARCHAR", "VARCHAR"),
    "and": ("2", "BOOLEAN AND BOOLEAN -> BOOLEAN", "BOOLEAN"),
    "or": ("2", "BOOLEAN OR BOOLEAN -> BOOLEAN", "BOOLEAN"),
    "is_null": ("1", "ANY IS NULL -> BOOLEAN", "BOOLEAN"),
    "is_not_null": ("1", "ANY IS NOT NULL -> BOOLEAN", "BOOLEAN"),
    "in_list": ("2+", "ANY IN (ANY, ...) -> BOOLEAN", "BOOLEAN"),
    "like": ("2-3", "VARCHAR LIKE VARCHAR -> BOOLEAN", "BOOLEAN"),
    "case": ("1+", "CASE WHEN ... END -> ANY", ARG_DEPENDENT),
}


class _AbstractExpression:
    """Duck-typed BoundExpression stand-in for operator analysis."""

    def __init__(self, **attrs: Any) -> None:
        for key, value in attrs.items():
            setattr(self, key, value)


def analyze_operators() -> List[KernelFact]:
    info = _load_module("repro.execution.expression_executor")
    facts = []
    for op, method, attrs in _OPERATOR_SPECS:
        arity, signature, declared = _OPERATOR_SIGNATURES[op]
        evidence = Evidence()
        if method == "_is_null":
            _analyze_is_null(info, evidence, attrs.get("negated", False))
            funcdef = info.methods.get("execute")
        else:
            funcdef = info.methods.get(method)
            if funcdef is not None:
                interp = _Interp(vars(info.module), info.methods, evidence)
                expr_attrs = dict(attrs)
                expr_attrs.setdefault("op", op)
                interp.env["self"] = _unknown()
                interp.env["expression"] = _const(
                    _AbstractExpression(**expr_attrs))
                interp.env["chunk"] = _unknown()
                interp.env["op"] = _const(op)
                if method == "_execute_operator":
                    interp.env["expression"] = _const(
                        _AbstractExpression(op=op, return_type=None,
                                            args=None))
                interp.exec_block(funcdef.body)
        facts.append(_make_fact(
            op, "operator", arity, signature, declared, evidence,
            _source_of(funcdef, info,
                       "repro/execution/expression_executor.py")))
    return facts


def _analyze_is_null(info: ModuleInfo, evidence: Evidence,
                     negated: bool) -> None:
    """IS [NOT] NULL lives in an isinstance branch of ``execute``."""
    funcdef = info.methods.get("execute")
    if funcdef is None:
        return
    for stmt in ast.walk(funcdef):
        if isinstance(stmt, ast.If) and isinstance(stmt.test, ast.Call):
            _, callee = None, None
            if isinstance(stmt.test.func, ast.Name) \
                    and stmt.test.func.id == "isinstance" \
                    and len(stmt.test.args) == 2 \
                    and isinstance(stmt.test.args[1], ast.Name) \
                    and stmt.test.args[1].id == "BoundIsNull":
                interp = _Interp(vars(info.module), info.methods, evidence)
                interp.env["self"] = _unknown()
                interp.env["expression"] = _const(
                    _AbstractExpression(negated=negated))
                interp.env["chunk"] = _unknown()
                interp.env["count"] = _unknown()
                interp.exec_block(stmt.body)
                return


# -- entry point -------------------------------------------------------------

def analyze_registry() -> List[KernelFact]:
    """Analyze every registered kernel; sorted by (kind, name)."""
    facts = (analyze_scalar_functions() + analyze_aggregates()
             + analyze_operators())
    facts.sort(key=lambda fact: (fact.kind, fact.name))
    return facts
