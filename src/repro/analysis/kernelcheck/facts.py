"""The kernel capability model: what one kernel promises the engine.

A :class:`KernelFact` is the unit of the committed manifest.  Every field
is a *verifiable* claim: the analyzer infers it statically, the
conformance harness asserts it dynamically, and the planner consumes it
when deciding fusion eligibility.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "KernelFact",
    "NULL_PROPAGATE",
    "NULL_CUSTOM",
    "NULL_SKIP",
    "NULL_UNCHECKED",
    "COPY_FRESH",
    "COPY_VIEW",
    "COPY_INPLACE",
    "COPY_UNKNOWN",
    "dtype_convertible",
]

# -- NULL contracts ----------------------------------------------------------
#: Any NULL input lane yields a NULL output lane (narrowing -- producing
#: *extra* NULLs for domain errors like sqrt(-1) -- is allowed).
NULL_PROPAGATE = "propagate"
#: The kernel defines its own NULL semantics (coalesce, concat, CASE,
#: three-valued AND/OR); NULL-in does not imply NULL-out.
NULL_CUSTOM = "custom"
#: Aggregate semantics: NULL input rows are skipped and never contribute
#: to any group's result.
NULL_SKIP = "skip-nulls"
#: The kernel reads ``.data`` without consulting validity at all -- it may
#: compute on masked-out garbage and leak it.  Never acceptable for a
#: registered kernel.
NULL_UNCHECKED = "unchecked"

# -- copy behaviour on the transfer path -------------------------------------
#: Output arrays are freshly allocated per call; inputs are never aliased.
COPY_FRESH = "fresh"
#: Output aliases an input array (zero-copy view).
COPY_VIEW = "view"
#: The kernel writes into its input arrays.
COPY_INPLACE = "in-place"
COPY_UNKNOWN = "unknown"

#: Sentinel for facts that depend on the argument types at bind time.
ARG_DEPENDENT = "argument"
UNKNOWN = "unknown"


@dataclass
class KernelFact:
    """Inferred contract of one registered kernel."""

    name: str
    #: ``scalar`` | ``aggregate`` | ``operator``.
    kind: str
    #: Human-readable argument-count summary: ``"1"``, ``"1-2"``, ``"1+"``.
    arity: str
    #: Canonical bind-time signature, e.g. ``"round(DOUBLE, INTEGER) -> DOUBLE"``.
    signature: str
    #: The LogicalType the bind function declares (``"argument"`` when the
    #: return type follows the argument types).
    declared_type: str
    #: NumPy dtype the kernel's AST constructs (``"argument"`` when it
    #: mirrors the input vector's dtype).
    inferred_dtype: str
    #: One of the NULL_* contract constants.
    null_contract: str
    #: One of the COPY_* constants.
    copy_behaviour: str
    #: False when the kernel falls back to a per-row Python loop over
    #: element data (LIKE, substr) -- such kernels are never fusable.
    vectorized: bool
    #: No module-global mutation, no I/O.
    pure: bool
    #: Safe under morsel workers (pure kernels are; executor-instance state
    #: is allowed because executors are per-operator-instance).
    thread_safe: bool
    #: Eligible for filter->project operator fusion / JIT tier selection.
    fusable: bool
    #: ``repro/functions/scalar.py:412`` -- where the kernel body lives.
    source: str
    #: Analyzer notes (avoidable copies, followed helpers, ...).
    notes: List[str] = field(default_factory=list)

    @property
    def key(self) -> str:
        return f"{self.kind}:{self.name}"

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "KernelFact":
        return cls(**data)


#: dtype kind produced by each logical type name (mirrors
#: ``LogicalType.numpy_dtype.kind``).
_LOGICAL_KIND = {
    "BOOLEAN": "b",
    "TINYINT": "i",
    "SMALLINT": "i",
    "INTEGER": "i",
    "BIGINT": "i",
    "FLOAT": "f",
    "DOUBLE": "f",
    "VARCHAR": "O",
    "DATE": "i",
    "TIMESTAMP": "i",
    "NULL": "b",
}

#: numpy dtype name -> kind character.
_NUMPY_KIND = {
    "bool": "b",
    "int8": "i",
    "int16": "i",
    "int32": "i",
    "int64": "i",
    "float32": "f",
    "float64": "f",
    "object": "O",
}


def dtype_convertible(inferred_dtype: str, declared_type: str) -> Optional[bool]:
    """Is a kernel-produced NumPy dtype convertible to the declared type?

    Returns None when either side is unknown/argument-dependent (nothing to
    check).  Conversion must be lossless in *kind*: int -> float and
    bool -> numeric widen fine, float -> int silently truncates (error),
    and object (VARCHAR) never mixes with numerics.
    """
    produced = _NUMPY_KIND.get(inferred_dtype)
    declared = _LOGICAL_KIND.get(declared_type)
    if produced is None or declared is None:
        return None
    if produced == declared:
        return True
    if produced == "O" or declared == "O":
        return False
    if declared == "f":
        return True  # any numeric widens to float
    if declared == "i":
        return produced == "b"  # bool widens; float would truncate
    if declared == "b":
        return False  # numeric -> BOOLEAN needs an explicit comparison
    return False
