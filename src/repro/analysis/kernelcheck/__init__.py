"""quackkernel: static kernel-contract analysis for the vector engine.

Every scalar function, aggregate, and builtin expression operator is a
hot-path *contract*: its dtype signature, NULL semantics, allocation
behaviour, and purity decide both correctness and speed of the vectorized
interpreter (and of any future compiled-kernel tier selected behind the
registry).  This package makes those contracts explicit and *verified*:

* :mod:`analyzer` -- an AST-level abstract interpreter over every
  registered kernel, specialised with the kernel's concrete closure
  environment (factory-built kernels like ``_numeric_unary_kernel(np.abs)``
  are analysed with their captured ``result_dtype`` known);
* :mod:`manifest` -- the inferred facts, emitted as a committed
  machine-readable manifest (``kernel_manifest.json``) with source
  fingerprints, plus the drift gate (``--check-manifest``) and the
  bind-declaration cross-check (QLK001 at the registry level);
* :mod:`conformance` -- a runtime harness that fuzzes each kernel with
  NULL-heavy / empty / extreme vectors and asserts the manifest's contract
  actually holds (NULL propagation, garbage independence at masked lanes,
  input immutability, dtype conformance);
* :mod:`fusion` -- the consumer: the physical planner asks which
  filter->project expression chains are built solely from verified
  pure+vectorized kernels and marks them ``fusable`` in EXPLAIN, so a JIT
  tier can select kernels by capability rather than by name.
"""

from __future__ import annotations

from .facts import KernelFact, dtype_convertible
from .analyzer import analyze_registry
from .manifest import (
    MANIFEST_PATH,
    check_manifest,
    cross_check_declarations,
    generate_manifest,
    load_manifest,
    manifest_entries,
    write_manifest,
)
from .conformance import ConformanceIssue, run_conformance
from .fusion import expression_chain_fusable, kernel_fusable

__all__ = [
    "KernelFact",
    "dtype_convertible",
    "analyze_registry",
    "MANIFEST_PATH",
    "generate_manifest",
    "load_manifest",
    "manifest_entries",
    "write_manifest",
    "check_manifest",
    "cross_check_declarations",
    "ConformanceIssue",
    "run_conformance",
    "expression_chain_fusable",
    "kernel_fusable",
]
