"""Fusion eligibility: the planner-facing consumer of the manifest.

A filter->project chain can be fused into one pass (and later handed to a
compiled-kernel tier) only when every kernel it evaluates is *verified*
pure, thread-safe, vectorized, and NULL-honouring.  The physical planner
asks this module, which answers from the committed manifest -- capability
by verification, not by name.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from .facts import NULL_UNCHECKED, KernelFact

__all__ = ["kernel_fusable", "expression_chain_fusable", "clear_cache"]

_CACHE: Optional[Dict[str, KernelFact]] = None


def _facts() -> Dict[str, KernelFact]:
    global _CACHE
    if _CACHE is None:
        try:
            from .manifest import manifest_entries
            _CACHE = {fact.key: fact for fact in manifest_entries()}
        except (OSError, ValueError, KeyError):
            _CACHE = {}
    return _CACHE


def clear_cache() -> None:
    """Drop the memoized manifest (tests that rewrite it call this)."""
    global _CACHE
    _CACHE = None


def kernel_fusable(name: str, kind: str = "scalar") -> bool:
    """Is the named kernel marked fusable in the committed manifest?"""
    fact = _facts().get(f"{kind}:{name.lower()}")
    if fact is None:
        return False
    return bool(fact.fusable and fact.pure and fact.thread_safe
                and fact.vectorized and fact.null_contract != NULL_UNCHECKED)


def expression_chain_fusable(expressions: Iterable[object]) -> bool:
    """Can a filter->project chain over these bound expressions be fused?

    Walks each bound expression tree; every scalar function and operator it
    evaluates must carry a fusable manifest entry.  Subqueries, LIKE, CASE
    and anything unknown to the manifest disqualify the chain.
    """
    from ...planner.expressions import (
        BoundCase,
        BoundCast,
        BoundColumnRef,
        BoundConstant,
        BoundExpression,
        BoundFunction,
        BoundInList,
        BoundIsNull,
        BoundLike,
        BoundOperator,
    )

    def walk(expression: object) -> bool:
        if isinstance(expression, (BoundConstant, BoundColumnRef)):
            return True
        if isinstance(expression, BoundCast):
            return walk(expression.child)
        if isinstance(expression, BoundIsNull):
            return kernel_fusable(
                "is_not_null" if expression.negated else "is_null",
                "operator") and walk(expression.child)
        if isinstance(expression, BoundOperator):
            return kernel_fusable(expression.op, "operator") and \
                all(walk(arg) for arg in expression.args)
        if isinstance(expression, BoundFunction):
            return kernel_fusable(expression.name, "scalar") and \
                all(walk(arg) for arg in expression.args)
        if isinstance(expression, BoundInList):
            return kernel_fusable("in_list", "operator") and \
                walk(expression.child) and \
                all(walk(item) for item in expression.items)
        if isinstance(expression, (BoundLike, BoundCase)):
            # LIKE is per-row; CASE re-executes branches lazily -- neither
            # carries a fusable manifest bit today.
            name = "like" if isinstance(expression, BoundLike) else "case"
            return kernel_fusable(name, "operator")
        if isinstance(expression, BoundExpression):
            return False
        return False

    expressions = list(expressions)
    return bool(expressions) and all(walk(expr) for expr in expressions)
