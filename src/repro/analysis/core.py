"""quacklint core: the rule engine.

quacklint is an *engine-aware* static analyzer: its rules encode the
invariants the paper turns into pillars -- vectorized execution, transfer
efficiency (zero-copy), resilience (no silently swallowed failures), and
safe cooperation of the morsel-driven worker pool with shared engine state.
Generic linters check style; quacklint checks that a future PR does not
quietly regress one of those pillars.

The engine is deliberately small:

* a :class:`Rule` visits one parsed file (:class:`FileContext`) and yields
  :class:`Violation`\\ s;
* every rule only runs on files inside its *scope* (path prefixes under the
  package root), seeded by the registry and extensible via
  ``[tool.quacklint]`` in ``pyproject.toml``;
* any violation can be suppressed in the source with a justification
  comment: ``# quacklint: disable=RULE`` on the statement's first line
  (or ``# quacklint: disable-file=RULE`` anywhere, for the whole file).
  Suppression entries match by prefix, so ``disable=QLV`` silences the
  whole vectorization family on that line.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Violation",
    "Rule",
    "FileContext",
    "AnalysisConfig",
    "package_path",
    "analyze_source",
    "analyze_paths",
    "iter_python_files",
]

_SUPPRESS_RE = re.compile(
    r"#\s*quacklint:\s*(disable(?:-file)?)\s*(?:=\s*([A-Za-z0-9_,\s*]+))?"
)

PARSE_ERROR_RULE = "QLP000"


@dataclass(frozen=True)
class Violation:
    """One finding: rule id, location, and a human-readable message.

    ``severity`` is ``"error"`` (the default) or ``"warning"``; a family
    downgrades specific ids by listing them in :attr:`Rule.warning_ids`,
    and the CLI's ``--fail-on error`` lets warnings through the exit code.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"

    def render(self) -> str:
        suffix = "" if self.severity == "error" else f" [{self.severity}]"
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} {self.message}{suffix}")


def package_path(path: str) -> str:
    """Normalize a filesystem path to a ``repro/...`` package-relative path.

    Rule scopes are expressed against the package root so the analyzer works
    identically from any checkout location (and on virtual fixture paths in
    tests, which already look like ``repro/functions/fixture.py``).
    """
    normalized = path.replace(os.sep, "/")
    parts = normalized.split("/")
    for index, part in enumerate(parts):
        if part == "repro":
            return "/".join(parts[index:])
    return normalized.lstrip("./")


class FileContext:
    """One parsed source file plus its suppression table."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        #: Package-relative path used for scope matching.
        self.pkg_path = package_path(path)
        self.source = source
        self.tree = tree
        self.line_suppressions: Dict[int, Set[str]] = {}
        self.file_suppressions: Set[str] = set()
        self._scan_suppressions()

    def _scan_suppressions(self) -> None:
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            comments = [(token.start[0], token.string) for token in tokens
                        if token.type == tokenize.COMMENT]
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return
        for line, text in comments:
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            kind, spec = match.group(1), match.group(2)
            rules = {"*"} if spec is None else {
                entry.strip() for entry in spec.split(",") if entry.strip()
            }
            if kind == "disable-file":
                self.file_suppressions |= rules
            else:
                self.line_suppressions.setdefault(line, set()).update(rules)

    def is_suppressed(self, violation: Violation) -> bool:
        entries = self.file_suppressions | self.line_suppressions.get(
            violation.line, set())
        return any(entry == "*" or violation.rule.startswith(entry)
                   for entry in entries)


class Rule:
    """Base class for one rule family.

    ``ids`` maps every rule id the family can emit to its one-line
    description (shown by ``--list-rules``); ``default_scope`` is the tuple
    of package-path prefixes the family applies to.
    """

    name: str = ""
    description: str = ""
    ids: Dict[str, str] = {}
    default_scope: Tuple[str, ...] = ("repro/",)
    #: Ids this family reports as warnings instead of errors (advisory
    #: findings with a known false-positive rate).
    warning_ids: Tuple[str, ...] = ()

    def applies_to(self, ctx: "FileContext", config: "AnalysisConfig") -> bool:
        scope = tuple(self.default_scope) + tuple(
            config.scope_extensions.get(self.name, ()))
        return any(ctx.pkg_path == prefix or ctx.pkg_path.startswith(prefix)
                   for prefix in scope)

    def check(self, ctx: "FileContext",
              config: "AnalysisConfig") -> Iterator[Violation]:
        raise NotImplementedError


@dataclass
class AnalysisConfig:
    """Effective configuration: defaults merged with ``[tool.quacklint]``."""

    disabled_rules: Tuple[str, ...] = ()
    exclude: Tuple[str, ...] = ("repro/baselines/",)
    #: rule-family name -> extra scope prefixes.
    scope_extensions: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: The thread-safety registry (set lazily to avoid an import cycle).
    registry: object = None

    def __post_init__(self) -> None:
        if self.registry is None:
            from .registry import ThreadSafetyRegistry

            self.registry = ThreadSafetyRegistry()

    def rule_disabled(self, rule_id: str) -> bool:
        return any(rule_id.startswith(entry) for entry in self.disabled_rules)

    def path_excluded(self, pkg_path: str) -> bool:
        return any(part and part in pkg_path for part in self.exclude)


def _default_rules() -> Sequence[Rule]:
    from .rules import ALL_RULES

    return ALL_RULES


def analyze_source(source: str, path: str,
                   config: Optional[AnalysisConfig] = None,
                   rules: Optional[Sequence[Rule]] = None) -> List[Violation]:
    """Analyze one source string as if it lived at ``path``.

    This is the entry point the test fixtures use: the virtual ``path``
    decides which rule scopes apply.
    """
    config = config or AnalysisConfig()
    rules = _default_rules() if rules is None else rules
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [Violation(PARSE_ERROR_RULE, path, exc.lineno or 1,
                          exc.offset or 0, f"could not parse file: {exc.msg}")]
    ctx = FileContext(path, source, tree)
    if config.path_excluded(ctx.pkg_path):
        return []
    violations: List[Violation] = []
    for rule in rules:
        if not rule.applies_to(ctx, config):
            continue
        for violation in rule.check(ctx, config):
            if config.rule_disabled(violation.rule):
                continue
            if ctx.is_suppressed(violation):
                continue
            if violation.rule in rule.warning_ids \
                    and violation.severity == "error":
                violation = replace(violation, severity="warning")
            violations.append(violation)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs
                                 if d not in ("__pycache__", ".git"))
                for name in sorted(files):
                    if name.endswith(".py"):
                        yield os.path.join(root, name)
        else:
            yield path


def analyze_paths(paths: Iterable[str],
                  config: Optional[AnalysisConfig] = None,
                  rules: Optional[Sequence[Rule]] = None) -> List[Violation]:
    """Analyze every ``.py`` file under ``paths``; returns all violations."""
    config = config or AnalysisConfig()
    violations: List[Violation] = []
    for file_path in iter_python_files(paths):
        try:
            with open(file_path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            violations.append(Violation(PARSE_ERROR_RULE, file_path, 1, 0,
                                        f"could not read file: {exc}"))
            continue
        violations.extend(analyze_source(source, file_path, config, rules))
    return violations
