"""Catalog of schemas, tables, and views with transactional (MVCC) DDL."""

from .catalog import Catalog
from .entry import CatalogEntry, ColumnDefinition, TableEntry, ViewEntry

__all__ = ["Catalog", "CatalogEntry", "ColumnDefinition", "TableEntry", "ViewEntry"]
