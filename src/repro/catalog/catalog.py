"""The catalog: name -> entry mapping with MVCC-versioned entries.

The single-file format stores "pointers to lists of schemas, tables and
views" (paper §6); this in-memory catalog is that structure's runtime form.
Entries are never removed eagerly -- dropping tags them with the dropper's
version so concurrent snapshots keep resolving names consistently.  A
checkpoint writes only entries visible to everyone and prunes the rest.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..errors import CatalogError
from ..sanitizer import SanRLock, tracked_access
from ..transaction.transaction import Transaction
from ..transaction.version import ABORTED_MARKER
from .entry import CatalogEntry, TableEntry, ViewEntry

__all__ = ["Catalog"]


class Catalog:
    """Thread-safe catalog of tables and views."""

    def __init__(self) -> None:
        self._lock = SanRLock("catalog")
        #: Per name, newest-first list of entry versions.
        self._entries: Dict[str, List[CatalogEntry]] = {}

    # -- lookup ------------------------------------------------------------
    def get_entry(self, name: str, transaction: Transaction) -> Optional[CatalogEntry]:
        """The entry visible to ``transaction`` under ``name``, or None."""
        with self._lock, tracked_access(("catalog", id(self)), False,
                                        self._lock):
            versions = self._entries.get(name.lower(), [])
            for entry in versions:
                if entry.visible_to(transaction.transaction_id, transaction.start_time):
                    return entry
        return None

    def get_table(self, name: str, transaction: Transaction) -> TableEntry:
        entry = self.get_entry(name, transaction)
        if entry is None:
            raise CatalogError(f"Table {name!r} does not exist")
        if not isinstance(entry, TableEntry):
            raise CatalogError(f"{name!r} is not a table (it is a {entry.entry_type})")
        return entry

    def get_view(self, name: str, transaction: Transaction) -> ViewEntry:
        entry = self.get_entry(name, transaction)
        if entry is None:
            raise CatalogError(f"View {name!r} does not exist")
        if not isinstance(entry, ViewEntry):
            raise CatalogError(f"{name!r} is not a view (it is a {entry.entry_type})")
        return entry

    def entry_exists(self, name: str, transaction: Transaction) -> bool:
        return self.get_entry(name, transaction) is not None

    def tables(self, transaction: Transaction) -> Iterator[TableEntry]:
        """All tables visible to ``transaction``, sorted by name."""
        with self._lock:
            names = sorted(self._entries)
        for name in names:
            entry = self.get_entry(name, transaction)
            if isinstance(entry, TableEntry):
                yield entry

    def views(self, transaction: Transaction) -> Iterator[ViewEntry]:
        """All views visible to ``transaction``, sorted by name."""
        with self._lock:
            names = sorted(self._entries)
        for name in names:
            entry = self.get_entry(name, transaction)
            if isinstance(entry, ViewEntry):
                yield entry

    # -- modification --------------------------------------------------------
    def create_entry(self, entry: CatalogEntry, transaction: Transaction,
                     or_replace: bool = False, if_not_exists: bool = False) -> bool:
        """Register a new entry created by ``transaction``.

        Returns False when ``if_not_exists`` suppressed a duplicate-name
        error, True when the entry was actually created.
        """
        key = entry.name.lower()
        with self._lock, tracked_access(("catalog", id(self)), True,
                                        self._lock):
            existing = self.get_entry(entry.name, transaction)
            if existing is not None:
                if if_not_exists:
                    return False
                if not or_replace:
                    raise CatalogError(
                        f"{existing.entry_type.capitalize()} {entry.name!r} already exists"
                    )
                self._drop_locked(existing, transaction)
            entry.created_by = transaction.transaction_id
            self._entries.setdefault(key, []).insert(0, entry)
            transaction.record_catalog(entry, "create")
        return True

    def drop_entry(self, name: str, transaction: Transaction,
                   if_exists: bool = False, expected_type: Optional[str] = None) -> bool:
        """Tag the visible entry under ``name`` as dropped by ``transaction``."""
        with self._lock, tracked_access(("catalog", id(self)), True,
                                        self._lock):
            entry = self.get_entry(name, transaction)
            if entry is None:
                if if_exists:
                    return False
                raise CatalogError(f"{expected_type or 'Entry'} {name!r} does not exist")
            if expected_type is not None and entry.entry_type != expected_type:
                raise CatalogError(
                    f"{name!r} is a {entry.entry_type}, not a {expected_type}"
                )
            self._drop_locked(entry, transaction)
        return True

    def _drop_locked(self, entry: CatalogEntry, transaction: Transaction) -> None:
        if entry.dropped_by is not None:
            # Already dropped by a concurrent transaction: first writer wins.
            from ..errors import TransactionConflict

            raise TransactionConflict(
                f"Catalog entry {entry.name!r} was concurrently dropped"
            )
        entry.dropped_by = transaction.transaction_id
        transaction.record_catalog(entry, "drop")

    # -- maintenance ----------------------------------------------------------
    def prune(self, oldest_snapshot: int) -> None:
        """Physically delete entry versions invisible to every snapshot."""
        with self._lock, tracked_access(("catalog", id(self)), True,
                                        self._lock):
            for key in list(self._entries):
                survivors = []
                for entry in self._entries[key]:
                    if entry.created_by == ABORTED_MARKER:
                        continue
                    dropped = entry.dropped_by
                    if dropped is not None and dropped <= oldest_snapshot:
                        continue
                    survivors.append(entry)
                if survivors:
                    self._entries[key] = survivors
                else:
                    del self._entries[key]
