"""Catalog entries: versioned definitions of tables and views.

DDL is transactional: every entry carries ``created_by`` / ``dropped_by``
version tags interpreted with the same MVCC visibility rule as row versions,
so a table created inside an uncommitted transaction is invisible to others
and vanishes on rollback.
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..errors import CatalogError, InternalError
from ..transaction.version import version_visible
from ..types import LogicalType

__all__ = ["ColumnDefinition", "CatalogEntry", "TableEntry", "ViewEntry"]


class ColumnDefinition:
    """One column of a table: name, logical type, and constraints."""

    __slots__ = ("name", "dtype", "nullable", "default")

    def __init__(self, name: str, dtype: LogicalType, nullable: bool = True,
                 default: Any = None) -> None:
        self.name = name
        self.dtype = dtype
        self.nullable = nullable
        self.default = default

    def __repr__(self) -> str:
        constraint = "" if self.nullable else " NOT NULL"
        return f"ColumnDefinition({self.name} {self.dtype}{constraint})"


class CatalogEntry:
    """Base class for catalog objects, with MVCC visibility tags."""

    entry_type = "entry"

    def __init__(self, name: str, created_by: int) -> None:
        self.name = name
        #: Version tag of the creating transaction/commit.
        self.created_by = created_by
        #: Version tag of the dropping transaction/commit, or None if live.
        self.dropped_by: Optional[int] = None

    def visible_to(self, transaction_id: int, start_time: int) -> bool:
        """Is this entry part of the given snapshot?"""
        if not version_visible(self.created_by, transaction_id, start_time):
            return False
        if self.dropped_by is None:
            return True
        return not version_visible(self.dropped_by, transaction_id, start_time)


class TableEntry(CatalogEntry):
    """A base table: column definitions plus its transactional storage."""

    entry_type = "table"

    def __init__(self, name: str, columns: List[ColumnDefinition], data: Any,
                 created_by: int) -> None:
        super().__init__(name, created_by)
        if not columns:
            raise CatalogError(f"Table {name!r} must have at least one column")
        seen = set()
        for column in columns:
            key = column.name.lower()
            if key in seen:
                raise CatalogError(f"Duplicate column name {column.name!r} in table {name!r}")
            seen.add(key)
        self.columns = columns
        #: The :class:`~repro.storage.table_data.TableData` backing this table.
        self.data = data

    @property
    def column_names(self) -> List[str]:
        return [column.name for column in self.columns]

    @property
    def column_types(self) -> List[LogicalType]:
        return [column.dtype for column in self.columns]

    def column_index(self, name: str) -> int:
        lowered = name.lower()
        for index, column in enumerate(self.columns):
            if column.name.lower() == lowered:
                return index
        raise CatalogError(f"Table {self.name!r} has no column named {name!r}")

    def has_column(self, name: str) -> bool:
        lowered = name.lower()
        return any(column.name.lower() == lowered for column in self.columns)


class ViewEntry(CatalogEntry):
    """A view: a named, parsed SELECT statement."""

    entry_type = "view"

    def __init__(self, name: str, sql: str, query: Any, created_by: int) -> None:
        super().__init__(name, created_by)
        #: Original view text (re-serialized into checkpoints and the WAL).
        self.sql = sql
        #: Parsed AST of the defining SELECT (re-bound on every use).
        self.query = query
