"""Bulk appender: the zero-copy write path of the paper (§6).

*"The same is true for appending data to tables, the client application can
fill chunks with its data. Once filled, they are handed over to DuckDB and
appended to persistent storage."*

The appender buffers rows (or takes whole NumPy arrays) and appends them to
the table in chunk-sized batches inside a single transaction, bypassing SQL
entirely.  This is the efficient alternative to per-row INSERT statements.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

import numpy as np

from ..errors import ConstraintError, InvalidInputError
from ..storage.wal import WALRecord
from ..types import DataChunk, VECTOR_SIZE, Vector, cast_vector

if TYPE_CHECKING:
    from .connection import Connection

__all__ = ["Appender"]

_FLUSH_ROWS = VECTOR_SIZE * 8


class Appender:
    """Accumulates rows and appends them in bulk.  Use as a context manager."""

    def __init__(self, connection: "Connection", table_name: str) -> None:
        self._connection = connection
        self._database = connection.database
        self._transaction = self._database.transaction_manager.begin()
        self._table = self._database.catalog.get_table(table_name,
                                                       self._transaction)
        self._pending: List[List[Any]] = [[] for _ in self._table.columns]
        self._pending_rows = 0
        self.rows_appended = 0
        self._closed = False

    # -- row-oriented filling -----------------------------------------------
    def append_row(self, *values: Any) -> None:
        """Buffer one row; flushed automatically in chunk-sized batches."""
        if len(values) != len(self._table.columns):
            raise InvalidInputError(
                f"append_row got {len(values)} values, table has "
                f"{len(self._table.columns)} columns"
            )
        for column_values, value in zip(self._pending, values):
            column_values.append(value)
        self._pending_rows += 1
        if self._pending_rows >= _FLUSH_ROWS:
            self.flush()

    def append_rows(self, rows: Sequence[Sequence[Any]]) -> None:
        for row in rows:
            self.append_row(*row)

    # -- bulk (NumPy) filling ------------------------------------------------------
    def append_numpy(self, columns: Dict[str, np.ndarray],
                     validities: Optional[Dict[str, np.ndarray]] = None) -> None:
        """Append whole NumPy arrays at once -- the zero-copy bulk path.

        ``columns`` maps column names to arrays; all arrays must have equal
        length.  Arrays whose dtype already matches the column's physical
        type are wrapped without copying.
        """
        self.flush()
        validities = validities or {}
        vectors: List[Vector] = []
        length: Optional[int] = None
        for column in self._table.columns:
            if column.name not in columns:
                raise InvalidInputError(f"append_numpy is missing column "
                                        f"{column.name!r}")
            array = columns[column.name]
            if length is None:
                length = len(array)
            elif len(array) != length:
                raise InvalidInputError("append_numpy arrays differ in length")
            vector = Vector.from_numpy(np.asarray(array), column.dtype,
                                       validities.get(column.name))
            vectors.append(vector)
        chunk = DataChunk(vectors)
        self._append_chunk(chunk)

    # -- flushing -------------------------------------------------------------------
    def flush(self) -> None:
        """Push buffered rows into the table."""
        if self._pending_rows == 0:
            return
        vectors: List[Vector] = []
        for column, values in zip(self._table.columns, self._pending):
            vector = Vector.from_values(values, column.dtype)
            vectors.append(vector)
        chunk = DataChunk(vectors)
        self._pending = [[] for _ in self._table.columns]
        self._pending_rows = 0
        self._append_chunk(chunk)

    def _append_chunk(self, chunk: DataChunk) -> None:
        for vector, column in zip(chunk.columns, self._table.columns):
            if not column.nullable and not vector.all_valid():
                raise ConstraintError(
                    f"NOT NULL constraint violated: column {column.name!r} "
                    f"of table {self._table.name!r}"
                )
        self._table.data.append_chunk(self._transaction, chunk)
        if self._database.storage.wal.enabled:
            self._transaction.wal_records.append(
                WALRecord.insert_chunk(self._table.name, chunk))
        self.rows_appended += chunk.size

    # -- lifecycle ---------------------------------------------------------------------
    def close(self) -> None:
        """Flush and commit all appended rows."""
        if self._closed:
            return
        self.flush()
        self._closed = True
        self._database.transaction_manager.commit(self._transaction)
        self._database.maybe_auto_checkpoint()

    def abort(self) -> None:
        """Discard everything appended through this appender."""
        if self._closed:
            return
        self._closed = True
        self._database.transaction_manager.rollback(self._transaction)

    def __enter__(self) -> "Appender":
        return self

    def __exit__(self, exc_type: Any, *exc: Any) -> None:
        if exc_type is not None:
            self.abort()
        else:
            self.close()
