"""Client API: connections, results, appender, cursor, protocol baselines."""

from .appender import Appender
from .connection import Connection, connect
from .cursor import Cursor
from .protocol import (
    GIGABIT_PER_SECOND,
    SocketProtocolClient,
    deserialize_result,
    serialize_result,
)
from .result import QueryResult

__all__ = [
    "Connection",
    "connect",
    "QueryResult",
    "Appender",
    "Cursor",
    "SocketProtocolClient",
    "serialize_result",
    "deserialize_result",
    "GIGABIT_PER_SECOND",
]
