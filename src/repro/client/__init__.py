"""Client API: connections, results, appender, cursor, protocol baselines.

The package doubles as a PEP 249 (DB-API 2.0) module: ``connect()`` returns
a :class:`Connection` whose :meth:`~Connection.cursor` yields DB-API
cursors, and the required module-level attributes and exception names are
exported here.  ``paramstyle`` is ``"qmark"`` -- ``?`` placeholders, bound
positionally.
"""

from ..errors import (
    BinderError,
    CatalogError,
    ClosedHandleError,
    ConstraintError,
    ConversionError,
    CorruptionError,
    Error,
    InterfaceError,
    InternalError,
    InvalidInputError,
    ParserError,
    StorageError,
    TransactionError,
)
from ..errors import ConnectionError as OperationalError
from .appender import Appender
from .connection import Connection, connect
from .cursor import Cursor
from .pool import ConnectionPool, PooledConnection
from .prepared import PreparedStatement
from .protocol import (
    GIGABIT_PER_SECOND,
    SocketProtocolClient,
    deserialize_result,
    serialize_result,
)
from .result import ColumnDescription, QueryResult

#: DB-API 2.0 compliance level (PEP 249).
apilevel: str = "2.0"
#: Threads may share the module and connections (each connection
#: serializes its statements behind an internal lock).
threadsafety: int = 2
#: SQL parameters use ``?`` question-mark placeholders.  As a DB-API
#: extension the ``:name`` named style is also accepted (bind values from a
#: mapping); the two styles cannot be mixed in one statement.
paramstyle: str = "qmark"

# -- PEP 249 exception names, aliased onto the engine hierarchy ------------
#: Base of every error the module raises (PEP 249 ``Error``).
DatabaseError = Error
# InterfaceError (client-side misuse: closed handles, bad arguments) is now
# a first-class exception imported from repro.errors; it still subclasses
# InvalidInputError, the alias it replaced.
#: Statement-level problems: parse, bind, catalog errors.
ProgrammingError = BinderError
#: Value conversion and data representation failures.
DataError = ConversionError
#: Constraint violations.
IntegrityError = ConstraintError
#: Requested feature the engine does not implement.
NotSupportedError = InvalidInputError

__all__ = [
    "Connection",
    "connect",
    "ConnectionPool",
    "PooledConnection",
    "PreparedStatement",
    "QueryResult",
    "ColumnDescription",
    "Appender",
    "Cursor",
    "ClosedHandleError",
    "SocketProtocolClient",
    "serialize_result",
    "deserialize_result",
    "GIGABIT_PER_SECOND",
    "apilevel",
    "threadsafety",
    "paramstyle",
    "Error",
    "DatabaseError",
    "InterfaceError",
    "ProgrammingError",
    "OperationalError",
    "DataError",
    "IntegrityError",
    "InternalError",
    "NotSupportedError",
    "ParserError",
    "BinderError",
    "CatalogError",
    "ConstraintError",
    "ConversionError",
    "CorruptionError",
    "InvalidInputError",
    "StorageError",
    "TransactionError",
]
