"""Query results: bulk chunk access, zero-copy NumPy export, row access.

Transfer efficiency (paper §5/§6) is the whole point of this module:

* :meth:`QueryResult.fetch_chunk` hands the client the engine's own
  chunks -- "exactly identical to the internal representation ... handed
  over without requiring copying";
* :meth:`QueryResult.fetch_numpy` exposes whole columns as NumPy arrays
  (zero-copy when the result is a single chunk);
* :meth:`QueryResult.fetchone` / :meth:`fetchmany` / :meth:`fetchall`
  provide the familiar DB-API row-oriented access, implemented on top of
  the bulk path.

A streaming result keeps its transaction open until exhausted or closed --
the client application literally acts as the root operator of the query
plan, polling the engine for chunks.

The legacy spelling ``fetchnumpy()`` still works but raises a
``DeprecationWarning``; use :meth:`fetch_numpy`.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..errors import ConnectionError as ResultClosedError
from ..types import DataChunk, LogicalType, LogicalTypeId, Vector

__all__ = ["QueryResult", "ColumnDescription"]

#: DB-API 2.0 column description: (name, type_code, display_size,
#: internal_size, precision, scale, null_ok).
ColumnDescription = Tuple[str, LogicalTypeId, Optional[int], Optional[int],
                          Optional[int], Optional[int], Optional[bool]]


class QueryResult:
    """Result of one statement."""

    def __init__(self, names: List[str], types: List[LogicalType],
                 chunks: Iterator[DataChunk], rowcount: int = -1,
                 on_close: Optional[Callable[[], None]] = None) -> None:
        self.names = names
        self.types = types
        self.rowcount = rowcount
        self._source: Optional[Iterator[DataChunk]] = chunks
        self._on_close = on_close
        self._closed = False
        # Row-access state.
        self._current: Optional[DataChunk] = None
        self._position = 0

    # -- metadata ----------------------------------------------------------
    @property
    def columns(self) -> List[str]:
        """Column names, in result order."""
        return list(self.names)

    @property
    def dtypes(self) -> List[LogicalType]:
        """Logical column types, in result order."""
        return list(self.types)

    @property
    def description(self) -> List[ColumnDescription]:
        """DB-API 2.0 column descriptions (7-tuples).

        ``type_code`` is the column's :class:`~repro.types.LogicalTypeId`;
        ``internal_size`` is the per-value width of the physical NumPy
        representation (pointer width for VARCHAR).
        """
        out: List[ColumnDescription] = []
        for name, dtype in zip(self.names, self.types):
            out.append((name, dtype.id, None, dtype.numpy_dtype.itemsize,
                        None, None, None))
        return out

    # -- lifecycle ---------------------------------------------------------
    def _finish(self) -> None:
        """Release underlying resources (runs the commit callback once).

        The result stays readable -- further fetches simply report
        exhaustion -- unlike :meth:`close`, which forbids further access.
        """
        self._source = None
        if self._on_close is not None:
            callback, self._on_close = self._on_close, None
            callback()

    def close(self) -> None:
        """Release the result (and its transaction for streaming results)."""
        if self._closed:
            return
        self._closed = True
        self._current = None
        self._finish()

    def __enter__(self) -> "QueryResult":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ResultClosedError("Result has been closed")

    # -- bulk (chunk) API ------------------------------------------------------
    def fetch_chunk(self) -> Optional[DataChunk]:
        """The next chunk in the engine's internal representation, or None.

        This is the paper's zero-copy hand-over: the returned chunk's NumPy
        arrays are the engine's own vectors.
        """
        self._check_open()
        if self._source is None:
            return None
        for chunk in self._source:
            if chunk.size:
                return chunk
        self._finish()
        return None

    def chunks(self) -> Iterator[DataChunk]:
        """Iterate over all remaining chunks."""
        while True:
            chunk = self.fetch_chunk()
            if chunk is None:
                return
            yield chunk

    def fetch_numpy(self) -> Dict[str, np.ndarray]:
        """Columns as NumPy arrays (masked arrays when NULLs are present).

        Single-chunk results are exposed zero-copy; multi-chunk results are
        concatenated (one copy, still no per-value conversion).
        """
        collected = [chunk for chunk in self.chunks()]
        out: Dict[str, np.ndarray] = {}
        for index, name in enumerate(self.names):
            vectors = [chunk.columns[index] for chunk in collected]
            if not vectors:
                vector = Vector.empty(self.types[index], 0)
            elif len(vectors) == 1:
                vector = vectors[0]
            else:
                vector = Vector.concat_many(vectors)
            if vector.all_valid():
                out[name] = vector.data
            else:
                out[name] = np.ma.masked_array(vector.data, mask=~vector.validity)
        return out

    def fetchnumpy(self) -> Dict[str, np.ndarray]:
        """Deprecated spelling of :meth:`fetch_numpy`."""
        warnings.warn("QueryResult.fetchnumpy() is deprecated; "
                      "use fetch_numpy()", DeprecationWarning, stacklevel=2)
        return self.fetch_numpy()

    def materialize(self) -> "QueryResult":
        """Drain the source eagerly; the result then owns plain chunks."""
        collected = list(self.chunks())
        self._source = iter(collected)
        return self

    # -- row API ---------------------------------------------------------------
    def fetchone(self) -> Optional[Tuple[Any, ...]]:
        """The next row as a tuple of Python values, or None when done."""
        self._check_open()
        while self._current is None or self._position >= self._current.size:
            chunk = self.fetch_chunk()
            if chunk is None:
                return None
            self._current = chunk
            self._position = 0
        row = self._current.row(self._position)
        self._position += 1
        return row

    def fetchmany(self, size: int = 1) -> List[Tuple[Any, ...]]:
        rows = []
        for _ in range(size):
            row = self.fetchone()
            if row is None:
                break
            rows.append(row)
        return rows

    def fetchall(self) -> List[Tuple[Any, ...]]:
        """All remaining rows as Python tuples."""
        rows: List[Tuple[Any, ...]] = []
        if self._current is not None and self._position < self._current.size:
            remainder = self._current.slice(
                np.arange(self._position, self._current.size))
            rows.extend(remainder.to_rows())
            self._current = None
        for chunk in self.chunks():
            rows.extend(chunk.to_rows())
        return rows

    def to_rows(self) -> List[Tuple[Any, ...]]:
        """All remaining rows as Python tuples (alias of :meth:`fetchall`)."""
        return self.fetchall()

    def to_dict(self) -> Dict[str, List[Any]]:
        """All rows as ``{column_name: [python values]}``."""
        columns: Dict[str, List[Any]] = {name: [] for name in self.names}
        for chunk in self.chunks():
            for name, column in zip(self.names, chunk.columns):
                columns[name].extend(column.to_pylist())
        return columns

    def fetchvalue(self) -> Any:
        """First column of the first row (scalar convenience)."""
        row = self.fetchone()
        return row[0] if row is not None else None

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    def __repr__(self) -> str:
        columns = ", ".join(f"{name}:{dtype}"
                            for name, dtype in zip(self.names, self.types))
        return f"QueryResult([{columns}])"
