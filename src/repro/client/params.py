"""Parameter normalization and cache keying, shared by every client path.

``Cursor.execute``, ``Connection.execute``, ``executemany``, and
``PreparedStatement`` all accept the same two paramstyles -- qmark
(``?`` bound from a sequence) and named (``:name`` bound from a mapping)
-- and all funnel through :func:`normalize_parameters` so the binder and
the caches see one canonical shape.

The two fingerprint functions are what keep parameters from defeating the
caches: the *type* fingerprint keys the plan cache (one plan per SQL text
and parameter-type signature, reused across values), while the *value*
fingerprint keys the result cache (a result is only valid for exact
values).  Types are fingerprinted with the same
:func:`~repro.types.infer_type_of_value` the binder uses, so an ``int``
that infers to a wider type binds its own plan instead of overflowing a
cached cast.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence, Tuple, Union

from ..errors import InvalidInputError
from ..types import infer_type_of_value

__all__ = ["normalize_parameters", "type_fingerprint", "value_fingerprint"]

Parameters = Union[Tuple[Any, ...], dict, None]


def normalize_parameters(parameters: Any) -> Parameters:
    """Canonicalize user-supplied parameters to a tuple, a dict, or None."""
    if parameters is None:
        return None
    if isinstance(parameters, Mapping):
        out = {}
        for key in parameters:
            if not isinstance(key, str):
                raise InvalidInputError(
                    "Named parameters must be keyed by strings, got "
                    f"{key!r}")
            out[key] = parameters[key]
        return out
    if isinstance(parameters, (str, bytes)):
        raise InvalidInputError(
            "Parameters must be a sequence or a mapping, not a string")
    try:
        return tuple(parameters)
    except TypeError:
        raise InvalidInputError(
            f"Parameters must be a sequence or a mapping, got "
            f"{type(parameters).__name__}") from None


def type_fingerprint(parameters: Parameters) -> Optional[Tuple]:
    """Hashable signature of the parameter *types* (plan-cache key part).

    None means "unfingerprintable" (a value the engine cannot type) --
    callers skip the cache and let the ordinary bind path raise.
    """
    try:
        if parameters is None:
            return ()
        if isinstance(parameters, dict):
            return ("map",) + tuple(sorted(
                (key, infer_type_of_value(value).id.name)
                for key, value in parameters.items()))
        return ("seq",) + tuple(infer_type_of_value(value).id.name
                                for value in parameters)
    except Exception:  # quacklint: disable=QLE001 -- untypeable value means "skip the cache"; the bind path raises the real error
        return None


def value_fingerprint(parameters: Parameters) -> Optional[Tuple]:
    """Hashable signature of the parameter *values* (result-cache key part)."""
    try:
        if parameters is None:
            return ()
        if isinstance(parameters, dict):
            fingerprint: Tuple = ("map",) + tuple(sorted(
                (key, _value_key(value)) for key, value in parameters.items()))
        else:
            fingerprint = ("seq",) + tuple(_value_key(value)
                                           for value in parameters)
        hash(fingerprint)
        return fingerprint
    except TypeError:
        return None


def _value_key(value: Any) -> Tuple[str, Any]:
    # Type-tag each value so 1, 1.0, and True key distinct entries.
    return (type(value).__name__, value)
