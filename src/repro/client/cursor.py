"""Cursors: the DB-API 2.0 surface plus the value-at-a-time baseline.

Paper §5: *"Common examples are the ODBC and JDBC APIs, but also the SQLite
APIs. ... when transferring large result sets, the function call overhead
for each value becomes excessive."*

This cursor serves two audiences at once:

* **PEP 249 (DB-API 2.0)** -- ``execute``/``executemany``, ``fetchone``/
  ``fetchmany``/``fetchall`` with ``arraysize``, a 7-tuple ``description``
  whose ``type_code`` is the column's
  :class:`~repro.types.LogicalTypeId`, context-manager support, and strict
  closed-cursor semantics.  ``repro.client`` exports the module-level
  ``apilevel``/``threadsafety``/``paramstyle`` attributes.
* **the C3 transfer baseline** -- the deliberately traditional ``step()``
  advances one row and ``column_value(i)`` fetches one value per call, so
  the transfer experiment can measure exactly the per-value overhead the
  paper criticizes against the chunk-based bulk API of
  :class:`~repro.client.result.QueryResult`.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import ClosedHandleError, InvalidInputError
from ..types import DataChunk
from .result import ColumnDescription, QueryResult

if TYPE_CHECKING:
    from .connection import Connection

__all__ = ["Cursor"]


class Cursor:
    """DB-API 2.0 cursor (also exposes SQLite-style stepping)."""

    def __init__(self, connection: "Connection") -> None:
        self._connection = connection
        self._result: Optional[QueryResult] = None
        self._chunk: Optional[DataChunk] = None
        self._row = -1
        self._closed = False
        #: DB-API: how many rows :meth:`fetchmany` returns by default.
        self.arraysize: int = 1
        #: DB-API: affected/returned row count of the last statement.
        self.rowcount: int = -1
        #: DB-API: 7-tuple column descriptions of the last result.
        self.description: Optional[List[ColumnDescription]] = None

    # -- properties -------------------------------------------------------
    @property
    def connection(self) -> "Connection":
        """The connection this cursor belongs to (DB-API extension)."""
        return self._connection

    def _check_usable(self) -> None:
        if self._closed:
            # InterfaceError-family (and still an InvalidInputError for
            # callers written against the historical exception).
            raise ClosedHandleError("Cursor has been closed")

    # -- execution -------------------------------------------------------
    def execute(self, sql: str, parameters: Any = None) -> "Cursor":
        """Run SQL; ``parameters`` is a sequence (qmark) or mapping (named)."""
        self._check_usable()
        self.finalize()
        self._result = self._connection.execute(sql, parameters, stream=True)
        self.rowcount = self._result.rowcount
        self.description = self._result.description or None
        self._chunk = None
        self._row = -1
        return self

    def executemany(self, sql: str,
                    parameter_sets: Iterable[Sequence[Any]]) -> "Cursor":
        """Run the same statement once per parameter tuple (DB-API)."""
        self._check_usable()
        self.finalize()
        total = 0
        ran = False
        for parameters in parameter_sets:
            result = self._connection.execute(sql, parameters)
            ran = True
            if result.rowcount >= 0:
                total += result.rowcount
            result.close()
        self.rowcount = total if ran else -1
        self.description = None
        return self

    # -- SQLite-style stepping API ------------------------------------------------
    def step(self) -> bool:
        """Advance to the next row; False when the result is exhausted."""
        if self._result is None:
            raise InvalidInputError("step() before execute()")
        self._row += 1
        while self._chunk is None or self._row >= self._chunk.size:
            self._chunk = self._result.fetch_chunk()
            self._row = 0
            if self._chunk is None:
                return False
        return True

    def column_count(self) -> int:
        if self._result is None:
            raise InvalidInputError("column_count() before execute()")
        return len(self._result.names)

    def column_name(self, index: int) -> str:
        if self._result is None:
            raise InvalidInputError("column_name() before execute()")
        return self._result.names[index]

    def column_value(self, index: int) -> Any:
        """One value of the current row -- one function call per value."""
        if self._chunk is None:
            raise InvalidInputError("column_value() before a successful step()")
        return self._chunk.columns[index].get_value(self._row)

    # -- DB-API row access -----------------------------------------------------
    def fetchone(self) -> Optional[Tuple[Any, ...]]:
        self._check_usable()
        if not self.step():
            return None
        return tuple(self.column_value(index)
                     for index in range(self.column_count()))

    def fetchmany(self, size: Optional[int] = None) -> List[Tuple[Any, ...]]:
        """Up to ``size`` rows (default :attr:`arraysize`), [] when done."""
        self._check_usable()
        count = self.arraysize if size is None else size
        rows: List[Tuple[Any, ...]] = []
        for _ in range(max(0, count)):
            row = self.fetchone()
            if row is None:
                break
            rows.append(row)
        return rows

    def fetchall(self) -> List[Tuple[Any, ...]]:
        rows: List[Tuple[Any, ...]] = []
        while True:
            row = self.fetchone()
            if row is None:
                return rows
            rows.append(row)

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        """Iterate over remaining rows (DB-API extension)."""
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    # -- DB-API no-ops ---------------------------------------------------------
    def setinputsizes(self, sizes: Sequence[Any]) -> None:
        """Required by PEP 249; this engine needs no sizing hints."""

    def setoutputsize(self, size: int, column: Optional[int] = None) -> None:
        """Required by PEP 249; this engine needs no sizing hints."""

    # -- lifecycle ---------------------------------------------------------------------
    def finalize(self) -> None:
        """Release the current result; the cursor stays reusable."""
        if self._result is not None:
            self._result.close()
            self._result = None
        self._chunk = None
        self._row = -1

    def close(self) -> None:
        """Release resources and make the cursor unusable (DB-API)."""
        self.finalize()
        self._closed = True

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
