"""Value-at-a-time cursor: the deliberately traditional baseline API.

Paper §5: *"Common examples are the ODBC and JDBC APIs, but also the SQLite
APIs. ... when transferring large result sets, the function call overhead
for each value becomes excessive."*

This cursor reproduces that API shape -- ``step()`` advances one row,
``column_value(i)`` fetches one value per call -- so the C3 transfer
experiment can measure exactly the per-value overhead the paper criticizes,
against the chunk-based bulk API of :class:`~repro.client.result.QueryResult`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional, Sequence, Tuple

from ..errors import InvalidInputError
from ..types import DataChunk
from .result import QueryResult

if TYPE_CHECKING:
    from .connection import Connection

__all__ = ["Cursor"]


class Cursor:
    """SQLite-style stepping cursor over query results."""

    def __init__(self, connection: "Connection") -> None:
        self._connection = connection
        self._result: Optional[QueryResult] = None
        self._chunk: Optional[DataChunk] = None
        self._row = -1
        #: DB-API compatibility attributes.
        self.rowcount = -1
        self.description: Optional[List[Tuple[Any, ...]]] = None

    # -- execution -------------------------------------------------------
    def execute(self, sql: str, parameters: Optional[Sequence[Any]] = None) -> "Cursor":
        self.finalize()
        self._result = self._connection.execute(sql, parameters, stream=True)
        self.rowcount = self._result.rowcount
        self.description = [(name, str(dtype), None, None, None, None, None)
                            for name, dtype in zip(self._result.names,
                                                   self._result.types)]
        self._chunk = None
        self._row = -1
        return self

    # -- SQLite-style stepping API ------------------------------------------------
    def step(self) -> bool:
        """Advance to the next row; False when the result is exhausted."""
        if self._result is None:
            raise InvalidInputError("step() before execute()")
        self._row += 1
        while self._chunk is None or self._row >= self._chunk.size:
            self._chunk = self._result.fetch_chunk()
            self._row = 0
            if self._chunk is None:
                return False
        return True

    def column_count(self) -> int:
        if self._result is None:
            raise InvalidInputError("column_count() before execute()")
        return len(self._result.names)

    def column_name(self, index: int) -> str:
        if self._result is None:
            raise InvalidInputError("column_name() before execute()")
        return self._result.names[index]

    def column_value(self, index: int) -> Any:
        """One value of the current row -- one function call per value."""
        if self._chunk is None:
            raise InvalidInputError("column_value() before a successful step()")
        return self._chunk.columns[index].get_value(self._row)

    # -- DB-API style row access -----------------------------------------------------
    def fetchone(self) -> Optional[Tuple[Any, ...]]:
        if not self.step():
            return None
        return tuple(self.column_value(index)
                     for index in range(self.column_count()))

    def fetchall(self) -> List[Tuple[Any, ...]]:
        rows: List[Tuple[Any, ...]] = []
        while True:
            row = self.fetchone()
            if row is None:
                return rows
            rows.append(row)

    # -- lifecycle ---------------------------------------------------------------------
    def finalize(self) -> None:
        if self._result is not None:
            self._result.close()
            self._result = None
        self._chunk = None
        self._row = -1

    close = finalize

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.finalize()
