"""Prepared statements: parse once, execute many times with parameters.

``Connection.prepare(sql)`` returns a :class:`PreparedStatement` holding the
statement's AST.  Each :meth:`execute` first consults the database's shared
plan cache (a warm statement skips parse *and* bind *and* optimize); on a
cache miss the retained AST at least skips the parse.  Both paramstyles
work -- ``?`` markers bound from a sequence, ``:name`` markers bound from a
mapping -- and values never defeat the cache, because plans are keyed on
the parameter *type* fingerprint, not the values.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Optional

from ..errors import ClosedHandleError, InvalidInputError
from ..sql import parse
from .params import normalize_parameters

if TYPE_CHECKING:
    from .connection import Connection
    from .result import QueryResult

__all__ = ["PreparedStatement"]


class PreparedStatement:
    """One pre-parsed SQL statement bound to a connection."""

    def __init__(self, connection: "Connection", sql: str) -> None:
        statements = parse(sql)
        if not statements:
            raise InvalidInputError("No statement to prepare")
        if len(statements) > 1:
            raise InvalidInputError(
                "prepare() takes exactly one statement; got "
                f"{len(statements)} (split multi-statement scripts)")
        self._connection = connection
        self._sql = sql
        self._statements = statements
        self._closed = False

    @property
    def sql(self) -> str:
        return self._sql

    @property
    def connection(self) -> "Connection":
        return self._connection

    def _check_usable(self) -> None:
        if self._closed:
            raise ClosedHandleError("Prepared statement has been closed")
        self._connection._check_open()

    def execute(self, parameters: Any = None,
                stream: bool = False) -> "QueryResult":
        """Run the statement with this execution's parameter values."""
        self._check_usable()
        connection = self._connection
        parameters = normalize_parameters(parameters)
        served = connection._execute_served(self._sql, parameters, stream)
        if served is not None:
            return served
        return connection._execute_parsed(self._statements, self._sql,
                                          parameters, stream)

    def executemany(self, parameter_sets: Iterable[Any]) -> "QueryResult":
        """Run once per parameter set, returning the last result."""
        result: Optional["QueryResult"] = None
        for parameters in parameter_sets:
            if result is not None:
                result.close()
            result = self.execute(parameters)
        if result is None:
            raise InvalidInputError("executemany() with no parameter sets")
        return result

    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "PreparedStatement":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"PreparedStatement({self._sql!r}, {state})"
