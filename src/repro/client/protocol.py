"""Simulated client-server protocol: the transfer-efficiency baseline.

Paper §5: *"Serialization traditionally occurs due to the need to transfer
a result set to a client program over a network connection. ... data
transfer over a network socket to another computer is limited by the
available bandwidth, e.g. 1 Gbit/s."*

This module implements that classic path faithfully enough to measure its
cost: result rows are serialized into a length-prefixed binary wire format
(one value at a time, as real row-oriented protocols do), "sent" through a
bandwidth/latency model, and deserialized on the "client" side back into
Python rows.  The serialization and deserialization CPU work is real; only
the wire itself is simulated, with the transfer time reported separately so
experiments can combine them for any assumed link speed.
"""

from __future__ import annotations

import struct
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:
    from .connection import Connection

from ..errors import InvalidInputError
from ..types import DataChunk, LogicalType, LogicalTypeId

__all__ = ["serialize_result", "deserialize_result", "SocketProtocolClient",
           "GIGABIT_PER_SECOND"]

#: Bytes per second of a 1 Gbit/s link (the paper's example bandwidth).
GIGABIT_PER_SECOND = 125_000_000


def _serialize_value(dtype: LogicalType, value: Any, out: List[bytes]) -> None:
    """Length-prefixed, row-major value serialization (the classic design)."""
    if value is None:
        out.append(struct.pack("<i", -1))
        return
    type_id = dtype.id
    if type_id is LogicalTypeId.VARCHAR:
        raw = value.encode("utf-8")
    elif type_id is LogicalTypeId.BOOLEAN:
        raw = struct.pack("<B", 1 if value else 0)
    elif dtype.is_integer():
        raw = struct.pack("<q", int(value))
    elif dtype.is_float():
        raw = struct.pack("<d", float(value))
    elif type_id is LogicalTypeId.DATE:
        raw = value.isoformat().encode("utf-8")
    elif type_id is LogicalTypeId.TIMESTAMP:
        raw = value.isoformat(sep=" ").encode("utf-8")
    else:
        raise InvalidInputError(f"Cannot serialize values of type {dtype}")
    out.append(struct.pack("<i", len(raw)))
    out.append(raw)


def serialize_result(chunks: Iterable[DataChunk],
                     types: Sequence[LogicalType]) -> bytes:
    """Serialize result chunks into a row-major byte stream."""
    out: List[bytes] = [struct.pack("<I", len(types))]
    row_count = 0
    for chunk in chunks:
        for row_index in range(chunk.size):
            for column, dtype in zip(chunk.columns, types):
                _serialize_value(dtype, column.get_value(row_index), out)
            row_count += 1
    out.insert(1, struct.pack("<Q", row_count))
    return b"".join(out)


def _deserialize_value(dtype: LogicalType, payload: bytes,
                       offset: int) -> Tuple[Any, int]:
    (length,) = struct.unpack_from("<i", payload, offset)
    offset += 4
    if length < 0:
        return None, offset
    raw = payload[offset:offset + length]
    offset += length
    type_id = dtype.id
    if type_id is LogicalTypeId.VARCHAR:
        return raw.decode("utf-8"), offset
    if type_id is LogicalTypeId.BOOLEAN:
        return raw != b"\x00", offset
    if dtype.is_integer():
        return struct.unpack("<q", raw)[0], offset
    if dtype.is_float():
        return struct.unpack("<d", raw)[0], offset
    if type_id is LogicalTypeId.DATE:
        import datetime

        return datetime.date.fromisoformat(raw.decode("utf-8")), offset
    if type_id is LogicalTypeId.TIMESTAMP:
        import datetime

        return datetime.datetime.fromisoformat(raw.decode("utf-8")), offset
    raise InvalidInputError(f"Cannot deserialize values of type {dtype}")


def deserialize_result(payload: bytes,
                       types: Sequence[LogicalType]) -> List[Tuple[Any, ...]]:
    """Parse the wire stream back into Python rows (the client's work)."""
    (column_count,) = struct.unpack_from("<I", payload, 0)
    (row_count,) = struct.unpack_from("<Q", payload, 4)
    if column_count != len(types):
        raise InvalidInputError("Wire stream column count mismatch")
    offset = 12
    rows: List[Tuple[Any, ...]] = []
    for _ in range(row_count):
        row: List[Any] = []
        for dtype in types:
            value, offset = _deserialize_value(types[len(row)], payload, offset)
            row.append(value)
        rows.append(tuple(row))
    return rows


class SocketProtocolClient:
    """Runs queries through the simulated serializing client protocol.

    ``bandwidth`` models the link (bytes/second); ``latency`` the per-query
    round trip.  ``execute`` returns the fully deserialized rows plus a
    stats dict: real serialization/deserialization seconds and the simulated
    wire seconds for the configured link.
    """

    def __init__(self, connection: "Connection",
                 bandwidth: int = GIGABIT_PER_SECOND,
                 latency: float = 0.0005) -> None:
        self._connection = connection
        self.bandwidth = bandwidth
        self.latency = latency

    def execute(self, sql: str, parameters: Optional[Sequence[Any]] = None,
                ) -> Tuple[List[Tuple[Any, ...]], Dict[str, Any]]:
        import time

        result = self._connection.execute(sql, parameters, stream=True)
        start = time.perf_counter()
        payload = serialize_result(result.chunks(), result.types)
        serialize_seconds = time.perf_counter() - start
        result.close()

        wire_seconds = self.latency + len(payload) / self.bandwidth

        start = time.perf_counter()
        rows = deserialize_result(payload, result.types)
        deserialize_seconds = time.perf_counter() - start
        stats = {
            "bytes_transferred": len(payload),
            "serialize_seconds": serialize_seconds,
            "deserialize_seconds": deserialize_seconds,
            "simulated_wire_seconds": wire_seconds,
            "total_seconds": serialize_seconds + deserialize_seconds + wire_seconds,
        }
        return rows, stats
