"""Connection pooling for the serving workload.

``repro.connect(path, pool_size=N)`` returns a :class:`ConnectionPool`: N
real connections over one shared :class:`~repro.database.Database`, handed
out as :class:`PooledConnection` proxies.  Each underlying connection
carries a *private copy* of the database config, re-created every time the
connection returns to the pool -- a session's ``PRAGMA``s (memory limit,
threads, slow-query threshold) can never leak into the next borrower.
Open transactions left behind by a borrower are rolled back on release.

A released proxy is dead: every further operation raises
:class:`~repro.errors.InterfaceError` (never an internal engine error),
the PEP 249 contract for closed handles.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import TYPE_CHECKING, Any, List, Optional

from ..errors import InterfaceError, InvalidInputError

if TYPE_CHECKING:
    from ..database import Database
    from .connection import Connection

__all__ = ["ConnectionPool", "PooledConnection"]


class ConnectionPool:
    """A fixed set of connections over one database, borrowed and returned."""

    def __init__(self, database: "Database", size: int,
                 owns_database: bool = False) -> None:
        if size < 1:
            raise InvalidInputError("pool_size must be >= 1")
        from .connection import Connection

        self._database = database
        self._owns_database = owns_database
        self._size = size
        # Plain stdlib primitives: the pool is client-side bookkeeping, not
        # an engine lock (it nests nothing and nothing nests inside it).
        self._condition = threading.Condition(threading.Lock())
        self._free: List["Connection"] = [
            Connection(database, config=self._fresh_config(), _internal=True)
            for _ in range(size)
        ]
        self._borrowed = 0
        self._closed = False

    def _fresh_config(self):
        return dataclasses.replace(self._database.config)

    @property
    def size(self) -> int:
        return self._size

    @property
    def available(self) -> int:
        with self._condition:
            return len(self._free)

    # -- borrow / return ----------------------------------------------------
    def acquire(self, timeout: Optional[float] = None) -> "PooledConnection":
        """Borrow a connection, blocking until one is free."""
        with self._condition:
            while True:
                if self._closed:
                    raise InterfaceError("Connection pool has been closed")
                if self._free:
                    connection = self._free.pop()
                    self._borrowed += 1
                    return PooledConnection(self, connection)
                if not self._condition.wait(timeout):
                    raise InterfaceError(
                        f"No pooled connection became available within "
                        f"{timeout}s ({self._size} borrowed)")

    def connection(self, timeout: Optional[float] = None) -> "PooledConnection":
        """Alias of :meth:`acquire` reading well in ``with`` statements."""
        return self.acquire(timeout)

    def _release(self, connection: "Connection") -> None:
        # Reset before re-pooling: abandon any open transaction and restore
        # a pristine session config so PRAGMAs don't leak across borrowers.
        if connection.in_transaction:
            connection.rollback()
        connection._config = self._fresh_config()
        with self._condition:
            self._borrowed -= 1
            if self._closed:
                connection.close()
            else:
                self._free.append(connection)
                self._condition.notify()

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        """Close idle connections now, borrowed ones as they are returned."""
        with self._condition:
            if self._closed:
                return
            self._closed = True
            idle, self._free = self._free, []
            self._condition.notify_all()
        for connection in idle:
            connection.close()
        if self._owns_database:
            self._database.close()

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"ConnectionPool(size={self._size}, {state})"


class PooledConnection:
    """A borrowed connection; returning it to the pool invalidates the proxy.

    Supports the full :class:`~repro.client.connection.Connection` API by
    delegation.  ``close()`` returns the connection to the pool instead of
    closing it; afterwards every call raises
    :class:`~repro.errors.InterfaceError`.
    """

    __slots__ = ("_pool", "_connection", "_released")

    def __init__(self, pool: ConnectionPool, connection: "Connection") -> None:
        self._pool = pool
        self._connection = connection
        self._released = False

    def __getattr__(self, name: str) -> Any:
        if self._released:
            raise InterfaceError(
                "Connection was returned to the pool; acquire a new one")
        return getattr(self._connection, name)

    @property
    def released(self) -> bool:
        return self._released

    def close(self) -> None:
        """Return the underlying connection to the pool (idempotent)."""
        if self._released:
            return
        self._released = True
        self._pool._release(self._connection)

    def __enter__(self) -> "PooledConnection":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "released" if self._released else "borrowed"
        return f"PooledConnection({state})"
