"""Connections: the embedded client API.

A connection owns a transaction context over a shared
:class:`~repro.database.Database`.  Statements run in autocommit mode unless
``BEGIN`` opened an explicit transaction.  Because database and application
share one address space, query results are handed over as chunks of the
engine's internal representation (see :mod:`~repro.client.result`) -- the
transfer-efficiency design of paper §5/§6.
"""

from __future__ import annotations

import time
import warnings
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Union,
)

from ..config import DatabaseConfig
from ..database import Database
from ..observability import registry as metrics_registry
from ..observability.accounting import StatementRecord
from ..sanitizer import SanRLock
from ..errors import ClosedHandleError, Error
from ..errors import InvalidInputError, TransactionContextError
from ..execution.executor import Executor, StatementResult
from ..introspection.flight import is_engine_fault
from ..planner.binder import Binder
from ..planner import bound_statements as bound
from ..server.cache import CachedPlan, CachedResult, plan_result_cacheable
from ..sql import ast, parse
from ..types import DataChunk
from .params import normalize_parameters, type_fingerprint, value_fingerprint
from .result import QueryResult

if TYPE_CHECKING:
    from ..execution.physical import ExecutionContext
    from ..observability.slowlog import SlowQueryRecord
    from ..observability.trace import Span, Tracer
    from ..transaction.transaction import Transaction
    from .appender import Appender
    from .cursor import Cursor
    from .prepared import PreparedStatement

__all__ = ["Connection", "connect"]


def connect(database: str = ":memory:",
            config: Union[DatabaseConfig, Dict[str, Any], None] = None,
            ) -> "Connection":
    """Open a database file (or an in-memory database) and connect to it.

    The returned connection owns the database: closing it (or using it as a
    context manager) closes the database, checkpointing if configured.
    """
    if isinstance(config, dict) or config is None:
        config = DatabaseConfig.from_dict(config)
    instance = Database(database, config)
    connection = Connection(instance, owns_database=True, _internal=True)
    return connection


class Connection:
    """One client connection: a transaction context plus the execute API."""

    def __init__(self, database: Database, owns_database: bool = False,
                 config: Optional[DatabaseConfig] = None,
                 _internal: bool = False) -> None:
        if not _internal:
            # Deprecation shim (one release): the supported entry points are
            # repro.connect(), Database.connect(), ConnectionPool, and
            # QueryServer.session() -- direct construction bypasses session
            # config handling and will lose access to it.
            warnings.warn(
                "Constructing Connection directly is deprecated; use "
                "repro.connect(), Database.connect(), or a ConnectionPool",
                DeprecationWarning, stacklevel=2)
        self._database = database
        self._owns_database = owns_database
        #: Effective session config.  Plain connections share the database's
        #: config (PRAGMAs apply instance-wide, the embedded behaviour);
        #: pooled and served connections receive a private copy so session
        #: PRAGMAs cannot leak across clients.
        self._config = config if config is not None else database.config
        # Explicit transaction, if BEGIN was issued.
        self._transaction: Optional["Transaction"] = None
        # Execution context of the in-flight query, for interrupt().
        self._active_context: Optional["ExecutionContext"] = None
        # -- per-statement resource accounting ------------------------------
        # Serving session this connection belongs to (0 = direct embedded
        # connection); set by SessionRegistry.create before any statement.
        self._session_id = 0
        # Statements observed on this connection, the `statement_seq` half
        # of the accounting attribution key.
        self._statement_seq = 0
        # Buffer-manager counters at the previous statement boundary; the
        # next statement's hits/misses/peak are deltas against these.
        buffers = database.buffer_manager
        self._buffer_baseline = (buffers.cache_hits, buffers.cache_misses,
                                 buffers.peak_bytes)
        # Resource bill of the most recently finished statement (the
        # serving session folds it into its stats).
        self.last_accounting: Optional[StatementRecord] = None
        self._closed = False
        # Outermost lock of the declared hierarchy: held while the engine
        # takes the checkpoint, transaction-manager, catalog, table, and
        # buffer locks -- never acquired while any of those is held.
        self._lock = SanRLock("connection")

    @property
    def session_config(self) -> DatabaseConfig:
        """The config this connection's statements run under (see __init__)."""
        return self._config

    # -- properties ---------------------------------------------------------
    @property
    def database(self) -> Database:
        return self._database

    @property
    def in_transaction(self) -> bool:
        return self._transaction is not None

    def _check_open(self) -> None:
        if self._closed:
            # ClosedHandleError subclasses both InterfaceError (PEP 249
            # client misuse) and ConnectionError (the historical type).
            raise ClosedHandleError("Connection has been closed")
        self._database.check_open()

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        with self._lock:
            if self._transaction is not None:
                self._database.transaction_manager.rollback(self._transaction)
                self._transaction = None
            self._closed = True
            if self._owns_database:
                self._database.close()

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def duplicate(self) -> "Connection":
        """Another connection to the same database (for concurrent use)."""
        self._check_open()
        return Connection(self._database, _internal=True)

    # -- transaction control ------------------------------------------------------
    def begin(self) -> None:
        self._check_open()
        with self._lock:
            if self._transaction is not None:
                raise TransactionContextError("Transaction already in progress")
            self._transaction = self._database.transaction_manager.begin()

    def commit(self) -> None:
        self._check_open()
        with self._lock:
            if self._transaction is None:
                raise TransactionContextError("No transaction in progress")
            transaction, self._transaction = self._transaction, None
            self._database.transaction_manager.commit(transaction)
        self._database.maybe_auto_checkpoint()

    def rollback(self) -> None:
        self._check_open()
        with self._lock:
            if self._transaction is None:
                raise TransactionContextError("No transaction in progress")
            transaction, self._transaction = self._transaction, None
            self._database.transaction_manager.rollback(transaction)

    # -- execution ---------------------------------------------------------------
    def execute(self, sql: str, parameters: Any = None,
                stream: bool = False) -> QueryResult:
        """Parse and run SQL (possibly multiple ``;``-separated statements).

        ``parameters`` binds ``?`` markers from a sequence or ``:name``
        markers from a mapping (the two styles cannot be mixed in one
        statement).  Returns the result of the last statement.  With
        ``stream=True`` the final result is *lazy*: chunks are computed as
        the client polls them (the client becomes the plan's root operator)
        and, in autocommit mode, the transaction commits when the result is
        exhausted/closed.

        Autocommit SELECTs ride the database's shared plan cache (and,
        eager ones, the result cache) -- see :mod:`repro.server.cache`.
        """
        self._check_open()
        parameters = normalize_parameters(parameters)
        served = self._execute_served(sql, parameters, stream)
        if served is not None:
            return served
        return self._execute_parsed(parse(sql), sql, parameters, stream)

    def _execute_parsed(self, statements: List[ast.Statement], sql: str,
                        parameters: Any, stream: bool) -> QueryResult:
        """Run pre-parsed statements (shared with PreparedStatement)."""
        if not statements:
            raise InvalidInputError("No statement to execute")
        if (len(statements) == 1 and self._transaction is None
                and isinstance(statements[0], ast.SelectStatement)
                and self._database.plan_cache.capacity > 0):
            tfp = type_fingerprint(parameters)
            if tfp is not None:
                vfp = value_fingerprint(parameters) if not stream else None
                filled = self._execute_select_fill(
                    statements[0], parameters, stream, sql, tfp, vfp)
                if filled is not None:
                    return filled
        result: Optional[QueryResult] = None
        for index, statement in enumerate(statements):
            if result is not None:
                result.close()
            is_last = index == len(statements) - 1
            result = self._execute_statement(statement, parameters,
                                             stream=stream and is_last,
                                             sql_text=sql)
        assert result is not None
        return result

    def executemany(self, sql: str,
                    parameter_sets: Iterable[Sequence[Any]]) -> QueryResult:
        """Run the same statement for each parameter tuple (or mapping)."""
        result: Optional[QueryResult] = None
        for parameters in parameter_sets:
            if result is not None:
                result.close()
            result = self.execute(sql, parameters)
        if result is None:
            raise InvalidInputError("executemany() with no parameter sets")
        return result

    def prepare(self, sql: str) -> "PreparedStatement":
        """Parse a single statement once for repeated parameterized runs."""
        self._check_open()
        from .prepared import PreparedStatement

        return PreparedStatement(self, sql)

    # -- cache fast paths ---------------------------------------------------
    def _execute_served(self, sql: str, parameters: Any,
                        stream: bool) -> Optional[QueryResult]:
        """Serve from the plan/result caches, or None to take the slow path.

        Only autocommit statements are eligible: inside an explicit
        transaction the session's snapshot may predate (or outpace) the
        version counters the caches key on.
        """
        if self._transaction is not None:
            return None
        database = self._database
        if database.plan_cache.capacity <= 0:
            return None
        # Cheap statement-kind sniff: only SELECTs are ever cached (the fill
        # path checks the parsed AST), so skip the lookup -- and the miss it
        # would count -- for DML/DDL text.
        head = sql.lstrip()[:7].upper()
        if not (head.startswith("SELECT") or head.startswith("WITH")
                or head.startswith("(")):
            return None
        tfp = type_fingerprint(parameters)
        if tfp is None:
            return None
        key_sql = sql.strip()
        manager = database.transaction_manager
        entry = database.plan_cache.lookup((key_sql, tfp),
                                           manager.catalog_version)
        if entry is None:
            return None
        vfp = value_fingerprint(parameters) if not stream else None
        if vfp is not None and database.result_cache.capacity > 0:
            wall = time.perf_counter_ns()
            hit = database.result_cache.lookup(
                (key_sql, vfp, manager.data_version))
            if hit is not None:
                self._observe_statement(
                    sql, None, None, time.perf_counter_ns() - wall,
                    hit.rows,
                    vectors=sum(chunk.column_count for chunk in hit.chunks))
                return QueryResult(hit.names, hit.types, iter(hit.chunks),
                                   hit.rowcount)
        with self._lock:
            transaction = manager.begin()
            return self._run_select_locked(entry.plan, transaction,
                                           parameters, stream, sql, key_sql,
                                           vfp)

    def _execute_select_fill(self, statement: ast.Statement, parameters: Any,
                             stream: bool, sql: str, tfp: Any,
                             vfp: Any) -> Optional[QueryResult]:
        """Bind a SELECT with late-bound parameters and cache its plan.

        Returns None when the statement cannot be parameterized (e.g.
        ``LIMIT ?``, which must fold to a constant at bind time) -- the
        caller falls back to the legacy value-inlining path, uncached.
        """
        database = self._database
        manager = database.transaction_manager
        key_sql = sql.strip()
        with self._lock:
            # Capture the catalog version BEFORE beginning: a DDL commit
            # racing in between marks the fresh plan stale (conservative),
            # never the reverse.
            catalog_version = manager.catalog_version
            transaction = manager.begin()
            try:
                binder = Binder(database.catalog, transaction, parameters,
                                parameterize=True)
                bound_statement = binder.bind_statement(statement)
                executor = self._make_executor(transaction, parameters)
                plan = executor.prepare_select(bound_statement)
            except Error:
                manager.rollback(transaction)
                return None
            database.plan_cache.store(
                (key_sql, tfp),
                CachedPlan(key_sql, plan, catalog_version,
                           parameterized=bool(parameters)))
            return self._run_select_locked(plan, transaction, parameters,
                                           stream, sql, key_sql, vfp)

    def _make_executor(self, transaction: "Transaction",
                       parameters: Any = None) -> Executor:
        return Executor(
            self._database, transaction,
            on_context=lambda context: setattr(
                self, "_active_context", context),
            config=self._config,
            parameters=parameters if parameters is not None else ())

    def _run_select_locked(self, plan: Any, transaction: "Transaction",
                           parameters: Any, stream: bool, sql_text: str,
                           key_sql: str, vfp: Any) -> QueryResult:
        """Run an optimized SELECT plan in autocommit mode (lock held)."""
        database = self._database
        manager = database.transaction_manager
        tracer = database.tracer
        query_span = tracer.start_query(sql_text) \
            if tracer is not None else None
        wall = time.perf_counter_ns()
        cpu = time.thread_time_ns()
        try:
            executor = self._make_executor(transaction, parameters)
            outcome = executor.run_plan(plan)
        except Exception as execute_error:
            self._finish_statement(sql_text, tracer, query_span,
                                   time.perf_counter_ns() - wall,
                                   time.thread_time_ns() - cpu, 0,
                                   error=execute_error)
            manager.rollback(transaction)
            raise
        if stream:
            return self._streaming_result(outcome, transaction, True,
                                          sql_text, tracer, query_span,
                                          wall, cpu)
        try:
            chunks = [chunk for chunk in outcome.chunks if chunk.size]
        except Exception as drain_error:
            self._finish_statement(sql_text, tracer, query_span,
                                   time.perf_counter_ns() - wall,
                                   time.thread_time_ns() - cpu, 0,
                                   error=drain_error)
            manager.rollback(transaction)
            raise
        start_version = transaction.start_data_version
        manager.commit(transaction)
        database.maybe_auto_checkpoint()
        self._finish_statement(sql_text, tracer, query_span,
                               time.perf_counter_ns() - wall,
                               time.thread_time_ns() - cpu,
                               sum(chunk.size for chunk in chunks),
                               vectors=sum(chunk.column_count
                                           for chunk in chunks))
        if (vfp is not None and database.result_cache.capacity > 0
                and plan_result_cacheable(plan)):
            database.result_cache.store(
                (key_sql, vfp, start_version),
                CachedResult(outcome.names, outcome.types, tuple(chunks),
                             outcome.rowcount))
        return QueryResult(outcome.names, outcome.types, iter(chunks),
                           outcome.rowcount)

    def _execute_statement(self, statement: ast.Statement,
                           parameters: Optional[Sequence[Any]],
                           stream: bool, sql_text: str = "") -> QueryResult:
        # Transaction control never runs inside the executor.
        if isinstance(statement, ast.TransactionStatement):
            if statement.action == "begin":
                self.begin()
            elif statement.action == "commit":
                self.commit()
            else:
                self.rollback()
            return QueryResult([], [], iter(()), 0)
        if isinstance(statement, ast.CheckpointStatement):
            if self._transaction is not None:
                raise TransactionContextError(
                    "CHECKPOINT cannot run inside an explicit transaction"
                )
            self._database.checkpoint(force=True)
            return QueryResult([], [], iter(()), 0)

        with self._lock:
            autocommit = self._transaction is None
            transaction = self._transaction \
                or self._database.transaction_manager.begin()
            try:
                binder = Binder(self._database.catalog, transaction, parameters)
                bound_statement = binder.bind_statement(statement)
            except Exception as bind_error:
                # Binding performed no writes: an explicit transaction can
                # keep going; an implicit one is simply discarded.
                if autocommit:
                    self._database.transaction_manager.rollback(transaction)
                self._observe_statement(sql_text, None, None, 0, 0,
                                        error=bind_error)
                raise
            tracer = self._database.tracer
            query_span = tracer.start_query(sql_text) \
                if tracer is not None else None
            wall = time.perf_counter_ns()
            cpu = time.thread_time_ns()
            try:
                executor = self._make_executor(transaction, parameters)
                outcome = executor.execute(bound_statement)
            except Exception as execute_error:
                self._finish_statement(sql_text, tracer, query_span,
                                       time.perf_counter_ns() - wall,
                                       time.thread_time_ns() - cpu, 0,
                                       error=execute_error)
                # Execution may have performed partial writes; without
                # savepoints the whole transaction must abort.
                self._database.transaction_manager.rollback(transaction)
                if not autocommit:
                    self._transaction = None
                raise

            if stream:
                return self._streaming_result(outcome, transaction, autocommit,
                                              sql_text, tracer, query_span,
                                              wall, cpu)
            # Eager mode: drain the plan, then commit.
            try:
                chunks = [chunk for chunk in outcome.chunks if chunk.size]
            except Exception as drain_error:
                self._finish_statement(sql_text, tracer, query_span,
                                       time.perf_counter_ns() - wall,
                                       time.thread_time_ns() - cpu, 0,
                                       error=drain_error)
                if autocommit:
                    self._database.transaction_manager.rollback(transaction)
                else:
                    self._database.transaction_manager.rollback(transaction)
                    self._transaction = None
                raise
            if autocommit:
                self._database.transaction_manager.commit(transaction)
                self._database.maybe_auto_checkpoint()
            self._finish_statement(sql_text, tracer, query_span,
                                   time.perf_counter_ns() - wall,
                                   time.thread_time_ns() - cpu,
                                   sum(chunk.size for chunk in chunks),
                                   vectors=sum(chunk.column_count
                                               for chunk in chunks))
            return QueryResult(outcome.names, outcome.types, iter(chunks),
                               outcome.rowcount)

    def interrupt(self) -> None:
        """Request cancellation of in-flight query execution.

        Operators check the flag between chunks; the interrupted query
        raises :class:`~repro.errors.InterruptError` at its next chunk
        boundary (cooperative cancellation -- the engine never blocks the
        host application, paper §4).
        """
        context = self._active_context
        if context is not None:
            context.interrupted = True

    def _streaming_result(self, outcome: StatementResult,
                          transaction: "Transaction",
                          autocommit: bool, sql_text: str = "",
                          tracer: Optional["Tracer"] = None,
                          query_span: Optional["Span"] = None,
                          wall_start: int = 0,
                          cpu_start: int = 0) -> QueryResult:
        finished: Dict[str, Any] = {"done": False, "rows": 0, "vectors": 0,
                                    "error": None}
        # The root span must not stay on this thread's stack while the
        # client holds the lazy result (the next statement would nest under
        # it) -- pop now, close with final timing when the stream ends.
        if tracer is not None and query_span is not None:
            tracer.pop(query_span)

        def finish_observation() -> None:
            wall_ns = time.perf_counter_ns() - wall_start
            cpu_ns = time.thread_time_ns() - cpu_start
            if query_span is not None:
                query_span.add_timing(wall_ns, cpu_ns)
                assert tracer is not None
                tracer.end_span(query_span)
            self._observe_statement(sql_text, tracer, query_span, wall_ns,
                                    finished["rows"],
                                    error=finished["error"], cpu_ns=cpu_ns,
                                    vectors=finished["vectors"],
                                    context=self._active_context)

        def on_close() -> None:
            if finished["done"]:
                return
            finished["done"] = True
            finish_observation()
            if autocommit:
                if transaction.is_active:
                    self._database.transaction_manager.commit(transaction)
                self._database.maybe_auto_checkpoint()

        def guarded_chunks() -> Iterator[DataChunk]:
            try:
                for chunk in outcome.chunks:
                    finished["rows"] += chunk.size
                    finished["vectors"] += chunk.column_count
                    yield chunk
            except Exception as stream_error:
                if autocommit and transaction.is_active:
                    self._database.transaction_manager.rollback(transaction)
                    finished["done"] = True
                    finished["error"] = stream_error
                    finish_observation()
                raise

        return QueryResult(outcome.names, outcome.types, guarded_chunks(),
                           outcome.rowcount, on_close=on_close)

    # -- observability ------------------------------------------------------
    def _finish_statement(self, sql_text: str, tracer: Optional["Tracer"],
                          query_span: Optional["Span"], wall_ns: int,
                          cpu_ns: int, rows: int,
                          error: Optional[BaseException] = None,
                          vectors: int = 0) -> None:
        """Close the statement's root span and fold per-statement metrics."""
        if tracer is not None and query_span is not None:
            tracer.finish_query(query_span, wall_ns, cpu_ns)
        self._observe_statement(sql_text, tracer, query_span, wall_ns, rows,
                                error=error, cpu_ns=cpu_ns, vectors=vectors,
                                context=self._active_context)

    def _flight(self, sql_text: str, wall_ns: int, rows: int,
                error: Optional[BaseException] = None) -> None:
        """Record the statement in the flight ring; dump on engine faults.

        The dump is best-effort (``try_dump`` semantics): a recorder that
        cannot write must never mask the engine error it is documenting.
        """
        database = self._database
        database.flight_recorder.record_statement(sql_text, wall_ns / 1e6,
                                                  rows, error)
        if error is not None and is_engine_fault(error):
            database.dump_flight(f"engine fault: {type(error).__name__}",
                                 error, best_effort=True)

    def _observe_statement(self, sql_text: str, tracer: Optional["Tracer"],
                           query_span: Optional["Span"], wall_ns: int,
                           rows: int,
                           error: Optional[BaseException] = None,
                           cpu_ns: int = 0, vectors: int = 0,
                           context: Optional["ExecutionContext"] = None,
                           ) -> None:
        self._flight(sql_text, wall_ns, rows, error)
        reg = metrics_registry()
        reg.counter("repro_queries_total", "Statements executed").inc()
        if rows:
            reg.counter("repro_rows_returned_total",
                        "Rows handed to clients").inc(rows)
        reg.histogram("repro_statement_seconds",
                      "End-to-end statement latency").observe(wall_ns / 1e9)
        database = self._database
        database.fold_metrics()
        seq = self._statement_seq + 1
        self._statement_seq = seq
        # Per-statement resource bill.  Buffer traffic and peak memory are
        # deltas against the previous statement boundary on this
        # connection -- concurrent connections share the buffer manager,
        # so these are attribution *estimates*, exact only for serial use.
        buffers = database.buffer_manager
        hits, misses = buffers.cache_hits, buffers.cache_misses
        peak = buffers.peak_bytes
        base_hits, base_misses, base_peak = self._buffer_baseline
        self._buffer_baseline = (hits, misses, peak)
        rows_scanned = 0
        if context is not None:
            # Lock-free read after the run, same idiom as the executor's
            # post-run stats reads.
            rows_scanned = int(context.stats.get("rows_scanned", 0))
        memory = peak if peak > base_peak else buffers.used_bytes
        record = StatementRecord(
            self._session_id, seq, sql_text,
            wall_ms=wall_ns / 1e6, cpu_ms=cpu_ns / 1e6, rows_out=rows,
            rows_scanned=rows_scanned, vectors=vectors,
            buffer_hits=max(0, hits - base_hits),
            buffer_misses=max(0, misses - base_misses),
            memory_bytes=memory,
            error=type(error).__name__ if error is not None else "")
        self.last_accounting = record
        database.statement_log.record(record)
        if context is not None and context is self._active_context:
            # The statement is over: de-target interrupt() and keep the
            # next statement's accounting from re-reading these stats.
            self._active_context = None
        threshold = self._config.slow_query_ms
        if threshold > 0:
            duration_ms = wall_ns / 1e6
            if duration_ms >= threshold:
                spans = tracer.sink.trace(query_span.trace_id) \
                    if tracer is not None and query_span is not None else None
                database.slow_log.record(sql_text, duration_ms, threshold,
                                         spans,
                                         session_id=self._session_id,
                                         statement_seq=seq)

    def metrics(self) -> Dict[str, Any]:
        """Snapshot of the process-wide engine metrics (plain dict)."""
        self._check_open()
        self._database.fold_metrics()
        return metrics_registry().snapshot()

    def metrics_text(self) -> str:
        """Engine metrics in Prometheus exposition format."""
        self._check_open()
        self._database.fold_metrics()
        return metrics_registry().render_text()

    def slow_queries(self) -> List["SlowQueryRecord"]:
        """Captured slow-query records, oldest first."""
        self._check_open()
        return self._database.slow_log.records()

    # -- convenience -------------------------------------------------------------
    def query_value(self, sql: str, parameters: Optional[Sequence[Any]] = None) -> Any:
        """Run a query and return the first value of the first row."""
        return self.execute(sql, parameters).fetchvalue()

    def table_names(self) -> List[str]:
        """Names of all tables visible right now."""
        transaction = self._transaction \
            or self._database.transaction_manager.begin()
        try:
            return [table.name
                    for table in self._database.catalog.tables(transaction)]
        finally:
            if transaction is not self._transaction:
                self._database.transaction_manager.rollback(transaction)

    def appender(self, table_name: str) -> "Appender":
        """A bulk :class:`~repro.client.appender.Appender` for a table."""
        from .appender import Appender

        return Appender(self, table_name)

    def cursor(self) -> "Cursor":
        """A value-at-a-time cursor (the ODBC/JDBC-style baseline API)."""
        self._check_open()
        from .cursor import Cursor

        return Cursor(self)

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"Connection({self._database!r}, {state})"
