"""Fault-injection memory: the simulated unreliable DRAM of the paper (§3).

The paper's resilience analysis assumes consumer hardware without ECC where
bits flip silently.  Since we (hopefully) run on working hardware, this
module *simulates* broken memory so the detection machinery -- moving
inversions memtests, AN codes, block checksums -- has something real to
detect.  Three fault classes from the paper / MemTest86 manual are modeled:

* **stuck-at faults** -- a cell always reads 0 (stuck-at-0) or 1
  (stuck-at-1) regardless of what was written; "often only specific areas
  of the RAM are broken whereas others function correctly".
* **coupling (disturb) faults** -- writing a cell flips a neighboring cell;
  "writing to a cell might flip a neighboring cell"; these are the
  intermittent, data-dependent errors plain pattern tests miss.
* **transient bit flips** -- random single-bit upsets at a configurable
  per-access probability (the DRAM rows of Table 1).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..errors import InternalError, OutOfMemoryError

__all__ = ["FaultyMemory", "PlainMemory", "StuckBit", "CouplingFault"]


class StuckBit:
    """One stuck-at fault: ``(address, bit, value)``."""

    __slots__ = ("address", "bit", "value")

    def __init__(self, address: int, bit: int, value: int) -> None:
        if bit not in range(8) or value not in (0, 1):
            raise InternalError("StuckBit bit must be 0-7, value 0/1")
        self.address = address
        self.bit = bit
        self.value = value


class CouplingFault:
    """Writing ``aggressor`` flips ``victim``'s bit (a disturb fault)."""

    __slots__ = ("aggressor", "victim", "bit")

    def __init__(self, aggressor: int, victim: int, bit: int) -> None:
        self.aggressor = aggressor
        self.victim = victim
        self.bit = bit


class PlainMemory:
    """A healthy memory arena: the default provider for the buffer manager."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.data = np.zeros(size, dtype=np.uint8)

    def read(self, offset: int, count: int) -> np.ndarray:
        return self.data[offset:offset + count].copy()

    def write(self, offset: int, values: np.ndarray) -> None:
        self.data[offset:offset + len(values)] = values

    def view(self, offset: int, count: int) -> np.ndarray:
        """Zero-copy view handed to operators as buffer storage."""
        return self.data[offset:offset + count]


class FaultyMemory(PlainMemory):
    """A memory arena with injectable faults, accessed via read/write.

    ``read``/``write`` model the memory bus: stuck bits override writes and
    reads, coupling faults fire on aggressor writes, and transient flips
    occur per read with probability ``transient_flip_probability``.
    """

    def __init__(self, size: int, seed: int = 0,
                 transient_flip_probability: float = 0.0) -> None:
        super().__init__(size)
        self._rng = np.random.default_rng(seed)
        self.transient_flip_probability = transient_flip_probability
        self._stuck: List[StuckBit] = []
        self._coupling: List[CouplingFault] = []
        #: Count of transient flips actually injected (for experiment reports).
        self.transient_flips_injected = 0

    # -- fault injection API -----------------------------------------------
    def inject_stuck_region(self, offset: int, length: int, faults_per_kib: float = 8.0,
                            value: Optional[int] = None) -> int:
        """Scatter stuck bits across [offset, offset+length); returns the count."""
        count = max(1, int(length / 1024 * faults_per_kib))
        addresses = self._rng.integers(offset, offset + length, size=count)
        for address in addresses:
            bit = int(self._rng.integers(0, 8))
            stuck_value = int(self._rng.integers(0, 2)) if value is None else value
            self._stuck.append(StuckBit(int(address), bit, stuck_value))
        self._apply_stuck()
        return count

    def inject_stuck_bit(self, address: int, bit: int, value: int) -> None:
        self._stuck.append(StuckBit(address, bit, value))
        self._apply_stuck()

    def inject_coupling_fault(self, aggressor: int, victim: int, bit: int = 0) -> None:
        self._coupling.append(CouplingFault(aggressor, victim, bit))

    def clear_faults(self) -> None:
        self._stuck = []
        self._coupling = []

    @property
    def fault_addresses(self) -> List[int]:
        return sorted({fault.address for fault in self._stuck}
                      | {fault.victim for fault in self._coupling})

    # -- bus model --------------------------------------------------------------
    def _apply_stuck(self) -> None:
        for fault in self._stuck:
            mask = np.uint8(1 << fault.bit)
            if fault.value:
                self.data[fault.address] |= mask
            else:
                self.data[fault.address] &= np.uint8(~mask & 0xFF)

    def write(self, offset: int, values: np.ndarray) -> None:
        end = offset + len(values)
        self.data[offset:end] = values
        # Stuck cells ignore the write.
        self._apply_stuck()
        # Aggressor writes disturb their victims.  One write() call models a
        # low-to-high sequential sweep over its range: if the victim lies
        # *after* the aggressor inside the same write, the subsequent store
        # overwrites (masks) the flip -- which is exactly why single-pass
        # pattern tests miss these data-dependent faults and moving
        # inversions needs its second, downward sweep.
        for fault in self._coupling:
            if offset <= fault.aggressor < end:
                masked = offset <= fault.victim < end and fault.victim > fault.aggressor
                if not masked:
                    self.data[fault.victim] ^= np.uint8(1 << fault.bit)

    def read(self, offset: int, count: int) -> np.ndarray:
        out = self.data[offset:offset + count].copy()
        if self.transient_flip_probability > 0.0 and count > 0:
            flips = self._rng.random(count) < self.transient_flip_probability
            if flips.any():
                positions = np.flatnonzero(flips)
                bits = self._rng.integers(0, 8, size=positions.size)
                out[positions] ^= (np.uint8(1) << bits).astype(np.uint8)
                self.transient_flips_injected += int(positions.size)
        return out
