"""Moving-inversions memory test (paper §3/§6, after the MemTest86 manual).

*"There exist approximate memory error detection algorithms like 'moving
inversions' that can uncover memory issues in a generic way. However, these
tests create significant traffic on the memory bus, it is thus not feasible
to constantly test the entire memory. As a compromise, we plan to integrate
memory tests into the buffer manager, which will test all buffers on
allocation to detect existing errors and periodically to detect new
errors."*

The algorithm: for each test pattern, (1) fill the region with the pattern,
(2) sweep upward reading each word -- verifying it still holds the pattern --
and writing its complement, (3) sweep downward verifying the complement and
restoring the pattern.  The two opposing sweeps catch stuck-at faults in
both polarities and many coupling (neighbor-disturb) faults that a naive
write-then-read check misses.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["moving_inversions", "quick_pattern_test", "DEFAULT_PATTERNS", "MemtestReport"]

#: Classic moving-inversions patterns: all-zeros/ones and alternating bits.
DEFAULT_PATTERNS = (0x00, 0xFF, 0x55, 0xAA)

#: Sweep granularity: testing word-by-word models the real algorithm while
#: keeping the Python overhead bounded; 64 bytes mirrors a cache line.
_SWEEP_CHUNK = 64


class MemtestReport:
    """Outcome of a memory test: which byte offsets failed, and traffic stats."""

    def __init__(self, offset: int, length: int) -> None:
        self.offset = offset
        self.length = length
        self.bad_offsets: List[int] = []
        self.bytes_touched = 0

    @property
    def passed(self) -> bool:
        return not self.bad_offsets

    def bad_ranges(self, granularity: int = 4096) -> List[tuple]:
        """Failed offsets coalesced into ``granularity``-aligned ranges."""
        pages = sorted({offset // granularity for offset in self.bad_offsets})
        ranges = []
        for page in pages:
            start = page * granularity
            if ranges and ranges[-1][1] == start:
                ranges[-1] = (ranges[-1][0], start + granularity)
            else:
                ranges.append((start, start + granularity))
        return ranges

    def __repr__(self) -> str:
        status = "PASS" if self.passed else f"FAIL ({len(self.bad_offsets)} bad bytes)"
        return f"MemtestReport([{self.offset}, {self.offset + self.length}): {status})"


def _record_mismatches(report: MemtestReport, base: int, observed: np.ndarray,
                       expected: int) -> None:
    mismatches = np.flatnonzero(observed != expected)
    for position in mismatches:
        report.bad_offsets.append(base + int(position))


def moving_inversions(memory, offset: int, length: int,
                      patterns: Sequence[int] = DEFAULT_PATTERNS) -> MemtestReport:
    """Run the moving-inversions algorithm over ``memory[offset:offset+length]``.

    ``memory`` is any arena exposing ``read(offset, count)`` and
    ``write(offset, values)`` -- a healthy :class:`~repro.resilience.faults.PlainMemory`
    or a fault-injected :class:`~repro.resilience.faults.FaultyMemory`.

    The region's previous contents are destroyed (the buffer manager only
    tests buffers at allocation time, before handing them out).
    """
    report = MemtestReport(offset, length)
    if length <= 0:
        return report
    for pattern in patterns:
        inverse = pattern ^ 0xFF
        fill = np.full(length, pattern, dtype=np.uint8)
        memory.write(offset, fill)
        report.bytes_touched += length
        # Upward sweep: verify pattern, write complement.
        for start in range(0, length, _SWEEP_CHUNK):
            count = min(_SWEEP_CHUNK, length - start)
            observed = memory.read(offset + start, count)
            _record_mismatches(report, offset + start, observed, pattern)
            memory.write(offset + start, np.full(count, inverse, dtype=np.uint8))
            report.bytes_touched += 2 * count
        # Downward sweep: verify complement, restore pattern.
        for start in range(((length - 1) // _SWEEP_CHUNK) * _SWEEP_CHUNK, -1, -_SWEEP_CHUNK):
            count = min(_SWEEP_CHUNK, length - start)
            observed = memory.read(offset + start, count)
            _record_mismatches(report, offset + start, observed, inverse)
            memory.write(offset + start, np.full(count, pattern, dtype=np.uint8))
            report.bytes_touched += 2 * count
    report.bad_offsets = sorted(set(report.bad_offsets))
    return report


def quick_pattern_test(memory, offset: int, length: int) -> MemtestReport:
    """The naive write-pattern-read-back check the paper calls insufficient.

    Kept as the baseline for the C8 experiment: it misses coupling faults
    that :func:`moving_inversions` catches, demonstrating *why* the stronger
    test is needed.
    """
    report = MemtestReport(offset, length)
    if length <= 0:
        return report
    for pattern in (0x55, 0xAA):
        fill = np.full(length, pattern, dtype=np.uint8)
        memory.write(offset, fill)
        observed = memory.read(offset, length)
        _record_mismatches(report, offset, observed, pattern)
        report.bytes_touched += 2 * length
    report.bad_offsets = sorted(set(report.bad_offsets))
    return report
