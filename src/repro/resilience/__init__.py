"""Resilience: fault injection, memory tests, AN codes, failure model (paper §3)."""

from .ancodes import (
    ANCodedVector,
    DEFAULT_A,
    an_decode,
    an_encode,
    an_verify,
    inject_bit_flips,
)
from .failures import (
    FailureKind,
    FailureRates,
    FleetReport,
    FleetSimulator,
    TABLE1_RATES,
)
from .faults import CouplingFault, FaultyMemory, PlainMemory, StuckBit
from .memtest import (
    DEFAULT_PATTERNS,
    MemtestReport,
    moving_inversions,
    quick_pattern_test,
)

__all__ = [
    "ANCodedVector",
    "DEFAULT_A",
    "an_encode",
    "an_decode",
    "an_verify",
    "inject_bit_flips",
    "FailureKind",
    "FailureRates",
    "FleetReport",
    "FleetSimulator",
    "TABLE1_RATES",
    "FaultyMemory",
    "PlainMemory",
    "StuckBit",
    "CouplingFault",
    "moving_inversions",
    "quick_pattern_test",
    "MemtestReport",
    "DEFAULT_PATTERNS",
]
