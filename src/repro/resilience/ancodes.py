"""AN-code data hardening (paper §3, after Kolditz et al., SIGMOD 2018).

*"error detection is efficiently implemented through the use of AN codes,
resulting in resilience against random bit flips in the data while
operating between 1.1x and 1.6x slower."*

An AN code multiplies every value by a constant ``A`` before storing it;
a value is valid iff it remains divisible by ``A``.  A random bit flip
turns ``A * n`` into ``A * n + 2^k``, which is divisible by ``A`` only if
``A`` divides ``2^k`` -- impossible for odd ``A`` -- so *any single-bit
flip is detected*.  ``A = 641`` is the classic "super-A" constant from the
AN-coding literature: it also detects all two-bit flips in 64-bit words.

The implementation is fully vectorized: encode, decode, and verify are one
NumPy multiply / modulo over whole arrays, so the overhead profile matches
the paper's claim (a constant factor on top of the raw operation, not a
per-value penalty).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import CorruptionError
from ..types import LogicalType, Vector

__all__ = ["DEFAULT_A", "an_encode", "an_decode", "an_verify",
            "ANCodedVector", "inject_bit_flips"]

#: The classic golden AN constant: odd (detects all 1-bit flips) and chosen
#: so all 2-bit flips in 64-bit words are detected as well.
DEFAULT_A = 641


def an_encode(values: np.ndarray, a: int = DEFAULT_A) -> np.ndarray:
    """Encode integers: ``code = A * value`` (int64 arithmetic)."""
    return values.astype(np.int64) * np.int64(a)


def an_verify(codes: np.ndarray, a: int = DEFAULT_A) -> np.ndarray:
    """Boolean mask of code words that are still valid multiples of A."""
    return codes % np.int64(a) == 0


def an_decode(codes: np.ndarray, a: int = DEFAULT_A,
              check: bool = True) -> np.ndarray:
    """Decode code words back to values, verifying divisibility first."""
    if check:
        bad = ~an_verify(codes, a)
        if bad.any():
            position = int(np.flatnonzero(bad)[0])
            raise CorruptionError(
                f"AN-code verification failed at position {position}: "
                f"code word {int(codes[position])} is not a multiple of {a} "
                "-- memory corruption detected"
            )
    return codes // np.int64(a)


def inject_bit_flips(codes: np.ndarray, count: int, seed: int = 0,
                     max_bit: int = 62) -> np.ndarray:
    """Flip ``count`` random bits across the array (fault injection)."""
    rng = np.random.default_rng(seed)
    flipped = codes.copy()
    positions = rng.integers(0, len(codes), size=count)
    bits = rng.integers(0, max_bit, size=count)
    for position, bit in zip(positions, bits):
        flipped[position] ^= np.int64(1) << np.int64(bit)
    return flipped


class ANCodedVector:
    """An integer vector stored AN-encoded in memory.

    Aggregations can run *directly on the encoded data*: the sum of code
    words is ``A * sum(values)``, so one final verification plus one divide
    yields the true sum -- with end-to-end protection: a bit flip anywhere
    in the resident data makes the final divisibility check fail.
    """

    def __init__(self, vector: Vector, a: int = DEFAULT_A) -> None:
        if not vector.dtype.is_integer():
            raise CorruptionError("AN coding requires an integer vector")
        self.dtype = vector.dtype
        self.a = a
        self.codes = an_encode(vector.data, a)
        self.validity = vector.validity.copy()

    def __len__(self) -> int:
        return len(self.codes)

    def verify(self) -> None:
        """Check every resident code word (the periodic scrub)."""
        valid_codes = self.codes[self.validity]
        bad = ~an_verify(valid_codes, self.a)
        if bad.any():
            raise CorruptionError(
                f"AN-code scrub found {int(bad.sum())} corrupted word(s)"
            )

    def decode(self) -> Vector:
        data = an_decode(self.codes, self.a, check=True)
        return Vector(self.dtype, data.astype(self.dtype.numpy_dtype),
                      self.validity.copy())

    def checked_sum(self) -> int:
        """Sum computed on encoded data, verified end to end.

        Fast path: with no NULLs the verification runs directly over the
        resident code array (no gather/copy) -- one modulo pass and one sum
        pass on top of the unprotected aggregation, keeping the overhead a
        small constant factor as the paper's cited AN-coding work reports.
        """
        if bool(self.validity.all()):
            valid_codes = self.codes
        else:
            valid_codes = self.codes[self.validity]
        bad_words = int(np.count_nonzero(valid_codes % np.int64(self.a)))
        if bad_words:
            raise CorruptionError(
                f"AN-code verification failed for {bad_words} word(s) "
                "during aggregation"
            )
        total = int(valid_codes.sum())
        if total % self.a != 0:
            raise CorruptionError("AN-coded sum failed final verification")
        return total // self.a

    def nbytes(self) -> int:
        return self.codes.nbytes + self.validity.nbytes
