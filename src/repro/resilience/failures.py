"""Hardware failure model: reproduces the paper's Table 1.

Table 1 (from Nightingale, Douceur & Orgovan, EuroSys 2011 -- "Cycles,
Cells and Platters", cited by the paper) gives 30-day failure probabilities
for consumer machines:

    ============  ==============  ====================
    Failure       Pr[1st failure] Pr[2nd fail | 1 fail]
    ============  ==============  ====================
    CPU (MCE)     1 in 190        1 in 2.9
    DRAM bit flip 1 in 1700       1 in 12
    Disk failure  1 in 270        1 in 3.5
    ============  ==============  ====================

The model simulates a fleet of consumer PCs over consecutive 30-day
windows.  A machine that has *not* failed before draws against the
first-failure rate; a machine that already suffered a failure of some kind
draws against the (two orders of magnitude higher) recurrence rate -- the
paper's point that "a system that has failed once is very likely to fail
again".  The bench T1 re-derives the table's numbers empirically from this
simulator and classifies each failure as detected vs silent, driving the
detection machinery (MCEs are always detected; DRAM flips and disk
corruption are silent unless checksums / memtests / AN codes catch them).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["FailureRates", "TABLE1_RATES", "FleetSimulator", "FleetReport",
           "FailureKind"]


class FailureKind:
    CPU_MCE = "cpu_mce"
    DRAM_BIT_FLIP = "dram_bit_flip"
    DISK_FAILURE = "disk_failure"

    ALL = (CPU_MCE, DRAM_BIT_FLIP, DISK_FAILURE)

    #: Which failures the hardware reports on its own (paper §3: MCEs stop
    #: the machine; DRAM flips and many disk errors are silent).
    SELF_DETECTING = {CPU_MCE: True, DRAM_BIT_FLIP: False, DISK_FAILURE: False}


class FailureRates:
    """Per-kind 30-day probabilities: first failure and recurrence."""

    def __init__(self, first: Dict[str, float], recurrence: Dict[str, float]) -> None:
        self.first = first
        self.recurrence = recurrence


#: The paper's Table 1, expressed as probabilities.
TABLE1_RATES = FailureRates(
    first={
        FailureKind.CPU_MCE: 1 / 190,
        FailureKind.DRAM_BIT_FLIP: 1 / 1700,
        FailureKind.DISK_FAILURE: 1 / 270,
    },
    recurrence={
        FailureKind.CPU_MCE: 1 / 2.9,
        FailureKind.DRAM_BIT_FLIP: 1 / 12,
        FailureKind.DISK_FAILURE: 1 / 3.5,
    },
)


class FleetReport:
    """Aggregated outcome of a fleet simulation."""

    def __init__(self) -> None:
        self.machines = 0
        self.windows = 0
        #: Per kind: machines whose FIRST 30-day window had that failure.
        self.first_window_failures: Dict[str, int] = {k: 0 for k in FailureKind.ALL}
        #: Per kind: recurrences among machines that had failed before.
        self.recurrence_opportunities: Dict[str, int] = {k: 0 for k in FailureKind.ALL}
        self.recurrences: Dict[str, int] = {k: 0 for k in FailureKind.ALL}
        self.silent_failures = 0
        self.detected_failures = 0

    def first_failure_probability(self, kind: str) -> float:
        if self.machines == 0:
            return 0.0
        return self.first_window_failures[kind] / self.machines

    def recurrence_probability(self, kind: str) -> float:
        opportunities = self.recurrence_opportunities[kind]
        if opportunities == 0:
            return 0.0
        return self.recurrences[kind] / opportunities

    def as_table(self) -> List[Tuple[str, float, float]]:
        """Rows shaped like the paper's Table 1 (kind, Pr1st, Pr2nd)."""
        labels = {
            FailureKind.CPU_MCE: "CPU (MCE)",
            FailureKind.DRAM_BIT_FLIP: "DRAM bit flip",
            FailureKind.DISK_FAILURE: "Disk failure",
        }
        return [
            (labels[kind],
             self.first_failure_probability(kind),
             self.recurrence_probability(kind))
            for kind in FailureKind.ALL
        ]


class FleetSimulator:
    """Monte-Carlo over a fleet of consumer machines in 30-day windows."""

    def __init__(self, rates: FailureRates = TABLE1_RATES, seed: int = 0) -> None:
        self.rates = rates
        self._rng = np.random.default_rng(seed)

    def run(self, machines: int, windows: int = 2) -> FleetReport:
        """Simulate ``machines`` machines for ``windows`` 30-day windows.

        Vectorized: each window draws one uniform per (machine, kind) and
        compares against that machine's current rate (first vs recurrence).
        """
        report = FleetReport()
        report.machines = machines
        report.windows = windows
        # has_failed[kind_index, machine]: any prior failure of that kind.
        ever_failed = np.zeros((len(FailureKind.ALL), machines), dtype=np.bool_)
        for window in range(windows):
            for kind_index, kind in enumerate(FailureKind.ALL):
                first_rate = self.rates.first[kind]
                again_rate = self.rates.recurrence[kind]
                prior = ever_failed[kind_index]
                rates = np.where(prior, again_rate, first_rate)
                draws = self._rng.random(machines)
                failed = draws < rates
                if window == 0:
                    report.first_window_failures[kind] += int(
                        failed[~prior].sum())
                else:
                    report.recurrence_opportunities[kind] += int(prior.sum())
                    report.recurrences[kind] += int((failed & prior).sum())
                fail_count = int(failed.sum())
                if FailureKind.SELF_DETECTING[kind]:
                    report.detected_failures += fail_count
                else:
                    report.silent_failures += fail_count
                ever_failed[kind_index] |= failed
        return report
