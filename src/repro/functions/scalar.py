"""Scalar function registry with vectorized NumPy implementations.

Each function consumes whole :class:`~repro.types.vector.Vector` arguments
and produces a vector -- per the paper's vectorized execution model, the
interpretation overhead of a function call is paid once per 2048 values,
not once per value.

The registry maps a lower-case name to a :class:`ScalarFunction` that knows
how to (a) resolve a return type from argument types at bind time, and
(b) execute over vectors at run time.  NULL handling defaults to SQL
semantics: any NULL argument yields NULL, except for functions that define
their own behaviour (``coalesce``, ``concat``, ...).
"""

from __future__ import annotations

import math
import re
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..errors import BinderError, ConversionError
from ..types import (
    BIGINT,
    BOOLEAN,
    DATE,
    DOUBLE,
    INTEGER,
    LogicalType,
    LogicalTypeId,
    SQLNULL,
    TIMESTAMP,
    VARCHAR,
    Vector,
    cast_vector,
    common_type,
)

__all__ = ["ScalarFunction", "SCALAR_FUNCTIONS", "lookup_scalar_function",
           "like_to_regex"]


def like_to_regex(pattern: str, escape: Optional[str] = None) -> str:
    """Translate a SQL LIKE pattern into a Python regex source string.

    ``%`` matches any sequence, ``_`` any single character.  With an ESCAPE
    character, ``<escape>%`` / ``<escape>_`` / ``<escape><escape>`` match
    the literal character instead.  The standard requires the escape to be a
    single character and forbids a pattern ending in a dangling escape.
    """
    from ..errors import InvalidInputError

    if escape is not None and len(escape) != 1:
        raise InvalidInputError(
            f"LIKE ESCAPE must be a single character, got {escape!r}")
    parts = []
    index = 0
    while index < len(pattern):
        char = pattern[index]
        if escape is not None and char == escape:
            if index + 1 >= len(pattern):
                raise InvalidInputError(
                    f"LIKE pattern {pattern!r} ends with escape character")
            parts.append(re.escape(pattern[index + 1]))
            index += 2
            continue
        if char == "%":
            parts.append(".*")
        elif char == "_":
            parts.append(".")
        else:
            parts.append(re.escape(char))
        index += 1
    return "".join(parts) + r"\Z"


class ScalarFunction:
    """One scalar function: bind-time typing plus a vectorized kernel."""

    def __init__(self, name: str, bind: Callable, execute: Callable) -> None:
        self.name = name
        #: bind(arg_types) -> (return_type, coerced_arg_types)
        self.bind = bind
        #: execute(vectors, count) -> Vector
        self.execute = execute

    def __repr__(self) -> str:
        return f"ScalarFunction({self.name})"


def _require_args(name: str, arg_types: Sequence[LogicalType], low: int,
                  high: Optional[int] = None) -> None:
    high = low if high is None else high
    if not low <= len(arg_types) <= high:
        expected = str(low) if low == high else f"{low}-{high}"
        raise BinderError(f"{name}() expects {expected} argument(s), "
                          f"got {len(arg_types)}")


def _propagate_validity(vectors: Sequence[Vector]) -> np.ndarray:
    validity = vectors[0].validity.copy()
    for vector in vectors[1:]:
        validity &= vector.validity
    return validity


# -- numeric functions -------------------------------------------------------

def _bind_numeric_unary(name: str, result: Optional[LogicalType] = None):
    def bind(arg_types):
        _require_args(name, arg_types, 1)
        arg = arg_types[0]
        if arg.id is LogicalTypeId.SQLNULL:
            arg = DOUBLE
        if not arg.is_numeric():
            raise BinderError(f"{name}() requires a numeric argument, got {arg}")
        return (result or arg), [arg]
    return bind


def _numeric_unary_kernel(operation: Callable, result_dtype=None):
    def execute(vectors, count):
        source = vectors[0]
        with np.errstate(all="ignore"):
            data = operation(source.data)
        if result_dtype is not None:
            data = data.astype(result_dtype.numpy_dtype)
        out_type = result_dtype or source.dtype
        validity = source.validity.copy()
        if data.dtype.kind == "f":
            validity &= np.isfinite(np.where(validity, data, 0.0))
            data = np.where(validity, data, 0.0).astype(data.dtype)
        return Vector(out_type, data, validity)
    return execute


def _bind_double_unary(name: str):
    def bind(arg_types):
        _require_args(name, arg_types, 1)
        arg = arg_types[0]
        if not (arg.is_numeric() or arg.id is LogicalTypeId.SQLNULL):
            raise BinderError(f"{name}() requires a numeric argument, got {arg}")
        return DOUBLE, [DOUBLE]
    return bind


def _round_bind(arg_types):
    _require_args("round", arg_types, 1, 2)
    coerced = [DOUBLE] + ([INTEGER] if len(arg_types) == 2 else [])
    return DOUBLE, coerced


def _round_execute(vectors, count):
    """round(x[, digits]) with per-row digits and full NULL propagation.

    A NULL in either argument yields NULL; masked-out lanes never reach
    ``np.round`` (garbage independence).
    """
    source = vectors[0]
    validity = _propagate_validity(vectors)
    data = np.zeros(count, dtype=np.float64)
    if len(vectors) == 2:
        digits_vector = vectors[1]
        # Digits vary per row; one bulk np.round per distinct digit count
        # (almost always exactly one -- the literal-digits case).
        safe_digits = np.where(digits_vector.validity,
                               digits_vector.data, 0).astype(np.int64)
        for digits in np.unique(safe_digits[validity]):
            lanes = validity & (safe_digits == digits)
            data[lanes] = np.round(source.data[lanes], int(digits))
    else:
        data[validity] = np.round(source.data[validity])
    return Vector(DOUBLE, data, validity)


# -- string functions --------------------------------------------------------

def _bind_string_unary(name: str, result: LogicalType = VARCHAR):
    def bind(arg_types):
        _require_args(name, arg_types, 1)
        return result, [VARCHAR]
    return bind


def _string_map_kernel(mapper: Callable, result: LogicalType = VARCHAR):
    """Apply a per-string Python function to valid entries only.

    ``np.frompyfunc`` lifts the mapper to an object-array ufunc, so the
    kernel is a single masked bulk call rather than a Python-level loop.
    """
    ufunc = np.frompyfunc(mapper, 1, 1)
    def execute(vectors, count):
        source = vectors[0]
        validity = source.validity.copy()
        if result.id is LogicalTypeId.VARCHAR:
            data = np.empty(count, dtype=object)
            data[validity] = ufunc(source.data[validity])
        else:
            data = np.zeros(count, dtype=result.numpy_dtype)
            data[validity] = ufunc(source.data[validity]).astype(result.numpy_dtype)
        return Vector(result, data, validity)
    return execute


def _substr_bind(arg_types):
    _require_args("substr", arg_types, 2, 3)
    coerced = [VARCHAR, BIGINT] + ([BIGINT] if len(arg_types) == 3 else [])
    return VARCHAR, coerced


def _substr_execute(vectors, count):
    """SQL substr: 1-based start, optional length."""
    text, start = vectors[0], vectors[1]
    length = vectors[2] if len(vectors) == 3 else None
    validity = _propagate_validity(vectors)
    data = np.empty(count, dtype=object)
    # Per-row slice bounds (clamped, optional length) have no NumPy bulk
    # primitive for object arrays.
    for index in range(count):  # quacklint: disable=QLV001
        if not validity[index]:
            continue
        value = text.data[index]
        begin = int(start.data[index])
        # SQL semantics: position 1 is the first character; 0/negative clamp.
        zero_based = max(begin - 1, 0)
        if length is not None:
            data[index] = value[zero_based:zero_based + max(int(length.data[index]), 0)]
        else:
            data[index] = value[zero_based:]
    return Vector(VARCHAR, data, validity)


_replace_ufunc = np.frompyfunc(str.replace, 3, 1)


def _replace_execute(vectors, count):
    validity = _propagate_validity(vectors)
    data = np.empty(count, dtype=object)
    data[validity] = _replace_ufunc(vectors[0].data[validity],
                                    vectors[1].data[validity],
                                    vectors[2].data[validity])
    return Vector(VARCHAR, data, validity)


def _concat_bind(arg_types):
    if not arg_types:
        raise BinderError("concat() expects at least one argument")
    return VARCHAR, [VARCHAR] * len(arg_types)


def _concat_execute(vectors, count):
    """SQL concat: NULL arguments are treated as empty strings.

    One masked object-array "+" per argument replaces the per-row join:
    the loop runs once per argument, not once per value.
    """
    data = np.full(count, "", dtype=object)
    for vector in vectors:
        valid = vector.validity
        data[valid] = data[valid] + vector.data[valid]
    return Vector(VARCHAR, data, np.ones(count, dtype=np.bool_))


_contains_ufunc = np.frompyfunc(lambda haystack, needle: needle in haystack, 2, 1)
_starts_with_ufunc = np.frompyfunc(str.startswith, 2, 1)


def _contains_execute(vectors, count):
    validity = _propagate_validity(vectors)
    data = np.zeros(count, dtype=np.bool_)
    data[validity] = _contains_ufunc(
        vectors[0].data[validity], vectors[1].data[validity]).astype(np.bool_)
    return Vector(BOOLEAN, data, validity)


def _starts_with_execute(vectors, count):
    validity = _propagate_validity(vectors)
    data = np.zeros(count, dtype=np.bool_)
    data[validity] = _starts_with_ufunc(
        vectors[0].data[validity], vectors[1].data[validity]).astype(np.bool_)
    return Vector(BOOLEAN, data, validity)


# -- conditional functions ------------------------------------------------------

def _coalesce_bind(arg_types):
    if not arg_types:
        raise BinderError("coalesce() expects at least one argument")
    unified = SQLNULL
    for arg in arg_types:
        result = common_type(unified, arg)
        if result is None:
            raise BinderError(
                f"coalesce() arguments have incompatible types {unified} and {arg}"
            )
        unified = result
    if unified.id is LogicalTypeId.SQLNULL:
        unified = INTEGER
    return unified, [unified] * len(arg_types)


def _coalesce_execute(vectors, count):
    result = vectors[0].copy()
    for vector in vectors[1:]:
        missing = ~result.validity
        if not missing.any():
            break
        take = missing & vector.validity
        result.data[take] = vector.data[take]
        result.validity[take] = True
    return result


def _nullif_bind(arg_types):
    _require_args("nullif", arg_types, 2)
    unified = common_type(arg_types[0], arg_types[1])
    if unified is None:
        raise BinderError("nullif() arguments have incompatible types")
    return unified, [unified, unified]


def _nullif_execute(vectors, count):
    result = vectors[0].copy()
    both_valid = vectors[0].validity & vectors[1].validity
    equal = np.zeros(count, dtype=np.bool_)
    # "==" is elementwise on object (string) arrays too, so one masked
    # comparison covers every type.
    equal[both_valid] = vectors[0].data[both_valid] == vectors[1].data[both_valid]
    result.validity[equal] = False
    return result


def _greatest_least_bind(name):
    def bind(arg_types):
        if len(arg_types) < 2:
            raise BinderError(f"{name}() expects at least two arguments")
        unified = arg_types[0]
        for arg in arg_types[1:]:
            result = common_type(unified, arg)
            if result is None:
                raise BinderError(f"{name}() arguments have incompatible types")
            unified = result
        return unified, [unified] * len(arg_types)
    return bind


def _greatest_least_execute(pick):
    def execute(vectors, count):
        validity = _propagate_validity(vectors)
        if vectors[0].dtype.id is LogicalTypeId.VARCHAR:
            # NULL slots of an object vector hold None, which str comparison
            # rejects; blank them out (they are masked by validity anyway)
            # so the stacked reduction below works for strings too.
            columns = [np.where(vector.validity, vector.data, "")
                       for vector in vectors]
        else:
            columns = [vector.data for vector in vectors]
        data = pick(np.stack(columns), axis=0)
        return Vector(vectors[0].dtype, data, validity)
    return execute


# -- temporal functions -----------------------------------------------------------

def _bind_date_part(name):
    def bind(arg_types):
        _require_args(name, arg_types, 1)
        arg = arg_types[0]
        if arg.id is LogicalTypeId.VARCHAR or arg.id is LogicalTypeId.SQLNULL:
            arg = DATE
        if not arg.is_temporal():
            raise BinderError(f"{name}() requires a DATE or TIMESTAMP, got {arg}")
        return INTEGER, [arg]
    return bind


def _date_part_execute(part: str):
    def execute(vectors, count):
        source = vectors[0]
        validity = source.validity.copy()
        if source.dtype.id is LogicalTypeId.TIMESTAMP:
            days = np.floor_divide(source.data, 86_400_000_000).astype(np.int64)
        else:
            days = source.data.astype(np.int64, copy=False)
        # Civil-date decomposition (Howard Hinnant's algorithm), vectorized.
        z = days + 719_468
        era = np.floor_divide(z, 146_097)
        doe = z - era * 146_097
        yoe = np.floor_divide(doe - np.floor_divide(doe, 1460)
                              + np.floor_divide(doe, 36_524)
                              - np.floor_divide(doe, 146_096), 365)
        year = yoe + era * 400
        doy = doe - (365 * yoe + np.floor_divide(yoe, 4) - np.floor_divide(yoe, 100))
        mp = np.floor_divide(5 * doy + 2, 153)
        day = doy - np.floor_divide(153 * mp + 2, 5) + 1
        month = np.where(mp < 10, mp + 3, mp - 9)
        year = np.where(month <= 2, year + 1, year)
        values = {"year": year, "month": month, "day": day}[part]
        return Vector(INTEGER, values.astype(np.int32), validity)
    return execute


# -- registry ----------------------------------------------------------------------

SCALAR_FUNCTIONS = {}


def _register(name: str, bind: Callable, execute: Callable) -> None:
    SCALAR_FUNCTIONS[name] = ScalarFunction(name, bind, execute)


_register("abs", _bind_numeric_unary("abs"), _numeric_unary_kernel(np.abs))
_register("sign", _bind_numeric_unary("sign", INTEGER),
          _numeric_unary_kernel(lambda data: np.sign(data), INTEGER))
_register("floor", _bind_double_unary("floor"), _numeric_unary_kernel(np.floor))
_register("ceil", _bind_double_unary("ceil"), _numeric_unary_kernel(np.ceil))
_register("ceiling", _bind_double_unary("ceiling"), _numeric_unary_kernel(np.ceil))
_register("sqrt", _bind_double_unary("sqrt"), _numeric_unary_kernel(np.sqrt))
_register("ln", _bind_double_unary("ln"), _numeric_unary_kernel(np.log))
_register("log", _bind_double_unary("log"), _numeric_unary_kernel(np.log10))
_register("log2", _bind_double_unary("log2"), _numeric_unary_kernel(np.log2))
_register("exp", _bind_double_unary("exp"), _numeric_unary_kernel(np.exp))
_register("round", _round_bind, _round_execute)


def _pow_bind(arg_types):
    _require_args("pow", arg_types, 2)
    return DOUBLE, [DOUBLE, DOUBLE]


def _pow_execute(vectors, count):
    validity = _propagate_validity(vectors)
    with np.errstate(all="ignore"):
        data = np.power(vectors[0].data, vectors[1].data)
    validity &= np.isfinite(np.where(validity, data, 0.0))
    return Vector(DOUBLE, np.where(validity, data, 0.0), validity)


_register("pow", _pow_bind, _pow_execute)
_register("power", _pow_bind, _pow_execute)

_register("length", _bind_string_unary("length", INTEGER),
          _string_map_kernel(len, INTEGER))
_register("lower", _bind_string_unary("lower"), _string_map_kernel(str.lower))
_register("upper", _bind_string_unary("upper"), _string_map_kernel(str.upper))
_register("trim", _bind_string_unary("trim"), _string_map_kernel(str.strip))
_register("ltrim", _bind_string_unary("ltrim"), _string_map_kernel(str.lstrip))
_register("rtrim", _bind_string_unary("rtrim"), _string_map_kernel(str.rstrip))
_register("reverse", _bind_string_unary("reverse"),
          _string_map_kernel(lambda value: value[::-1]))
_register("substr", _substr_bind, _substr_execute)
_register("substring", _substr_bind, _substr_execute)


def _replace_bind(arg_types):
    _require_args("replace", arg_types, 3)
    return VARCHAR, [VARCHAR, VARCHAR, VARCHAR]


_register("replace", _replace_bind, _replace_execute)
_register("concat", _concat_bind, _concat_execute)


def _two_string_bind(name):
    def bind(arg_types):
        _require_args(name, arg_types, 2)
        return BOOLEAN, [VARCHAR, VARCHAR]
    return bind


_register("contains", _two_string_bind("contains"), _contains_execute)
_register("starts_with", _two_string_bind("starts_with"), _starts_with_execute)

_register("coalesce", _coalesce_bind, _coalesce_execute)
_register("ifnull", _coalesce_bind, _coalesce_execute)
_register("nullif", _nullif_bind, _nullif_execute)
_register("greatest", _greatest_least_bind("greatest"),
          _greatest_least_execute(np.max))
_register("least", _greatest_least_bind("least"), _greatest_least_execute(np.min))

_register("year", _bind_date_part("year"), _date_part_execute("year"))
_register("month", _bind_date_part("month"), _date_part_execute("month"))
_register("day", _bind_date_part("day"), _date_part_execute("day"))


def lookup_scalar_function(name: str) -> Optional[ScalarFunction]:
    return SCALAR_FUNCTIONS.get(name.lower())
