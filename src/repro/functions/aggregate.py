"""Aggregate function signatures and grouped vectorized implementations.

Binding resolves an aggregate's return type; execution happens inside the
hash-aggregate operator, which factorizes group keys into dense group ids
and then calls :func:`compute_aggregate` -- a segmented NumPy reduction over
all input rows at once (``np.bincount``-style), never a per-row loop.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import BinderError, InternalError
from ..types import (
    BIGINT,
    DOUBLE,
    LogicalType,
    LogicalTypeId,
    SQLNULL,
    VARCHAR,
    Vector,
)

__all__ = ["bind_aggregate", "compute_aggregate", "AGGREGATE_NAMES"]

AGGREGATE_NAMES = frozenset([
    "count", "sum", "avg", "min", "max", "first",
    "stddev", "stddev_samp", "var_samp", "variance",
])


def bind_aggregate(name: str, arg_types: Sequence[LogicalType],
                   star_argument: bool) -> Tuple[LogicalType, List[LogicalType]]:
    """Resolve the result type and coerced argument types of an aggregate."""
    name = name.lower()
    if name == "count":
        if star_argument:
            return BIGINT, []
        if len(arg_types) != 1:
            raise BinderError("count() expects one argument or *")
        return BIGINT, [arg_types[0]]
    if star_argument:
        raise BinderError(f"{name}(*) is not defined")
    if len(arg_types) != 1:
        raise BinderError(f"{name}() expects exactly one argument")
    arg = arg_types[0]
    if name in ("sum", "avg", "stddev", "stddev_samp", "var_samp", "variance"):
        if arg.id is LogicalTypeId.SQLNULL:
            arg = DOUBLE
        if not arg.is_numeric():
            raise BinderError(f"{name}() requires a numeric argument, got {arg}")
        if name == "sum":
            result = BIGINT if arg.is_integer() else DOUBLE
            return result, [arg]
        return DOUBLE, [arg]
    if name in ("min", "max", "first"):
        return arg, [arg]
    raise BinderError(f"Unknown aggregate function {name!r}")


def _group_counts(group_ids: np.ndarray, group_count: int,
                  mask: Optional[np.ndarray] = None) -> np.ndarray:
    if mask is not None:
        group_ids = group_ids[mask]
    return np.bincount(group_ids, minlength=group_count)


def _segmented_extreme(data: np.ndarray, validity: np.ndarray,
                       group_ids: np.ndarray, group_count: int,
                       pick_max: bool, dtype: LogicalType) -> Vector:
    """Per-group min/max via sort + reduceat-free boundary selection."""
    valid = np.flatnonzero(validity)
    out_validity = np.zeros(group_count, dtype=np.bool_)
    if dtype.id is LogicalTypeId.VARCHAR:
        out_data = np.empty(group_count, dtype=object)
    else:
        out_data = np.zeros(group_count, dtype=dtype.numpy_dtype)
    if valid.size == 0:
        return Vector(dtype, out_data, out_validity)
    groups = group_ids[valid]
    values = data[valid]
    if dtype.id is LogicalTypeId.VARCHAR:
        # Object arrays cannot use lexsort on values; sort per group boundary.
        order = np.argsort(groups, kind="stable")
        sorted_groups = groups[order]
        sorted_values = values[order]
        boundaries = np.flatnonzero(np.diff(sorted_groups)) + 1
        starts = np.concatenate([[0], boundaries])
        ends = np.concatenate([boundaries, [len(sorted_groups)]])
        chooser = max if pick_max else min
        for start, end in zip(starts, ends):
            group = int(sorted_groups[start])
            out_data[group] = chooser(sorted_values[start:end])
            out_validity[group] = True
        return Vector(dtype, out_data, out_validity)
    # Numeric path: sort by (group, value); group boundaries give extremes.
    order = np.lexsort((values, groups))
    sorted_groups = groups[order]
    sorted_values = values[order]
    boundaries = np.flatnonzero(np.diff(sorted_groups)) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [len(sorted_groups)]]) - 1
    positions = ends if pick_max else starts
    present = sorted_groups[starts]
    out_data[present] = sorted_values[positions]
    out_validity[present] = True
    return Vector(dtype, out_data, out_validity)


def _deduplicate(values: np.ndarray, validity: np.ndarray, group_ids: np.ndarray,
                 dtype: LogicalType):
    """Keep one row per (group, value) pair -- implements DISTINCT aggregates."""
    valid = np.flatnonzero(validity)
    groups = group_ids[valid]
    data = values[valid]
    if dtype.id is LogicalTypeId.VARCHAR:
        seen = set()
        keep = []
        for position, (group, value) in enumerate(zip(groups, data)):
            key = (int(group), value)
            if key not in seen:
                seen.add(key)
                keep.append(position)
        keep = np.asarray(keep, dtype=np.int64)
    else:
        pairs = np.stack([groups.astype(np.int64), data.astype(np.float64)
                          if data.dtype.kind == "f" else data.astype(np.int64)])
        _, keep = np.unique(pairs, axis=1, return_index=True)
    new_validity = np.ones(len(keep), dtype=np.bool_)
    return data[keep], new_validity, groups[keep]


def compute_aggregate(name: str, distinct: bool, argument: Optional[Vector],
                      group_ids: np.ndarray, group_count: int,
                      return_type: LogicalType) -> Vector:
    """Evaluate one aggregate for all groups at once.

    ``argument`` is None only for ``count(*)``.  ``group_ids`` assigns each
    input row to a dense group id in ``[0, group_count)``.
    """
    name = name.lower()
    if name == "count" and argument is None:
        counts = _group_counts(group_ids, group_count)
        return Vector(BIGINT, counts.astype(np.int64),
                      np.ones(group_count, dtype=np.bool_))
    if argument is None:
        raise InternalError(f"aggregate {name} requires an argument")

    data = argument.data
    validity = argument.validity
    if distinct:
        data, validity, group_ids = _deduplicate(data, validity, group_ids,
                                                 argument.dtype)
        full_validity = validity
    else:
        full_validity = validity

    if name == "count":
        counts = _group_counts(group_ids, group_count, full_validity)
        return Vector(BIGINT, counts.astype(np.int64),
                      np.ones(group_count, dtype=np.bool_))

    if name == "sum":
        weights = np.where(full_validity, data, 0).astype(np.float64)
        sums = np.bincount(group_ids, weights=weights, minlength=group_count)
        counts = _group_counts(group_ids, group_count, full_validity)
        out_validity = counts > 0
        if return_type.is_integer():
            out = np.zeros(group_count, dtype=np.int64)
            out[out_validity] = np.rint(sums[out_validity]).astype(np.int64)
            return Vector(return_type, out, out_validity)
        return Vector(return_type, sums, out_validity)

    if name == "avg":
        weights = np.where(full_validity, data, 0).astype(np.float64)
        sums = np.bincount(group_ids, weights=weights, minlength=group_count)
        counts = _group_counts(group_ids, group_count, full_validity)
        out_validity = counts > 0
        with np.errstate(all="ignore"):
            means = sums / np.maximum(counts, 1)
        return Vector(DOUBLE, means, out_validity)

    if name in ("stddev", "stddev_samp", "var_samp", "variance"):
        weights = np.where(full_validity, data, 0).astype(np.float64)
        counts = _group_counts(group_ids, group_count, full_validity).astype(np.float64)
        sums = np.bincount(group_ids, weights=weights, minlength=group_count)
        squares = np.bincount(group_ids, weights=weights * weights,
                              minlength=group_count)
        out_validity = counts > 1
        with np.errstate(all="ignore"):
            variance = (squares - sums * sums / np.maximum(counts, 1)) \
                / np.maximum(counts - 1, 1)
        variance = np.maximum(variance, 0.0)
        if name in ("stddev", "stddev_samp"):
            variance = np.sqrt(variance)
        return Vector(DOUBLE, variance, out_validity)

    if name in ("min", "max"):
        return _segmented_extreme(data, full_validity, group_ids, group_count,
                                  name == "max", argument.dtype)

    if name == "first":
        out_validity = np.zeros(group_count, dtype=np.bool_)
        if argument.dtype.id is LogicalTypeId.VARCHAR:
            out_data = np.empty(group_count, dtype=object)
        else:
            out_data = np.zeros(group_count, dtype=argument.dtype.numpy_dtype)
        valid = np.flatnonzero(full_validity)
        if valid.size:
            groups = group_ids[valid]
            # np.unique returns the first occurrence index per group.
            present, first_index = np.unique(groups, return_index=True)
            out_data[present] = data[valid][first_index]
            out_validity[present] = True
        return Vector(argument.dtype, out_data, out_validity)

    raise InternalError(f"Unhandled aggregate {name}")
