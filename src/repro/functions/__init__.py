"""Scalar and aggregate function registries."""

from .aggregate import AGGREGATE_NAMES, bind_aggregate, compute_aggregate
from .scalar import SCALAR_FUNCTIONS, ScalarFunction, lookup_scalar_function

__all__ = [
    "AGGREGATE_NAMES",
    "bind_aggregate",
    "compute_aggregate",
    "SCALAR_FUNCTIONS",
    "ScalarFunction",
    "lookup_scalar_function",
]
