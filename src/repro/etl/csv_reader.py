"""CSV sniffing and chunked reading.

Paper §2: *"the database can directly scan existing files (e.g. CSV),
reshape the result and then append it to a persistent table"* -- ETL belongs
inside the database.  The sniffer auto-detects delimiter, header presence,
and per-column types from a sample; the reader streams the file as
:class:`~repro.types.chunk.DataChunk`\\ s of :data:`VECTOR_SIZE` rows so
arbitrarily large files never need to fit in memory.
"""

from __future__ import annotations

import csv
import io
from typing import Iterator, List, Optional, Sequence

import numpy as np

from ..errors import InvalidInputError
from ..types import (
    BIGINT,
    BOOLEAN,
    DATE,
    DOUBLE,
    LogicalType,
    TIMESTAMP,
    VARCHAR,
    VECTOR_SIZE,
    DataChunk,
    Vector,
    cast_vector,
)

__all__ = ["SniffResult", "sniff_csv", "read_csv_chunks"]

_SAMPLE_LINES = 128
_CANDIDATE_DELIMITERS = [",", ";", "\t", "|"]
_BOOLEAN_TOKENS = {"true", "false", "t", "f"}
_NULL_TOKENS = {"", "null", "na", "n/a", "none"}


class SniffResult:
    """Outcome of CSV sniffing: dialect, header, column names and types."""

    def __init__(self, delimiter: str, has_header: bool, names: List[str],
                 types: List[LogicalType]) -> None:
        self.delimiter = delimiter
        self.has_header = has_header
        self.names = names
        self.types = types

    def options(self) -> dict:
        return {"delimiter": self.delimiter, "header": self.has_header}

    def __repr__(self) -> str:
        columns = ", ".join(f"{n}:{t}" for n, t in zip(self.names, self.types))
        return f"SniffResult(delimiter={self.delimiter!r}, header={self.has_header}, [{columns}])"


def _is_null_token(token: str) -> bool:
    return token.strip().lower() in _NULL_TOKENS


def _token_type(token: str) -> LogicalType:
    """The narrowest type a single CSV token can be parsed as."""
    text = token.strip()
    lowered = text.lower()
    if lowered in _BOOLEAN_TOKENS:
        return BOOLEAN
    try:
        int(text)
        return BIGINT
    except ValueError:
        pass
    try:
        float(text)
        return DOUBLE
    except ValueError:
        pass
    import datetime

    try:
        datetime.date.fromisoformat(text)
        return DATE
    except ValueError:
        pass
    try:
        datetime.datetime.fromisoformat(text)
        return TIMESTAMP
    except ValueError:
        pass
    return VARCHAR


_TYPE_ORDER = [BOOLEAN, BIGINT, DOUBLE, DATE, TIMESTAMP, VARCHAR]


def _widen(current: Optional[LogicalType], candidate: LogicalType) -> LogicalType:
    if current is None:
        return candidate
    if current == candidate:
        return current
    pair = {current, candidate}
    if pair == {BIGINT, DOUBLE}:
        return DOUBLE
    if pair == {DATE, TIMESTAMP}:
        return TIMESTAMP
    return VARCHAR


def sniff_csv(path: str, delimiter: Optional[str] = None,
              header: Optional[bool] = None) -> SniffResult:
    """Detect dialect, header, and column types from a file sample."""
    try:
        with open(path, "r", newline="", encoding="utf-8") as handle:
            sample_lines = []
            for _ in range(_SAMPLE_LINES):
                line = handle.readline()
                if not line:
                    break
                sample_lines.append(line)
    except OSError as exc:
        raise InvalidInputError(f"Cannot open CSV file {path!r}: {exc}") from None
    if not sample_lines:
        # A zero-byte file is a valid (if vacuous) CSV: no columns, no rows.
        # COPY FROM treats it as loading zero rows, matching the header-only
        # case; consumers that do need a schema (read_csv) reject it.
        return SniffResult(delimiter or ",", bool(header), [], [])
    sample = "".join(sample_lines)

    if delimiter is None:
        # Pick the delimiter that yields the most consistent column count.
        best = (",", -1, 1)
        for candidate in _CANDIDATE_DELIMITERS:
            rows = list(csv.reader(io.StringIO(sample), delimiter=candidate))
            if not rows:
                continue
            counts = [len(row) for row in rows if row]
            if not counts:
                continue
            most_common = max(set(counts), key=counts.count)
            consistency = counts.count(most_common)
            if most_common > 1 and (consistency, most_common) > (best[1], best[2]):
                best = (candidate, consistency, most_common)
        delimiter = best[0]

    rows = [row for row in csv.reader(io.StringIO(sample), delimiter=delimiter)
            if row]
    if not rows:
        # Only blank lines: same treatment as a zero-byte file.
        return SniffResult(delimiter, bool(header), [], [])
    width = max(len(row) for row in rows)

    first_row_types = [_token_type(token) if not _is_null_token(token) else None
                       for token in rows[0]]
    if header is None:
        # Heuristic: a header row is all-VARCHAR while later rows are not.
        data_rows = rows[1:]
        first_all_text = all(dtype == VARCHAR for dtype in first_row_types
                             if dtype is not None) and any(
            dtype is not None for dtype in first_row_types)
        later_has_non_text = any(
            not _is_null_token(token) and _token_type(token) != VARCHAR
            for row in data_rows for token in row
        )
        header = bool(first_all_text and (later_has_non_text or not data_rows))

    data_rows = rows[1:] if header else rows
    types: List[Optional[LogicalType]] = [None] * width
    for row in data_rows:
        for index in range(width):
            token = row[index] if index < len(row) else ""
            if _is_null_token(token):
                continue
            types[index] = _widen(types[index], _token_type(token))
    resolved = [dtype if dtype is not None else VARCHAR for dtype in types]

    if header:
        names = [token.strip() or f"column{i}" for i, token in enumerate(rows[0])]
        while len(names) < width:
            names.append(f"column{len(names)}")
    else:
        names = [f"column{i}" for i in range(width)]
    return SniffResult(delimiter, header, names, resolved)


def _rows_to_chunk(rows: List[List[str]], types: Sequence[LogicalType]) -> DataChunk:
    """Parse raw string rows into a typed chunk (NULL tokens -> NULL)."""
    width = len(types)
    count = len(rows)
    raw_columns = []
    for index in range(width):
        data = np.empty(count, dtype=object)
        validity = np.ones(count, dtype=np.bool_)
        for row_index, row in enumerate(rows):
            token = row[index] if index < len(row) else ""
            if _is_null_token(token):
                validity[row_index] = False
                data[row_index] = None
            else:
                data[row_index] = token
        raw_columns.append(Vector(VARCHAR, data, validity))
    return DataChunk([
        cast_vector(column, dtype) for column, dtype in zip(raw_columns, types)
    ])


def read_csv_chunks(path: str, types: Sequence[LogicalType],
                    delimiter: str = ",", header: bool = True,
                    chunk_size: int = 8 * VECTOR_SIZE) -> Iterator[DataChunk]:
    """Stream a CSV file as typed chunks of at most ``chunk_size`` rows."""
    try:
        handle = open(path, "r", newline="", encoding="utf-8")
    except OSError as exc:
        raise InvalidInputError(f"Cannot open CSV file {path!r}: {exc}") from None
    with handle:
        reader = csv.reader(handle, delimiter=delimiter)
        if header:
            next(reader, None)
        batch: List[List[str]] = []
        for row in reader:
            if not row:
                continue
            batch.append(row)
            if len(batch) >= chunk_size:
                yield _rows_to_chunk(batch, types)
                batch = []
        if batch:
            yield _rows_to_chunk(batch, types)
