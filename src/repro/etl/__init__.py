"""ETL: CSV sniffing/reading/writing and bulk-load helpers (paper §2)."""

from .csv_reader import SniffResult, read_csv_chunks, sniff_csv
from .csv_writer import write_csv

__all__ = ["SniffResult", "sniff_csv", "read_csv_chunks", "write_csv"]
