"""CSV export (``COPY ... TO 'file.csv'``)."""

from __future__ import annotations

import csv
from typing import Iterable, List, Sequence

from ..errors import InvalidInputError
from ..types import DataChunk, LogicalType, LogicalTypeId, VARCHAR, cast_vector

__all__ = ["write_csv"]


def write_csv(path: str, chunks: Iterable[DataChunk], names: Sequence[str],
              delimiter: str = ",", header: bool = True,
              null_string: str = "") -> int:
    """Write chunks to a CSV file; returns the number of rows written.

    Values are rendered through the engine's VARCHAR cast so that output
    text round-trips through the CSV reader (ISO dates, ``true``/``false``
    booleans, ``repr`` floats).
    """
    rows_written = 0
    try:
        handle = open(path, "w", newline="", encoding="utf-8")
    except OSError as exc:
        raise InvalidInputError(f"Cannot open {path!r} for writing: {exc}") from None
    with handle:
        writer = csv.writer(handle, delimiter=delimiter)
        if header:
            writer.writerow(list(names))
        for chunk in chunks:
            if chunk.size == 0:
                continue
            rendered = [
                cast_vector(column, VARCHAR)
                if column.dtype.id is not LogicalTypeId.VARCHAR else column
                for column in chunk.columns
            ]
            for row_index in range(chunk.size):
                row = []
                for column in rendered:
                    if column.validity[row_index]:
                        row.append(column.data[row_index])
                    else:
                        row.append(null_string)
                writer.writerow(row)
            rows_written += chunk.size
    return rows_written
