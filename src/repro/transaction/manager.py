"""Transaction manager: begins, commits, aborts, and garbage-collects.

Lock-free in spirit, lock-based in implementation: the paper's argument for
MVCC is that long-running OLAP queries must not block concurrent ETL writers
(§2, dashboard scenario).  Readers here never take the commit lock -- they
only capture a snapshot timestamp at begin; the short critical sections below
serialize only begin/commit bookkeeping, not query execution.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..errors import Error, InternalError, TransactionContextError, TransactionError
from ..sanitizer import SanLock
from .transaction import Transaction, TransactionState
from .version import TRANSACTION_ID_START

__all__ = ["TransactionManager"]


class TransactionManager:
    """Hands out transactions and assigns commit timestamps."""

    def __init__(self) -> None:
        self._lock = SanLock("transaction_manager")
        # Commit timestamps start at 1; 0 is reserved for "pre-history"
        # (bootstrap catalog entries and checkpoint-loaded data).
        self._last_commit_id = 1
        self._next_transaction_id = TRANSACTION_ID_START
        #: Bumped only by commits that wrote data or catalog entries --
        #: unlike ``_last_commit_id`` (which advances on every commit,
        #: including read-only autocommits), this is a stable cache key:
        #: the result cache keys entries on it.
        self._data_version = 0
        #: Bumped only by commits that carry catalog (DDL) changes; the
        #: plan cache invalidates on it.
        self._catalog_version = 0
        self._active: Dict[int, Transaction] = {}
        #: Callbacks run (under the commit lock) with each committing
        #: transaction, before its tags flip -- the WAL hooks in here.
        self.pre_commit_hooks: List[Callable[[Transaction, int], None]] = []
        #: Committed transactions whose undo buffers may still be needed by
        #: older active snapshots; cleaned up as snapshots advance.
        self._retired: List[Transaction] = []

    # -- lifecycle ----------------------------------------------------------
    def begin(self) -> Transaction:
        """Start a transaction whose snapshot is "everything committed so far"."""
        with self._lock:
            transaction = Transaction(self, self._next_transaction_id, self._last_commit_id)
            transaction.start_data_version = self._data_version
            self._next_transaction_id += 1
            self._active[transaction.transaction_id] = transaction
            return transaction

    def commit(self, transaction: Transaction) -> int:
        """Commit: assign a commit id, flip version tags, run WAL hooks."""
        transaction.check_active()
        with self._lock:
            commit_id = self._last_commit_id + 1
            # Capture before apply_commit: the hooks and tag flips must not
            # be able to perturb what "this transaction wrote".
            wrote_data = transaction.has_writes()
            wrote_catalog = bool(transaction.catalog_log)
            try:
                for hook in self.pre_commit_hooks:
                    hook(transaction, commit_id)
            except Error:
                # A failed WAL write must not leave a half-committed state;
                # engine errors (WALError, ...) already carry context.
                del self._active[transaction.transaction_id]
                transaction.apply_rollback()
                raise
            except Exception as exc:
                del self._active[transaction.transaction_id]
                transaction.apply_rollback()
                raise TransactionError(
                    f"pre-commit hook failed for transaction "
                    f"{transaction.transaction_id} (rolled back): {exc}"
                ) from exc
            # Flip all version tags BEFORE publishing the new commit id:
            # a reader that begins mid-flip must snapshot the previous commit
            # id, under which both the old (transaction-id) and the new
            # (commit-id) tags are invisible -- no torn reads.
            transaction.apply_commit(commit_id)
            self._last_commit_id = commit_id
            if wrote_data:
                self._data_version += 1
            if wrote_catalog:
                self._catalog_version += 1
            del self._active[transaction.transaction_id]
            if transaction.update_log:
                self._retired.append(transaction)
            self._vacuum_locked()
            return commit_id

    def rollback(self, transaction: Transaction) -> None:
        """Abort: restore all pre-images and drop the transaction."""
        transaction.check_active()
        with self._lock:
            transaction.apply_rollback()
            del self._active[transaction.transaction_id]
            self._vacuum_locked()

    def run_quiesced(self, work: Callable[[Transaction], Any]) -> Any:
        """Run ``work(bootstrap)`` while the engine is provably quiescent.

        The manager lock is held for the entire call: no transaction can
        begin, commit, or roll back while *work* runs.  Checkpoints need
        exactly this -- checking ``active_count() == 0`` and *then* writing
        the snapshot leaves a window in which a fresh transaction commits
        between the snapshot and the WAL truncation, losing its log records
        (and racing the WAL file handle).  Raises
        :class:`TransactionContextError` when any transaction is active.

        *work* may only descend the lock hierarchy (catalog, table data,
        buffer manager); it must not call back into the manager's locking
        methods.
        """
        with self._lock:
            if self._active:
                raise TransactionContextError(
                    "Cannot CHECKPOINT while other transactions are active"
                )
            bootstrap = Transaction(self, self._next_transaction_id,
                                    self._last_commit_id)
            self._next_transaction_id += 1
            self._active[bootstrap.transaction_id] = bootstrap
            try:
                return work(bootstrap)
            finally:
                if bootstrap.is_active:
                    bootstrap.apply_rollback()
                self._active.pop(bootstrap.transaction_id, None)
                self._vacuum_locked()

    # -- snapshot bookkeeping -------------------------------------------------
    @property
    def last_commit_id(self) -> int:
        return self._last_commit_id

    @property
    def data_version(self) -> int:
        """Monotonic count of commits that wrote data or catalog entries.

        Read lock-free (a single int load): the caches use it as a key, and
        a racing read merely classifies the reader as having arrived just
        before/after a concurrent commit -- both orders are serializable.
        """
        return self._data_version

    @property
    def catalog_version(self) -> int:
        """Monotonic count of commits that changed the catalog (DDL)."""
        return self._catalog_version

    def active_count(self) -> int:
        with self._lock:
            return len(self._active)

    def lowest_active_start(self) -> int:
        """Oldest snapshot still in use (== last commit id if none active)."""
        with self._lock:
            return self._lowest_active_start_locked()

    def snapshot_active(self) -> List[dict]:
        """Plain-data summaries of the active transactions, id order.

        Copy-then-release (the introspection discipline): every field is
        extracted while ``_lock`` is held, and the returned dicts share no
        mutable state with the live transactions.
        """
        with self._lock:
            return [
                {
                    "transaction_id": txn.transaction_id,
                    "start_time": txn.start_time,
                    "state": txn.state.value,
                    "has_writes": txn.has_writes(),
                    "wal_records": len(txn.wal_records),
                    "modified_tables": len(txn.modified_tables),
                }
                for _, txn in sorted(self._active.items())
            ]

    def _lowest_active_start_locked(self) -> int:
        if not self._active:
            return self._last_commit_id
        return min(txn.start_time for txn in self._active.values())

    def _vacuum_locked(self) -> None:
        """Drop undo buffers no active snapshot can still need.

        An update undo entry with commit id ``v`` is needed only by snapshots
        with ``start_time < v``; once every active transaction started at or
        after ``v``, the pre-image is garbage.
        """
        threshold = self._lowest_active_start_locked()
        remaining = []
        for transaction in self._retired:
            if transaction.commit_id is not None and transaction.commit_id <= threshold:
                for update in transaction.update_log:
                    update.column.remove_undo(update)
            else:
                remaining.append(transaction)
        self._retired = remaining

    def retired_undo_memory(self) -> int:
        """Bytes of committed-but-unreclaimed undo buffers (for monitoring)."""
        with self._lock:
            return sum(txn.undo_memory() for txn in self._retired)
