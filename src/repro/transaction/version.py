"""Version numbering and visibility rules for HyPer-style MVCC.

The scheme follows Neumann et al. (SIGMOD 2015), which the paper adopts for
DuckDB: commit timestamps are small monotonically increasing integers, while
*transaction ids* of in-flight transactions live in a disjoint high range
(``>= TRANSACTION_ID_START``).  A version tag ``v`` written into
``inserted_by`` / ``deleted_by`` arrays or undo entries is therefore either

* ``0`` (:data:`NOT_DELETED`) -- no writer at all,
* a commit id -- the write committed at that timestamp,
* a transaction id -- the write belongs to a still-running transaction, or
* :data:`ABORTED_MARKER` -- the writing transaction rolled back.

Visibility for a transaction with ``(transaction_id, start_time)`` is then a
single comparison: a version is visible iff it is the transaction's own id or
a commit id at most ``start_time``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "TRANSACTION_ID_START",
    "ABORTED_MARKER",
    "NOT_DELETED",
    "version_visible",
    "versions_visible",
]

#: First value of the transaction-id range.  Commit ids stay far below this.
TRANSACTION_ID_START = 1 << 62

#: Version tag of writes whose transaction aborted: visible to no one.
ABORTED_MARKER = (1 << 63) - 1

#: ``deleted_by`` value of rows that were never deleted.
NOT_DELETED = 0


def version_visible(version: int, transaction_id: int, start_time: int) -> bool:
    """Is a single version tag visible to the given transaction snapshot?"""
    return version == transaction_id or version <= start_time


def versions_visible(versions: np.ndarray, transaction_id: int, start_time: int) -> np.ndarray:
    """Vectorized :func:`version_visible` over an int64 version array."""
    return (versions == transaction_id) | (versions <= start_time)
