"""The transaction object: snapshot, undo logs, and commit/rollback logic."""

from __future__ import annotations

import enum
from typing import Any, List, Optional, TYPE_CHECKING

import numpy as np

from ..errors import InternalError, TransactionContextError
from .undo import DeleteUndo, InsertUndo, UpdateUndo
from .version import ABORTED_MARKER, NOT_DELETED

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .manager import TransactionManager

__all__ = ["Transaction", "TransactionState"]


class TransactionState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """A single MVCC transaction.

    A transaction sees the database as of ``start_time`` (plus its own
    writes).  All of its modifications are tagged with ``transaction_id``;
    commit atomically rewrites those tags to the assigned commit id, making
    the writes visible to transactions that start later.
    """

    def __init__(self, manager: "TransactionManager", transaction_id: int,
                 start_time: int) -> None:
        self._manager = manager
        self.transaction_id = transaction_id
        self.start_time = start_time
        self.state = TransactionState.ACTIVE
        self.commit_id: Optional[int] = None
        #: Undo records, in the order the writes happened.
        self.insert_log: List[InsertUndo] = []
        self.delete_log: List[DeleteUndo] = []
        self.update_log: List[UpdateUndo] = []
        #: Catalog modifications: (entry, action) with action in {create, drop}.
        self.catalog_log: List[tuple] = []
        #: Logical WAL records to persist on commit (storage layer fills this).
        self.wal_records: List[Any] = []
        #: Tables whose data this transaction modified (for checkpoint dirtiness).
        self.modified_tables: set = set()
        #: The manager's data version when this transaction began -- the
        #: result cache keys read-only snapshots on it (unlike commit ids,
        #: it only advances when a commit actually wrote something).
        self.start_data_version = 0

    # -- state guards -----------------------------------------------------
    @property
    def is_active(self) -> bool:
        return self.state is TransactionState.ACTIVE

    def check_active(self) -> None:
        if self.state is not TransactionState.ACTIVE:
            raise TransactionContextError(
                f"Transaction is {self.state.value}; no further operations allowed"
            )

    def has_writes(self) -> bool:
        return bool(self.insert_log or self.delete_log or self.update_log
                    or self.catalog_log)

    # -- record keeping (called by storage/catalog layers) -----------------
    def record_insert(self, undo: InsertUndo) -> None:
        self.check_active()
        self.insert_log.append(undo)
        self.modified_tables.add(undo.table)

    def record_delete(self, undo: DeleteUndo) -> None:
        self.check_active()
        self.delete_log.append(undo)
        self.modified_tables.add(undo.table)

    def record_update(self, undo: UpdateUndo) -> None:
        self.check_active()
        self.update_log.append(undo)

    def record_catalog(self, entry: Any, action: str) -> None:
        self.check_active()
        if action not in ("create", "drop"):
            raise InternalError(f"Unknown catalog action {action!r}")
        self.catalog_log.append((entry, action))

    def undo_memory(self) -> int:
        """Approximate bytes held in update undo buffers."""
        return sum(entry.nbytes() for entry in self.update_log)

    # -- commit / rollback internals (driven by TransactionManager) --------
    def apply_commit(self, commit_id: int) -> None:
        """Rewrite all version tags from the transaction id to ``commit_id``.

        Called by the manager with the global commit lock held.
        """
        self.commit_id = commit_id
        for insert in self.insert_log:
            table = insert.table
            rows = slice(insert.start_row, insert.start_row + insert.count)
            table.inserted_by[rows] = commit_id
        for delete in self.delete_log:
            delete.table.deleted_by[delete.rows] = commit_id
            delete.table.last_writer[delete.rows] = commit_id
        for update in self.update_log:
            update.version = commit_id
            update.column.set_writer(update.rows, commit_id)
        for entry, action in self.catalog_log:
            if action == "create":
                entry.created_by = commit_id
            else:
                entry.dropped_by = commit_id
        self.state = TransactionState.COMMITTED

    def apply_rollback(self) -> None:
        """Undo every modification, newest first."""
        # Updates: restore pre-images and unhook the undo entries.
        for update in reversed(self.update_log):
            update.column.rollback_update(update)
        # Deletes: clear the tombstones and restore the previous writer tag.
        for delete in reversed(self.delete_log):
            delete.table.deleted_by[delete.rows] = NOT_DELETED
            delete.table.last_writer[delete.rows] = delete.prev_writer
        # Inserts: the rows stay physically present but become invisible to
        # everyone; the next checkpoint must compact them away, or they
        # would resurrect on reload (checkpoint-loaded rows are pre-history,
        # visible to all).
        for insert in reversed(self.insert_log):
            table = insert.table
            rows = slice(insert.start_row, insert.start_row + insert.count)
            table.inserted_by[rows] = ABORTED_MARKER
            table.needs_compaction = True
            for column in table.columns:
                column.stats.mark_stale()
        for entry, action in reversed(self.catalog_log):
            if action == "create":
                entry.created_by = ABORTED_MARKER
            else:
                entry.dropped_by = None
        self.state = TransactionState.ABORTED

    def __repr__(self) -> str:
        return (f"Transaction(id={self.transaction_id}, start={self.start_time}, "
                f"state={self.state.value})")
