"""HyPer-style serializable MVCC (Neumann et al., SIGMOD 2015).

The paper adopts this design for DuckDB (§6): data is updated in place
immediately, pre-images go to undo buffers, readers reconstruct their
snapshot from undo chains, and the first writer to a row wins -- the second
concurrent writer aborts with :class:`~repro.errors.TransactionConflict`.
"""

from .manager import TransactionManager
from .transaction import Transaction, TransactionState
from .undo import DeleteUndo, InsertUndo, UpdateUndo
from .version import (
    ABORTED_MARKER,
    NOT_DELETED,
    TRANSACTION_ID_START,
    version_visible,
    versions_visible,
)

__all__ = [
    "TransactionManager",
    "Transaction",
    "TransactionState",
    "UpdateUndo",
    "DeleteUndo",
    "InsertUndo",
    "TRANSACTION_ID_START",
    "ABORTED_MARKER",
    "NOT_DELETED",
    "version_visible",
    "versions_visible",
]
