"""Undo buffer entries for in-place MVCC updates.

The paper (§6): *"This variant updates data in-place immediately, and keeps
previous states stored in a separate undo buffer for concurrent transactions
and aborts."*  An :class:`UpdateUndo` captures, for one column of one table,
the pre-image of the rows a transaction overwrote.  Readers whose snapshot
must not see the write apply the pre-image on top of the current data;
rollback re-installs it permanently.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = ["UpdateUndo", "DeleteUndo", "InsertUndo"]


class UpdateUndo:
    """Pre-image of an in-place column update.

    Attributes
    ----------
    version:
        The writer's version tag.  Starts as the transaction id; rewritten to
        the commit id when the writer commits.
    column:
        The :class:`~repro.storage.table_data.ColumnData` that was updated.
    rows:
        Sorted int64 array of physical row indices that were overwritten.
    old_data / old_validity:
        The values and validity bits those rows held before the update.
    prev_writer:
        Per-row version tags of the previous writers (restored on rollback so
        conflict detection keeps working after an abort).
    """

    __slots__ = ("version", "column", "rows", "old_data", "old_validity", "prev_writer")

    def __init__(self, version: int, column: Any, rows: np.ndarray,
                 old_data: np.ndarray, old_validity: np.ndarray,
                 prev_writer: np.ndarray) -> None:
        self.version = version
        self.column = column
        self.rows = rows
        self.old_data = old_data
        self.old_validity = old_validity
        self.prev_writer = prev_writer

    def nbytes(self) -> int:
        """Approximate memory held by this undo entry."""
        base = self.rows.nbytes + self.old_validity.nbytes + self.prev_writer.nbytes
        if self.old_data.dtype == object:
            return base + sum(len(v) for v in self.old_data if isinstance(v, str)) + len(self.old_data) * 8
        return base + self.old_data.nbytes


class DeleteUndo:
    """Record of rows a transaction marked deleted (for rollback/commit)."""

    __slots__ = ("table", "rows", "prev_writer")

    def __init__(self, table: Any, rows: np.ndarray, prev_writer: np.ndarray) -> None:
        self.table = table
        self.rows = rows
        self.prev_writer = prev_writer


class InsertUndo:
    """Record of a contiguous range of rows a transaction appended."""

    __slots__ = ("table", "start_row", "count")

    def __init__(self, table: Any, start_row: int, count: int) -> None:
        self.table = table
        self.start_row = start_row
        self.count = count
