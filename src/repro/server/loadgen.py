"""Load generator: thousands of mixed OLAP/ETL sessions against one server.

Shared by the committed serving benchmark
(``benchmarks/test_serving_load.py``, which writes ``BENCH_PR9.json``) and
the CI smoke CLI (``tools/load_generator.py``).  The workload models the
paper's §2 deployment: many short dashboard sessions issuing a small,
repeated set of parameterized aggregations (OLAP) interleaved with writer
sessions appending and updating rows (ETL).  The repeated templates are
what the plan cache is for -- a warm run parses and optimizes each template
once -- while the ETL fraction keeps advancing the data version, so the
result cache is exercised under realistic invalidation.

Latency samples are collected per worker and merged after the join (no
shared mutable state during the run), then summarized as p50/p99.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any, Dict, List, Tuple

from ..errors import TransactionConflict

__all__ = ["prepare_schema", "run_load", "OLAP_TEMPLATES", "ETL_TEMPLATES"]

#: The dashboard's repeated query set: parameterized so the plan cache is
#: keyed on a handful of (SQL, type-fingerprint) pairs regardless of the
#: concrete values each session plugs in.
OLAP_TEMPLATES: List[Tuple[str, Any]] = [
    ("SELECT category, count(*), sum(amount) FROM events "
     "WHERE amount > ? GROUP BY category ORDER BY category",
     lambda rng: (float(rng.randint(0, 50)),)),
    ("SELECT count(*) FROM events WHERE category = ?",
     lambda rng: (rng.randint(0, 9),)),
    ("SELECT avg(amount), min(amount), max(amount) FROM events "
     "WHERE category = :cat",
     lambda rng: {"cat": rng.randint(0, 9)}),
    ("SELECT category, avg(amount) FROM events WHERE amount BETWEEN ? AND ? "
     "GROUP BY category",
     lambda rng: (float(rng.randint(0, 20)), float(rng.randint(60, 100)))),
    ("SELECT count(*) FROM events WHERE amount < ? AND category <> ?",
     lambda rng: (float(rng.randint(10, 90)), rng.randint(0, 9))),
]

#: The ETL side: appends and updates that advance the data version.
ETL_TEMPLATES: List[Tuple[str, Any]] = [
    ("INSERT INTO events VALUES (?, ?)",
     lambda rng: (rng.randint(0, 9), float(rng.randint(0, 100)))),
    ("UPDATE events SET amount = amount + ? WHERE category = ?",
     lambda rng: (1.0, rng.randint(0, 9))),
]


def prepare_schema(server: Any, rows: int = 2000, seed: int = 11) -> None:
    """Create and seed the ``events`` table the workload runs against."""
    rng = random.Random(seed)
    with server.session("loadgen-setup") as session:
        session.execute(
            "CREATE TABLE events (category INTEGER, amount DOUBLE)")
        batch = [(rng.randint(0, 9), float(rng.randint(0, 100)))
                 for _ in range(rows)]
        session.executemany("INSERT INTO events VALUES (?, ?)", batch)


def run_load(server: Any, *, sessions: int = 1000,
             statements_per_session: int = 4, olap_fraction: float = 0.8,
             workers: int = 8, seed: int = 7) -> Dict[str, Any]:
    """Drive ``sessions`` short client sessions through ``server``.

    Sessions are spread over ``workers`` concurrent threads; each session
    opens, runs ``statements_per_session`` statements drawn from the OLAP
    templates with probability ``olap_fraction`` (ETL otherwise), and
    closes.  Returns a summary dict with p50/p99 latency, error counts,
    and the server's cache/admission statistics.
    """
    shares = [sessions // workers] * workers
    for index in range(sessions % workers):
        shares[index] += 1
    latencies: List[List[float]] = [[] for _ in range(workers)]
    errors: List[List[str]] = [[] for _ in range(workers)]
    conflicts = [0] * workers

    def worker(worker_index: int) -> None:
        rng = random.Random(seed * 1000 + worker_index)
        samples = latencies[worker_index]
        failures = errors[worker_index]
        for session_index in range(shares[worker_index]):
            session = server.session(
                f"load-w{worker_index}-s{session_index}")
            try:
                for _ in range(statements_per_session):
                    if rng.random() < olap_fraction:
                        sql, make_params = rng.choice(OLAP_TEMPLATES)
                    else:
                        sql, make_params = rng.choice(ETL_TEMPLATES)
                    params = make_params(rng)
                    start = time.perf_counter()
                    for attempt in range(5):
                        try:
                            result = session.execute(sql, params)
                            result.fetchall()
                            break
                        except TransactionConflict:
                            # First-updater-wins MVCC: concurrent writers on
                            # the same rows serialize by retrying, exactly
                            # like a real client.  Count, back off, retry.
                            conflicts[worker_index] += 1
                            if attempt == 4:
                                failures.append("TransactionConflict: "
                                                "retries exhausted")
                            else:
                                time.sleep(0.001 * (attempt + 1))
                        except Exception as exc:  # quacklint: disable=QLE001 -- the load generator's job is to record failures, not die on the first one
                            failures.append(f"{type(exc).__name__}: {exc}")
                            break
                    samples.append(time.perf_counter() - start)
            finally:
                session.close()

    threads = [threading.Thread(target=worker, args=(index,), daemon=True)
               for index in range(workers)]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start

    merged = sorted(sample for worker_samples in latencies
                    for sample in worker_samples)
    all_errors = [message for worker_errors in errors
                  for message in worker_errors]
    plan_stats = server.database.plan_cache.stats()
    plan_lookups = plan_stats["hits"] + plan_stats["misses"]
    return {
        "sessions": sessions,
        "workers": workers,
        "statements": len(merged),
        "olap_fraction": olap_fraction,
        "errors": len(all_errors),
        "error_samples": all_errors[:5],
        "write_conflicts_retried": sum(conflicts),
        "wall_seconds": wall,
        "statements_per_second": len(merged) / wall if wall else 0.0,
        "p50_ms": _percentile(merged, 0.50) * 1000.0,
        "p99_ms": _percentile(merged, 0.99) * 1000.0,
        "max_ms": merged[-1] * 1000.0 if merged else 0.0,
        "plan_cache": plan_stats,
        "plan_cache_hit_rate":
            plan_stats["hits"] / plan_lookups if plan_lookups else 0.0,
        "result_cache": server.database.result_cache.stats(),
        "admission": server.database.admission.stats(),
        "session_registry": server.database.session_registry.stats(),
    }


def _percentile(sorted_samples: List[float], fraction: float) -> float:
    if not sorted_samples:
        return 0.0
    index = min(len(sorted_samples) - 1,
                int(fraction * (len(sorted_samples) - 1)))
    return sorted_samples[index]
