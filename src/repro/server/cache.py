"""Plan and result caches: memoization layers of the serving front end.

Both caches hang off the :class:`~repro.database.Database` so every
connection and server session shares them, and both are version-keyed
against the transaction manager's counters rather than walked on
invalidation:

* the **plan cache** memoizes parse+bind+optimize for SELECTs on
  ``(SQL text, parameter-type fingerprint)``.  Each entry records the
  catalog version at fill time; a DDL commit bumps that version, so stale
  plans fail validation lazily on their next lookup.  Data-only commits do
  *not* move the catalog version -- a mixed OLAP/ETL workload keeps its
  warm plans.
* the **result cache** memoizes materialized read-only result sets on
  ``(SQL text, parameter values, data version)``.  Any committed write
  advances the data version, so a hit is always snapshot-consistent with
  "begin a fresh transaction now"; superseded entries age out by LRU.

Lock discipline: each cache owns one lock (``server.plan_cache`` /
``server.result_cache``, declared between ``connection`` and
``database.checkpoint`` in the hierarchy) and its critical sections are
pure dict operations -- no engine lock is ever taken while one is held.
Hit/miss counters are plain ints folded into the metrics registry at
statement boundaries (same pattern as the buffer manager).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from ..sanitizer import SanLock

__all__ = ["CachedPlan", "PlanCache", "CachedResult", "ResultCache",
           "plan_result_cacheable"]


def plan_result_cacheable(plan: Any) -> bool:
    """Whether a logical plan's output is stable for a given data version.

    Introspection scans read live engine state (metrics, locks, sessions)
    and CSV scans read files the engine does not version -- results over
    either must never be served from cache.
    """
    from ..planner.logical import LogicalCSVScan, LogicalIntrospectionScan

    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, (LogicalCSVScan, LogicalIntrospectionScan)):
            return False
        stack.extend(node.children)
    return True


class CachedPlan:
    """One bound+optimized SELECT plan, shared read-only across executions."""

    __slots__ = ("sql", "plan", "catalog_version", "parameterized")

    def __init__(self, sql: str, plan: Any, catalog_version: int,
                 parameterized: bool) -> None:
        self.sql = sql
        self.plan = plan
        self.catalog_version = catalog_version
        #: False when the statement had no parameter markers (the plan still
        #: needs no per-execution values).
        self.parameterized = parameterized


class PlanCache:
    """LRU cache of optimized SELECT plans keyed on SQL + parameter types."""

    def __init__(self, config) -> None:
        self._config = config
        self._lock = SanLock("server.plan_cache")
        self._entries: "OrderedDict[Any, CachedPlan]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    @property
    def capacity(self) -> int:
        return max(0, int(getattr(self._config, "plan_cache_entries", 0)))

    def lookup(self, key: Any, catalog_version: int) -> Optional[CachedPlan]:
        """The cached plan for ``key``, or None on miss/stale entry."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            if entry.catalog_version != catalog_version:
                # Lazy invalidation: a DDL commit moved the catalog version.
                del self._entries[key]
                self.invalidations += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def store(self, key: Any, entry: CachedPlan) -> None:
        capacity = self.capacity
        if capacity <= 0:
            return
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> int:
        """Drop every entry (PRAGMA-style manual invalidation)."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.invalidations += dropped
            return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }

    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0


class CachedResult:
    """One materialized read-only result set, replayed on every hit."""

    __slots__ = ("names", "types", "chunks", "rowcount", "rows")

    def __init__(self, names: List[str], types: List[Any],
                 chunks: Tuple[Any, ...], rowcount: int) -> None:
        self.names = names
        self.types = types
        self.chunks = chunks
        self.rowcount = rowcount
        self.rows = sum(chunk.size for chunk in chunks)


class ResultCache:
    """LRU cache of result sets keyed on SQL + parameter values + version."""

    def __init__(self, config) -> None:
        self._config = config
        self._lock = SanLock("server.result_cache")
        self._entries: "OrderedDict[Any, CachedResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def capacity(self) -> int:
        return max(0, int(getattr(self._config, "result_cache_entries", 0)))

    @property
    def max_rows(self) -> int:
        return max(0, int(getattr(self._config, "result_cache_max_rows", 0)))

    def lookup(self, key: Any) -> Optional[CachedResult]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def store(self, key: Any, entry: CachedResult) -> None:
        capacity = self.capacity
        if capacity <= 0 or entry.rows > self.max_rows:
            return
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> int:
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
