"""The serving front end: sessions, caches, admission control.

This package multiplexes many client sessions onto one embedded
:class:`~repro.database.Database` (see :class:`QueryServer`).  Import
discipline: :mod:`repro.database` instantiates the caches, the admission
controller, and the session registry at construction time, so nothing in
this package may import ``repro.database`` or ``repro.client`` at module
level -- those imports are deferred into the methods that need them.
"""

from .admission import AdmissionController, AdmissionTicket
from .cache import (CachedPlan, CachedResult, PlanCache, ResultCache,
                    plan_result_cacheable)
from .capture import WorkloadCapture, load_capture, replay_workload
from .session import Session, SessionRegistry
from .server import QueryServer

__all__ = [
    "AdmissionController",
    "AdmissionTicket",
    "CachedPlan",
    "CachedResult",
    "PlanCache",
    "ResultCache",
    "plan_result_cacheable",
    "QueryServer",
    "Session",
    "SessionRegistry",
    "WorkloadCapture",
    "load_capture",
    "replay_workload",
]
