"""Workload capture & replay: production traffic as a benchmark.

``PRAGMA capture_enabled = 1`` (with ``capture_path`` set, or the
``REPRO_CAPTURE_PATH`` environment default) makes the serving layer record
every statement that passes through a :class:`~repro.server.session.Session`
-- SQL text, parameters, timing offset from capture start, row count, and
error outcome -- as one JSON line.  :func:`replay_workload` (CLI:
``tools/replay_workload.py``) then replays the file against a *fresh*
database at recorded or maximum speed and emits the same latency-summary
shape as ``BENCH_PR9.json``, so captured traffic becomes a reproducible
benchmark and a correctness check: statement counts always match, and
row counts match exactly when the capture was serial (the CI smoke runs
the load generator with ``workers=1`` for exactly this reason; concurrent
captures interleave writes, so reader row counts are compared best-effort).

Capture is **instance-wide**: the PRAGMA plumbing flips the database
config (not the session's private copy), because a capture that recorded
only one session's slice of an interleaved workload would replay into a
different database state.  Emission happens in ``Session.execute``'s
epilogue, strictly outside every engine lock (quacklint QLO004) -- capture
I/O can slow the *client's* turnaround, never a lock holder.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, List, Optional

__all__ = ["WorkloadCapture", "replay_workload", "CAPTURE_FORMAT_VERSION"]

#: Bumped when the capture line shape changes incompatibly.
CAPTURE_FORMAT_VERSION = 1


def _jsonable_params(parameters: Any) -> Any:
    """Parameters in a JSON-stable shape (tuples become lists)."""
    if parameters is None:
        return None
    if isinstance(parameters, dict):
        return {str(key): value for key, value in parameters.items()}
    if isinstance(parameters, (list, tuple)):
        return list(parameters)
    return [parameters]


class WorkloadCapture:
    """Append-only JSONL recorder of served statements.

    Thread-safe: many sessions on many worker threads emit concurrently.
    The first line is a ``capture_start`` header carrying the format
    version; every later line is one ``statement`` record ordered by
    emission time (the lock serializes writes, so file order is a valid
    replay order).  Statements that *manage the capture itself*
    (``PRAGMA capture_...``) are skipped -- replaying them would recurse.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._handle = open(path, "a", encoding="utf-8")  # noqa: SIM115 -- lifetime spans the capture
        self._origin = time.perf_counter()
        self.statements_recorded = 0
        self._handle.write(json.dumps({
            "type": "capture_start",
            "version": CAPTURE_FORMAT_VERSION,
            "started_at": time.time(),
        }, separators=(",", ":")) + "\n")
        self._handle.flush()

    def emit_statement(self, session_name: str, session_id: int, seq: int,
                       sql: str, parameters: Any, rowcount: int,
                       wall_ms: float, error: str = "") -> None:
        """Record one served statement (no-op after close)."""
        head = sql.lstrip().lower()
        if head.startswith("pragma capture"):
            return
        line = json.dumps({
            "type": "statement",
            "offset_s": time.perf_counter() - self._origin,
            "session": session_name,
            "session_id": session_id,
            "seq": seq,
            "sql": sql,
            "params": _jsonable_params(parameters),
            "rowcount": rowcount,
            "wall_ms": wall_ms,
            "error": error,
        }, default=str, separators=(",", ":"))
        with self._lock:
            if self._handle.closed:
                return
            self._handle.write(line + "\n")
            self._handle.flush()
            self.statements_recorded += 1

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __repr__(self) -> str:
        state = "closed" if self._handle.closed else "open"
        return (f"WorkloadCapture({self.path!r}, {state}, "
                f"recorded={self.statements_recorded})")


def load_capture(path: str) -> List[Dict[str, Any]]:
    """Parse a capture file into its statement records, in file order."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("type")
            if kind == "capture_start":
                version = record.get("version")
                if version != CAPTURE_FORMAT_VERSION:
                    raise ValueError(
                        f"{path}:{line_number}: unsupported capture format "
                        f"version {version!r}")
            elif kind == "statement":
                records.append(record)
            else:
                raise ValueError(
                    f"{path}:{line_number}: unknown record type {kind!r}")
    return records


def _replay_params(params: Any) -> Any:
    if params is None:
        return None
    if isinstance(params, dict):
        return params
    return tuple(params)


def replay_workload(path: str, *, speed: str = "max",
                    config: Optional[Dict[str, Any]] = None,
                    ) -> Dict[str, Any]:
    """Replay a captured workload against a fresh in-memory server.

    ``speed="max"`` replays back-to-back; ``speed="recorded"`` honors each
    statement's captured offset (a capture of a 60 s run replays in 60 s).
    Statements replay in file order through sessions recreated by name, so
    a serial capture reproduces the exact same database state -- the
    returned ``replay`` block counts row matches/mismatches against the
    recorded counts, and the ``serving`` block has the ``BENCH_PR9.json``
    latency-summary shape.
    """
    if speed not in ("max", "recorded"):
        raise ValueError(f"speed must be 'max' or 'recorded', not {speed!r}")
    from .loadgen import _percentile
    from .server import QueryServer

    records = load_capture(path)
    server = QueryServer(config=dict(config) if config else None)
    sessions: Dict[str, Any] = {}
    latencies: List[float] = []
    matches = 0
    mismatches = 0
    mismatch_samples: List[Dict[str, Any]] = []
    errors = 0
    wall_start = time.perf_counter()
    try:
        for record in records:
            if speed == "recorded":
                target = wall_start + float(record.get("offset_s", 0.0))
                delay = target - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
            name = record.get("session", "replay")
            session = sessions.get(name)
            if session is None:
                session = server.session(name)
                sessions[name] = session
            params = _replay_params(record.get("params"))
            expected_rows = int(record.get("rowcount", 0))
            expected_error = record.get("error", "")
            start = time.perf_counter()
            try:
                result = session.execute(record["sql"], params)
                actual_rows = len(result.fetchall())
                actual_error = ""
            except Exception as exc:  # quacklint: disable=QLE001 -- a replay harness records divergence, it must not die on it
                actual_rows = 0
                actual_error = type(exc).__name__
                errors += 1
            latencies.append(time.perf_counter() - start)
            if (actual_rows == expected_rows
                    and bool(actual_error) == bool(expected_error)):
                matches += 1
            else:
                mismatches += 1
                if len(mismatch_samples) < 5:
                    mismatch_samples.append({
                        "sql": record["sql"],
                        "expected_rows": expected_rows,
                        "actual_rows": actual_rows,
                        "expected_error": expected_error,
                        "actual_error": actual_error,
                    })
        wall = time.perf_counter() - wall_start
        plan_stats = server.database.plan_cache.stats()
        plan_lookups = plan_stats["hits"] + plan_stats["misses"]
        merged = sorted(latencies)
        return {
            "format": "repro-bench-v1",
            "serving": {
                "sessions": len(sessions),
                "workers": 1,
                "statements": len(merged),
                "errors": errors,
                "wall_seconds": wall,
                "statements_per_second": len(merged) / wall if wall else 0.0,
                "p50_ms": _percentile(merged, 0.50) * 1000.0,
                "p99_ms": _percentile(merged, 0.99) * 1000.0,
                "max_ms": merged[-1] * 1000.0 if merged else 0.0,
                "plan_cache": plan_stats,
                "plan_cache_hit_rate":
                    plan_stats["hits"] / plan_lookups if plan_lookups else 0.0,
                "result_cache": server.database.result_cache.stats(),
                "admission": server.database.admission.stats(),
            },
            "replay": {
                "source": path,
                "speed": speed,
                "statements": len(records),
                "matches": matches,
                "mismatches": mismatches,
                "mismatch_samples": mismatch_samples,
            },
        }
    finally:
        for session in sessions.values():
            session.close()
        server.close()
