"""Sessions: one served client's connection, stats, and resource scope.

A :class:`Session` wraps a dedicated
:class:`~repro.client.connection.Connection` whose config is a private copy
of the database's -- session ``PRAGMA``s (memory limit, threads, tracing
thresholds) apply to this session only and die with it.  Every statement
passes through the shared :class:`~repro.server.admission.AdmissionController`
first, and the granted ticket caps the session's thread/memory knobs for
the statement's duration, so one heavy OLAP query cannot starve a thousand
light ones.

The :class:`SessionRegistry` hangs off the
:class:`~repro.database.Database` and is the source of the
``repro_sessions()`` system table.  Lock discipline: the registry's
``server.sessions`` lock guards the session map *and* every session's
mutable stats (each session aliases it as ``_registry_lock``), so the
system-table snapshot is one consistent critical section.  The lock is
never held across engine work -- statistics are flipped before and after
``connection.execute``, and a closing session leaves the registry's
critical section before taking the connection lock (``connection`` sits
*above* ``server.sessions`` in the declared hierarchy, so the nested order
would be inverted).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from ..errors import ClosedHandleError
from ..sanitizer import SanLock

if TYPE_CHECKING:
    from ..client.connection import Connection
    from ..client.result import QueryResult
    from .admission import AdmissionController

__all__ = ["Session", "SessionRegistry"]


class Session:
    """One served client: a private connection plus admission-scoped stats."""

    def __init__(self, registry: "SessionRegistry",
                 admission: Optional["AdmissionController"],
                 connection: "Connection", session_id: int,
                 name: str) -> None:
        self._registry = registry
        # Alias of the registry's ``server.sessions`` lock: stats writes and
        # the ``repro_sessions()`` snapshot share one critical section.
        self._registry_lock = registry._lock
        self._admission = admission
        self.connection = connection
        self.session_id = session_id
        self.name = name
        self.state = "idle"
        self.statements = 0
        self.rows_returned = 0
        self.errors = 0
        self.last_sql = ""
        self.created_at = time.time()
        # Live-activity fields (repro_activity()): what this session is
        # doing *right now*.  Guarded by _registry_lock like all stats.
        self.active_sql = ""
        self.active_phase = ""
        self.active_since = 0.0
        self.active_seq = 0
        # Accumulated resource accounting, folded from the connection's
        # per-statement bills (see repro.observability.accounting).
        self.wall_ms = 0.0
        self.cpu_ms = 0.0
        self.rows_scanned = 0
        self.buffer_hits = 0
        self.buffer_misses = 0
        self.peak_memory = 0
        self._last_folded_seq = 0
        self._closed = False

    # -- execution ----------------------------------------------------------
    def execute(self, sql: str, parameters: Any = None) -> "QueryResult":
        """Run SQL through admission control (eager -- results materialized).

        Eager mode is deliberate: the admission ticket (and its thread/
        memory grant) is released when this call returns, so the whole
        execution must happen inside it.
        """
        if self._closed:
            raise ClosedHandleError(
                f"Session {self.name!r} has been closed")
        started = time.time()
        with self._registry_lock:
            self.state = "active"
            self.last_sql = sql
            self.statements += 1
            self.active_sql = sql
            self.active_phase = "admission"
            self.active_since = started
            self.active_seq = self.connection._statement_seq + 1
        ticket = self._admission.admit() if self._admission is not None \
            else None
        config = self.connection.session_config
        saved_threads = granted_threads = config.threads
        saved_memory = granted_memory = config.memory_limit
        captured_rows = 0
        captured_error = ""
        try:
            if ticket is not None:
                # The grant only ever tightens the session's own knobs.
                granted_threads = max(1, min(saved_threads, ticket.threads))
                granted_memory = min(saved_memory, ticket.memory_limit)
                config.threads = granted_threads
                config.memory_limit = granted_memory
            with self._registry_lock:
                self.active_phase = "executing"
            result = self.connection.execute(sql, parameters)
            captured_rows = result.rowcount
            if result.rowcount > 0:
                with self._registry_lock:
                    self.rows_returned += result.rowcount
            return result
        except Exception as execute_error:
            captured_error = type(execute_error).__name__
            with self._registry_lock:
                self.errors += 1
            raise
        finally:
            # Undo the grant clamp, but keep a value the statement itself
            # changed (``PRAGMA threads=...`` issued through the session
            # becomes the session's new baseline).
            if config.threads == granted_threads:
                config.threads = saved_threads
            if config.memory_limit == granted_memory:
                config.memory_limit = saved_memory
            if ticket is not None:
                self._admission.release()
            accounting = self.connection.last_accounting
            fresh_bill = False
            with self._registry_lock:
                self.active_sql = ""
                self.active_phase = ""
                self.active_since = 0.0
                self.active_seq = 0
                if (accounting is not None
                        and accounting.statement_seq > self._last_folded_seq):
                    # Multi-statement SQL leaves only its last bill visible;
                    # the fold is an accumulated estimate, not a ledger.
                    fresh_bill = True
                    self._last_folded_seq = accounting.statement_seq
                    self.wall_ms += accounting.wall_ms
                    self.cpu_ms += accounting.cpu_ms
                    self.rows_scanned += accounting.rows_scanned
                    self.buffer_hits += accounting.buffer_hits
                    self.buffer_misses += accounting.buffer_misses
                    if accounting.memory_bytes > self.peak_memory:
                        self.peak_memory = accounting.memory_bytes
                if not self._closed:
                    self.state = "idle"
            # Workload capture writes to a file: strictly outside every
            # engine lock (quacklint QLO004).  A stale bill (transaction
            # control statements observe nothing) falls back to the
            # result's own count.
            capture = self.connection.database.workload_capture
            if capture is not None:
                capture.emit_statement(
                    self.name, self.session_id,
                    accounting.statement_seq if fresh_bill else 0,
                    sql, parameters,
                    accounting.rows_out if fresh_bill else captured_rows,
                    (time.time() - started) * 1000.0, captured_error)

    def executemany(self, sql: str, parameter_sets: Any) -> "QueryResult":
        result: Optional["QueryResult"] = None
        for parameters in parameter_sets:
            if result is not None:
                result.close()
            result = self.execute(sql, parameters)
        if result is None:
            from ..errors import InvalidInputError

            raise InvalidInputError("executemany() with no parameter sets")
        return result

    def stats(self) -> Dict[str, Any]:
        """Accumulated resource accounting of this session (one snapshot)."""
        with self._registry_lock:
            return {
                "statements": self.statements,
                "rows_returned": self.rows_returned,
                "errors": self.errors,
                "wall_ms": self.wall_ms,
                "cpu_ms": self.cpu_ms,
                "rows_scanned": self.rows_scanned,
                "buffer_hits": self.buffer_hits,
                "buffer_misses": self.buffer_misses,
                "peak_memory": self.peak_memory,
            }

    # -- lifecycle ----------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        with self._registry_lock:
            if self._closed:
                return
            self._closed = True
            self.state = "closed"
        self._registry.unregister(self)
        # Outside the registry lock: ``connection`` is above
        # ``server.sessions`` in the hierarchy, nesting here would invert it.
        self.connection.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else self.state
        return f"Session({self.session_id}, {self.name!r}, {state})"


class SessionRegistry:
    """All live sessions of a database, snapshot-able for introspection."""

    def __init__(self) -> None:
        self._lock = SanLock("server.sessions")
        self._sessions: Dict[int, Session] = {}
        self._next_id = 1
        self.opened = 0
        self.closed = 0
        self.peak = 0

    def create(self, connection: "Connection",
               admission: Optional["AdmissionController"] = None,
               name: Optional[str] = None) -> Session:
        """Register a new session wrapping ``connection``."""
        with self._lock:
            session_id = self._next_id
            self._next_id += 1
        session = Session(self, admission, connection, session_id,
                          name or f"session-{session_id}")
        # Stamp the accounting attribution key onto the connection so every
        # StatementRecord and slow-log entry carries (session_id, seq).
        connection._session_id = session_id
        with self._lock:
            self._sessions[session_id] = session
            self.opened += 1
            if len(self._sessions) > self.peak:
                self.peak = len(self._sessions)
        return session

    def unregister(self, session: Session) -> None:
        with self._lock:
            if self._sessions.pop(session.session_id, None) is not None:
                self.closed += 1

    def active_sessions(self) -> List[Session]:
        with self._lock:
            return list(self._sessions.values())

    def snapshot(self) -> List[Dict[str, Any]]:
        """Copy-then-release: per-session stats rows for ``repro_sessions()``."""
        with self._lock:
            rows = []
            for session in self._sessions.values():
                rows.append({
                    "session_id": session.session_id,
                    "name": session.name,
                    "state": session.state,
                    "statements": session.statements,
                    "rows_returned": session.rows_returned,
                    "errors": session.errors,
                    "last_sql": session.last_sql,
                    "created_at": session.created_at,
                    "wall_ms": session.wall_ms,
                    "cpu_ms": session.cpu_ms,
                    "rows_scanned": session.rows_scanned,
                    "buffer_hits": session.buffer_hits,
                    "buffer_misses": session.buffer_misses,
                    "peak_memory": session.peak_memory,
                })
            return rows

    def activity_snapshot(self) -> List[Dict[str, Any]]:
        """Live per-session activity rows for ``repro_activity()``.

        Only sessions with a statement in flight appear.  ``rows_so_far``
        is a best-effort read of the in-flight execution context's scan
        counter -- the same lock-free post-hoc read the executor uses --
        so a dashboard can see a runaway scan *while it runs*.
        """
        now = time.time()
        with self._lock:
            rows = []
            for session in self._sessions.values():
                if not session.active_sql:
                    continue
                rows_so_far = 0
                context = session.connection._active_context
                if context is not None:
                    rows_so_far = int(context.stats.get("rows_scanned", 0))
                rows.append({
                    "session_id": session.session_id,
                    "name": session.name,
                    "statement_seq": session.active_seq,
                    "sql": session.active_sql,
                    "phase": session.active_phase,
                    "started_at": session.active_since,
                    "elapsed_ms": (now - session.active_since) * 1000.0,
                    "rows_so_far": rows_so_far,
                })
            return rows

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "active": len(self._sessions),
                "opened": self.opened,
                "closed": self.closed,
                "peak": self.peak,
            }
