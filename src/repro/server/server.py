"""QueryServer: the concurrent serving front end over one embedded database.

The paper's thesis is an *embedded* engine, but its motivating deployments
(§2: the dashboard reader next to the ETL writer) still need a serving
shape: many logical clients multiplexed onto one
:class:`~repro.database.Database` in one process.  ``QueryServer`` is that
front end:

* each :meth:`session` gets a private connection with a **copy** of the
  database config (session PRAGMAs cannot leak),
* every statement passes **admission control**
  (``config.max_concurrent_queries`` / ``admission_timeout_ms``) and runs
  under its fair-share thread/memory grant,
* all sessions share the database's **plan cache** and **result cache**
  (see :mod:`repro.server.cache`), so a thousand dashboard sessions issuing
  the same handful of queries parse and optimize them once.

The server can wrap an existing ``Database`` (embedded co-tenancy) or own a
fresh one (``QueryServer(path=...)``) that it closes on exit.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional

from .session import Session, SessionRegistry

__all__ = ["QueryServer"]


class QueryServer:
    """Multiplexes many client sessions onto one shared database."""

    def __init__(self, database: Any = None, path: str = ":memory:",
                 config: Any = None) -> None:
        if database is None:
            from ..config import DatabaseConfig
            from ..database import Database

            if isinstance(config, dict) or config is None:
                config = DatabaseConfig.from_dict(config)
            database = Database(path, config)
            self._owns_database = True
        else:
            self._owns_database = False
        self.database = database
        self.admission = database.admission
        self.sessions: SessionRegistry = database.session_registry

    # -- sessions -----------------------------------------------------------
    def session(self, name: Optional[str] = None) -> Session:
        """Open a new client session (usable as a context manager).

        The session's connection carries a private copy of the database
        config: ``PRAGMA`` statements issued through it are scoped to the
        session and reset when it closes.
        """
        self.database.check_open()
        from ..client.connection import Connection

        session_config = dataclasses.replace(self.database.config)
        connection = Connection(self.database, config=session_config,
                                _internal=True)
        return self.sessions.create(connection, self.admission, name)

    def execute(self, sql: str, parameters: Any = None):
        """One-shot convenience: run SQL in a throwaway session."""
        session = self.session()
        try:
            return session.execute(sql, parameters)
        finally:
            session.close()

    # -- introspection ------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Point-in-time serving statistics (sessions, caches, admission)."""
        return {
            "sessions": self.sessions.stats(),
            "admission": self.admission.stats(),
            "plan_cache": self.database.plan_cache.stats(),
            "result_cache": self.database.result_cache.stats(),
        }

    def scrape(self) -> str:
        """One Prometheus-text scrape page of the engine metrics.

        The embedded counterpart of a ``/metrics`` endpoint: the host
        application mounts this method on whatever HTTP surface it already
        has and the engine becomes scrape-able without its own listener.
        Folds the instance's buffer/cache/admission deltas first, so a
        scrape is as fresh as a ``connection.metrics_text()`` call.
        """
        from ..observability import registry

        self.database.fold_metrics()
        return registry().render_text()

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        """Close every live session, then the database if this server owns it."""
        for session in self.sessions.active_sessions():
            session.close()
        if self._owns_database:
            self.database.close()

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"QueryServer({self.database!r}, "
                f"sessions={len(self.sessions)})")
