"""Admission control: bound concurrent queries, share resources fairly.

The paper's cooperation pillar (§4) says the embedded engine must not
assume it owns the machine; under a serving front end the same discipline
applies *between queries*.  The controller enforces
``config.max_concurrent_queries`` (0 = unlimited): a query over the limit
waits up to ``config.admission_timeout_ms`` and then fails with
:class:`~repro.errors.AdmissionError` instead of piling onto an overloaded
engine.

Each admitted query receives an :class:`AdmissionTicket` with its fair
share of the configured thread and memory budgets -- computed through the
existing cooperation controller
(:meth:`~repro.cooperation.controller.StaticController.choose_worker_count`)
so application CPU pressure degrades the grant further.  The session layer
applies the grant to the query's session config for the statement's
duration.

Lock discipline: ``server.admission`` guards only the active-count
bookkeeping; quota arithmetic runs outside the critical section and the
condition wait holds no other lock.
"""

from __future__ import annotations

import threading
import time
from typing import Dict

from ..errors import AdmissionError
from ..sanitizer import SanLock

__all__ = ["AdmissionTicket", "AdmissionController"]


class AdmissionTicket:
    """Per-query resource grant: apply for the statement, then release."""

    __slots__ = ("threads", "memory_limit")

    def __init__(self, threads: int, memory_limit: int) -> None:
        self.threads = threads
        self.memory_limit = memory_limit


class AdmissionController:
    """Gates query execution on a shared :class:`~repro.database.Database`."""

    #: Never grant a query less than this much memory (quota floor).
    MIN_QUERY_MEMORY = 16 << 20

    def __init__(self, database) -> None:
        self._database = database
        self._lock = SanLock("server.admission")
        self._condition = threading.Condition(self._lock)
        self._active = 0
        self.admitted = 0
        self.waits = 0
        self.timeouts = 0
        self.peak_active = 0

    def admit(self) -> AdmissionTicket:
        """Block until a slot is free (or time out), returning the grant."""
        config = self._database.config
        limit = max(0, int(getattr(config, "max_concurrent_queries", 0)))
        timeout = max(0.0, float(getattr(config, "admission_timeout_ms",
                                         0.0))) / 1000.0
        with self._lock:
            if limit and self._active >= limit:
                deadline = time.monotonic() + timeout
                self.waits += 1
                while self._active >= limit:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._condition.wait(remaining):
                        self.timeouts += 1
                        raise AdmissionError(
                            f"Admission queue timed out after "
                            f"{timeout * 1000:.0f} ms ({self._active} queries "
                            f"active, limit {limit})")
            self._active += 1
            self.admitted += 1
            if self._active > self.peak_active:
                self.peak_active = self._active
            active = self._active
        # Quota arithmetic outside the critical section: an approximate
        # share based on the active count at admission is good enough, and
        # it keeps engine calls out of the admission lock.
        threads = max(1, int(getattr(config, "threads", 1)) // active)
        controller = self._database.resource_controller
        if controller is not None:
            chooser = getattr(controller, "choose_worker_count", None)
            if chooser is not None:
                threads = max(1, int(chooser(threads)))
        memory = max(self.MIN_QUERY_MEMORY,
                     int(config.memory_limit) // active)
        memory = min(memory, int(config.memory_limit))
        return AdmissionTicket(threads, memory)

    def release(self) -> None:
        with self._lock:
            if self._active > 0:
                self._active -= 1
            self._condition.notify()

    @property
    def active(self) -> int:
        return self._active

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "active": self._active,
                "admitted": self.admitted,
                "waits": self.waits,
                "timeouts": self.timeouts,
                "peak_active": self.peak_active,
            }
