"""Vector Volcano execution engine: operators, expressions, executor."""

from .executor import Executor, StatementResult
from .expression_executor import ExpressionExecutor, evaluate_standalone
from .intermediates import ChunkBuffer
from .physical import ExecutionContext, PhysicalOperator
from .physical_planner import create_physical_plan

__all__ = [
    "Executor",
    "StatementResult",
    "ExpressionExecutor",
    "evaluate_standalone",
    "ChunkBuffer",
    "ExecutionContext",
    "PhysicalOperator",
    "create_physical_plan",
]
