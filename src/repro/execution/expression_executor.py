"""Vectorized expression evaluation over DataChunks.

The interpreter of the "Vector Volcano" model: each node of a bound
expression tree is evaluated once per 2048-value chunk, so the per-value
interpretation overhead that makes tuple-at-a-time engines slow (paper §2,
§6) is amortized away.  All kernels are NumPy operations; only VARCHAR
comparisons and LIKE fall back to per-value Python over the valid subset.

NULL semantics follow SQL's three-valued logic throughout.
"""

from __future__ import annotations

import re
from typing import Any, List, Optional

import numpy as np

from ..errors import InternalError, InvalidInputError
from ..planner.expressions import (
    BoundAggregate,
    BoundCase,
    BoundCast,
    BoundColumnRef,
    BoundConstant,
    BoundExpression,
    BoundFunction,
    BoundInList,
    BoundIsNull,
    BoundLike,
    BoundOperator,
    BoundParameterRef,
)
from ..planner.subquery import (
    BoundExistsSubquery,
    BoundInSubquery,
    BoundScalarSubquery,
)
from ..types import (
    BOOLEAN,
    DOUBLE,
    LogicalTypeId,
    SQLNULL,
    Vector,
    cast_scalar,
    cast_vector,
)
from ..types.chunk import DataChunk

__all__ = ["ExpressionExecutor", "evaluate_standalone"]


class ExpressionExecutor:
    """Evaluates bound expressions; one instance per query execution."""

    def __init__(self, context=None) -> None:
        #: Execution context (for subquery evaluation); optional so that
        #: constant folding can run without a live query.
        self.context = context
        self._like_cache = {}

    # -- entry point -------------------------------------------------------
    def execute(self, expression: BoundExpression, chunk: DataChunk) -> Vector:
        count = chunk.size
        if isinstance(expression, BoundConstant):
            return Vector.constant(expression.value, count, expression.return_type)
        if isinstance(expression, BoundColumnRef):
            return chunk.columns[expression.position]
        if isinstance(expression, BoundParameterRef):
            value = self._parameter_value(expression)
            return Vector.constant(value, count, expression.return_type)
        if isinstance(expression, BoundCast):
            return cast_vector(self.execute(expression.child, chunk),
                               expression.return_type)
        if isinstance(expression, BoundOperator):
            return self._execute_operator(expression, chunk)
        if isinstance(expression, BoundIsNull):
            child = self.execute(expression.child, chunk)
            data = child.validity.copy() if expression.negated else ~child.validity
            return Vector(BOOLEAN, data, np.ones(count, dtype=np.bool_))
        if isinstance(expression, BoundInList):
            return self._execute_in_list(expression, chunk)
        if isinstance(expression, BoundLike):
            return self._execute_like(expression, chunk)
        if isinstance(expression, BoundCase):
            return self._execute_case(expression, chunk)
        if isinstance(expression, BoundFunction):
            vectors = [self.execute(arg, chunk) for arg in expression.args]
            return expression.function(vectors, count)
        if isinstance(expression, BoundScalarSubquery):
            value = self._scalar_subquery_value(expression)
            return Vector.constant(value, count, expression.return_type)
        if isinstance(expression, BoundInSubquery):
            return self._execute_in_subquery(expression, chunk)
        if isinstance(expression, BoundExistsSubquery):
            exists = self._subquery_has_rows(expression.plan)
            result = exists != expression.negated
            return Vector.constant(result, count, BOOLEAN)
        if isinstance(expression, BoundAggregate):
            raise InternalError("Aggregate reached the expression executor; "
                                "it should have been rewritten by the binder")
        raise InternalError(f"Cannot execute expression {type(expression).__name__}")

    def _parameter_value(self, expression: BoundParameterRef) -> Any:
        """Current value of a late-bound parameter slot, cast to plan type."""
        context = self.context
        parameters = context.parameters if context is not None else None
        key = expression.key
        try:
            value = parameters[key]  # sequence (int key) or mapping (str key)
        except (KeyError, IndexError, TypeError):
            raise InternalError(
                f"No value bound for parameter {key!r} in this execution")
        return cast_scalar(value, expression.return_type)

    def execute_filter(self, predicate: BoundExpression,
                       chunk: DataChunk) -> np.ndarray:
        """Evaluate a predicate to a selection mask (NULL counts as False)."""
        result = self.execute(predicate, chunk)
        return result.data.astype(np.bool_, copy=False) & result.validity

    # -- operators ------------------------------------------------------------
    def _execute_operator(self, expression: BoundOperator,
                          chunk: DataChunk) -> Vector:
        op = expression.op
        if op in ("and", "or"):
            return self._execute_conjunction(expression, chunk)
        vectors = [self.execute(arg, chunk) for arg in expression.args]
        if op == "not":
            source = vectors[0]
            return Vector(BOOLEAN, ~source.data.astype(np.bool_, copy=False),
                          source.validity.copy())
        if op == "negate":
            source = vectors[0]
            return Vector(source.dtype, -source.data, source.validity.copy())
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return self._execute_comparison(op, vectors[0], vectors[1])
        if op == "concat":
            left, right = vectors
            validity = left.validity & right.validity
            data = np.empty(len(left), dtype=object)
            # Object-dtype "+" concatenates the whole masked vector in one
            # NumPy call instead of one Python-level call per value.
            data[validity] = left.data[validity] + right.data[validity]
            return Vector(expression.return_type, data, validity)
        if op in ("+", "-", "*", "/", "%"):
            return self._execute_arithmetic(op, vectors[0], vectors[1],
                                            expression.return_type)
        raise InternalError(f"Unknown operator {op!r}")

    def _execute_conjunction(self, expression: BoundOperator,
                             chunk: DataChunk) -> Vector:
        left = self.execute(expression.args[0], chunk)
        right = self.execute(expression.args[1], chunk)
        left_data = left.data.astype(np.bool_, copy=False)
        right_data = right.data.astype(np.bool_, copy=False)
        if expression.op == "and":
            # FALSE dominates NULL: the result is valid if both sides are
            # valid, or either side is a known FALSE.
            validity = ((left.validity & right.validity)
                        | (left.validity & ~left_data)
                        | (right.validity & ~right_data))
            data = (left_data | ~left.validity) & (right_data | ~right.validity)
            data &= validity
        else:
            # TRUE dominates NULL.
            validity = ((left.validity & right.validity)
                        | (left.validity & left_data)
                        | (right.validity & right_data))
            data = (left_data & left.validity) | (right_data & right.validity)
        return Vector(BOOLEAN, data, validity)

    def _execute_comparison(self, op: str, left: Vector, right: Vector) -> Vector:
        count = len(left)
        validity = left.validity & right.validity
        if left.dtype.id is LogicalTypeId.VARCHAR:
            data = np.zeros(count, dtype=np.bool_)
            compare = {
                "=": lambda a, b: a == b,
                "<>": lambda a, b: a != b,
                "<": lambda a, b: a < b,
                "<=": lambda a, b: a <= b,
                ">": lambda a, b: a > b,
                ">=": lambda a, b: a >= b,
            }[op]
            # NumPy comparisons work elementwise on object (string) arrays,
            # so the masked comparison runs as one bulk call.
            data[validity] = compare(left.data[validity], right.data[validity])
            return Vector(BOOLEAN, data, validity)
        with np.errstate(invalid="ignore"):
            if op == "=":
                data = left.data == right.data
            elif op == "<>":
                data = left.data != right.data
            elif op == "<":
                data = left.data < right.data
            elif op == "<=":
                data = left.data <= right.data
            elif op == ">":
                data = left.data > right.data
            else:
                data = left.data >= right.data
        return Vector(BOOLEAN, np.asarray(data, dtype=np.bool_) & validity, validity)

    def _execute_arithmetic(self, op: str, left: Vector, right: Vector,
                            return_type) -> Vector:
        validity = left.validity & right.validity
        target_dtype = return_type.numpy_dtype
        left_data = left.data.astype(target_dtype, copy=False)
        right_data = right.data.astype(target_dtype, copy=False)
        with np.errstate(all="ignore"):
            if op == "+":
                data = left_data + right_data
            elif op == "-":
                data = left_data - right_data
            elif op == "*":
                data = left_data * right_data
            elif op == "/":
                # SQL: division by zero yields NULL rather than an error or inf.
                zero = right_data == 0
                data = np.divide(left_data, np.where(zero, 1, right_data))
                validity = validity & ~zero
            else:  # modulo
                zero = right_data == 0
                data = np.mod(left_data, np.where(zero, 1, right_data))
                validity = validity & ~zero
        data = np.asarray(data, dtype=target_dtype)
        if not validity.all():
            data = data.copy()
            data[~validity] = 0
        return Vector(return_type, data, validity)

    # -- IN / LIKE / CASE ---------------------------------------------------------
    def _in_semantics(self, child: Vector, matched: np.ndarray,
                      any_null_item: bool, negated: bool) -> Vector:
        """SQL IN three-valued logic given a raw match mask."""
        # TRUE where matched; NULL where not matched but child is NULL or the
        # list contains a NULL; FALSE otherwise.
        validity = child.validity.copy()
        if any_null_item:
            validity &= matched  # unmatched becomes NULL
        data = matched & child.validity
        if negated:
            data = ~data & validity
        else:
            data = data & validity
        return Vector(BOOLEAN, data, validity)

    def _execute_in_list(self, expression: BoundInList, chunk: DataChunk) -> Vector:
        child = self.execute(expression.child, chunk)
        items = [self.execute(item, chunk) for item in expression.items]
        count = len(child)
        matched = np.zeros(count, dtype=np.bool_)
        any_null_item = False
        for item in items:
            if not item.validity.all():
                any_null_item = True
            equal = self._execute_comparison("=", child, item)
            matched |= equal.data & equal.validity
        return self._in_semantics(child, matched, any_null_item, expression.negated)

    def _like_regex(self, pattern: str, case_insensitive: bool,
                    escape: Optional[str] = None):
        from ..functions.scalar import like_to_regex

        key = (pattern, case_insensitive, escape)
        regex = self._like_cache.get(key)
        if regex is None:
            flags = re.DOTALL | (re.IGNORECASE if case_insensitive else 0)
            regex = re.compile(like_to_regex(pattern, escape), flags)
            self._like_cache[key] = regex
        return regex

    def _execute_like(self, expression: BoundLike, chunk: DataChunk) -> Vector:
        child = self.execute(expression.child, chunk)
        pattern = self.execute(expression.pattern, chunk)
        escape = self.execute(expression.escape, chunk) \
            if expression.escape is not None else None
        count = len(child)
        validity = child.validity & pattern.validity
        if escape is not None:
            validity = validity & escape.validity
        data = np.zeros(count, dtype=np.bool_)
        # Per-row regex matching has no NumPy bulk primitive; the compiled-
        # pattern cache amortizes the dominant cost (compilation).
        for index in np.flatnonzero(validity):  # quacklint: disable=QLV001
            regex = self._like_regex(
                pattern.data[index], expression.case_insensitive,
                escape.data[index] if escape is not None else None)
            data[index] = regex.match(child.data[index]) is not None
        if expression.negated:
            data = ~data & validity
        return Vector(BOOLEAN, data, validity)

    def _execute_case(self, expression: BoundCase, chunk: DataChunk) -> Vector:
        count = chunk.size
        result = self.execute(expression.else_result, chunk).copy()
        decided = np.zeros(count, dtype=np.bool_)
        for condition, branch in expression.whens:
            condition_vector = self.execute(condition, chunk)
            take = (condition_vector.data.astype(np.bool_, copy=False)
                    & condition_vector.validity & ~decided)
            if take.any():
                branch_vector = self.execute(branch, chunk)
                result.data[take] = branch_vector.data[take]
                result.validity[take] = branch_vector.validity[take]
            decided |= take
        return result

    # -- subqueries -----------------------------------------------------------------
    def _require_context(self):
        if self.context is None:
            raise InternalError("Subquery evaluation requires an execution context")
        return self.context

    def _scalar_subquery_value(self, expression: BoundScalarSubquery) -> Any:
        context = self._require_context()
        rows = context.materialize_subquery(expression.plan)
        if rows.size == 0:
            return None
        if rows.size > 1:
            raise InvalidInputError(
                f"Scalar subquery returned {rows.size} rows (expected at most 1)"
            )
        return rows.columns[0].get_value(0)

    def _subquery_has_rows(self, plan) -> bool:
        context = self._require_context()
        return context.materialize_subquery(plan).size > 0

    def _execute_in_subquery(self, expression: BoundInSubquery,
                             chunk: DataChunk) -> Vector:
        context = self._require_context()
        child = self.execute(expression.child, chunk)
        materialized = context.materialize_subquery(expression.plan)
        column = materialized.columns[0] if materialized.columns else None
        if column is None or len(column) == 0:
            matched = np.zeros(len(child), dtype=np.bool_)
            return self._in_semantics(child, matched, False, expression.negated)
        any_null = not column.all_valid()
        valid_values = column.data[column.validity]
        if child.dtype.id is LogicalTypeId.VARCHAR:
            value_set = set(valid_values.tolist())
            matched = np.zeros(len(child), dtype=np.bool_)
            # Hash-set probes beat np.isin's sort-based path for strings;
            # there is no NumPy bulk primitive over a Python set.
            for index in np.flatnonzero(child.validity):  # quacklint: disable=QLV001
                matched[index] = child.data[index] in value_set
        else:
            matched = np.isin(child.data, valid_values)
            matched &= child.validity
        return self._in_semantics(child, matched, any_null, expression.negated)


def evaluate_standalone(expression: BoundExpression) -> Any:
    """Evaluate a column-free expression to a single Python value."""
    executor = ExpressionExecutor()
    dummy = DataChunk([Vector.from_values([True])])
    result = executor.execute(expression, dummy)
    return result.get_value(0)
