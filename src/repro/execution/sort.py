"""Sorting: vectorized in-memory sort and an external (run-merging) sorter.

ORDER BY materializes its input; when the input exceeds the sort's memory
budget, it is split into sorted *runs* (each buffered through a compressed /
spillable :class:`~repro.execution.intermediates.ChunkBuffer`) which are
lazily merged pairwise into one sorted stream.  Merging never materializes
more than a few chunks at a time -- this is the out-of-core machinery that
also powers the external merge join of the paper's §6 trade-off.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from ..errors import InternalError
from ..planner.logical import BoundOrderByItem
from ..types import DataChunk, LogicalTypeId, VECTOR_SIZE
from .expression_executor import ExpressionExecutor
from .intermediates import ChunkBuffer
from .physical import ExecutionContext, PhysicalOperator

__all__ = ["SortKey", "sort_order", "ExternalSorter", "PhysicalOrder",
           "PhysicalTopN"]


class SortKey:
    """One sort key: a column position plus direction and NULL placement."""

    __slots__ = ("position", "ascending", "nulls_first")

    def __init__(self, position: int, ascending: bool = True,
                 nulls_first: bool = False) -> None:
        self.position = position
        self.ascending = ascending
        self.nulls_first = nulls_first


def _sort_codes(chunk: DataChunk, key: SortKey) -> np.ndarray:
    """Comparable int64 codes for one key column, honoring direction/NULLs.

    Values are mapped to order-preserving integer codes so that every type
    (including VARCHAR) sorts with the same integer machinery, descending
    order is just code reversal, and NULLs get a code outside the valid
    range.  Integer-family columns skip the ``np.unique`` sort entirely
    (their values already *are* order-preserving codes).
    """
    column = chunk.columns[key.position]
    count = len(column)
    if column.dtype.id is LogicalTypeId.VARCHAR:
        data = column.data.copy()
        for index in np.flatnonzero(~column.validity):
            data[index] = ""
        _, codes = np.unique(data, return_inverse=True)
        codes = codes.astype(np.int64).reshape(-1)
        distinct = int(codes.max()) + 1 if count else 1
    elif column.dtype.numpy_dtype.kind in "ib" and count \
            and int(column.data.max()) - int(column.data.min()) < (1 << 62):
        # Values offset to non-negative are already order-preserving codes.
        low = int(column.data.min())
        codes = column.data.astype(np.int64) - low
        distinct = int(codes.max()) + 1
    else:
        _, codes = np.unique(column.data, return_inverse=True)
        codes = codes.astype(np.int64).reshape(-1)
        distinct = int(codes.max()) + 1 if count else 1
    if not key.ascending:
        codes = (distinct - 1) - codes
    null_code = -1 if key.nulls_first else distinct
    return np.where(column.validity, codes, null_code)


def sort_order(chunk: DataChunk, keys: List[SortKey]) -> np.ndarray:
    """The stable permutation that sorts ``chunk`` by ``keys``."""
    if chunk.size == 0:
        return np.zeros(0, dtype=np.int64)
    code_arrays = [_sort_codes(chunk, key) for key in keys]
    # np.lexsort sorts by the LAST array first; pass keys reversed.
    return np.lexsort(tuple(reversed(code_arrays))).astype(np.int64)


class ExternalSorter:
    """Accumulate chunks, emit them fully sorted; spills into runs.

    ``run_limit_bytes`` bounds the raw bytes sorted in one in-memory run;
    it defaults to a quarter of the context's memory limit.
    """

    def __init__(self, types, keys: List[SortKey], context: Optional[ExecutionContext],
                 run_limit_bytes: Optional[int] = None) -> None:
        self.types = list(types)
        self.keys = keys
        self.context = context
        if run_limit_bytes is None:
            limit = context.memory_limit if context is not None else 1 << 62
            run_limit_bytes = max(limit // 4, 1 << 20)
        self.run_limit_bytes = run_limit_bytes
        self._pending: List[DataChunk] = []
        self._pending_bytes = 0
        self._runs: List[ChunkBuffer] = []
        self.row_count = 0

    def append(self, chunk: DataChunk) -> None:
        if chunk.size == 0:
            return
        self._pending.append(chunk)
        self._pending_bytes += chunk.nbytes()
        self.row_count += chunk.size
        if self._pending_bytes >= self.run_limit_bytes:
            self._flush_run()

    def _flush_run(self) -> None:
        if not self._pending:
            return
        block = DataChunk.concat_many(self._pending) if len(self._pending) > 1 \
            else self._pending[0]
        order = sort_order(block, self.keys)
        sorted_block = block.slice(order)
        run = ChunkBuffer(self.types, self.context, "sort run")
        for piece in sorted_block.split(VECTOR_SIZE):
            run.append(piece)
        self._runs.append(run)
        self._pending = []
        self._pending_bytes = 0

    @property
    def spilled(self) -> bool:
        return len(self._runs) > 1 or (bool(self._runs) and bool(self._pending))

    def sorted_chunks(self) -> Iterator[DataChunk]:
        """Yield all appended rows in sorted order, then free resources."""
        self._flush_run()
        if not self._runs:
            return
        try:
            streams = [run.scan() for run in self._runs]
            # Balanced pairwise merge tree over the sorted runs.
            while len(streams) > 1:
                merged = []
                for index in range(0, len(streams) - 1, 2):
                    merged.append(self._merge_two(streams[index],
                                                  streams[index + 1]))
                if len(streams) % 2:
                    merged.append(streams[-1])
                streams = merged
            yield from streams[0]
        finally:
            for run in self._runs:
                run.close()
            self._runs = []

    def _merge_two(self, stream_a: Iterator[DataChunk],
                   stream_b: Iterator[DataChunk]) -> Iterator[DataChunk]:
        """Merge two sorted chunk streams into one, a few chunks at a time.

        Invariant per round: concatenate the two current chunks, sort the
        pair, and emit the prefix up to the earlier of the two chunks' last
        rows -- everything in that prefix is <= anything either stream can
        still produce.  The remainder carries over, and the stream whose
        last row was emitted is refilled.
        """
        current_a = next(stream_a, None)
        current_b = next(stream_b, None)
        while current_a is not None and current_b is not None:
            if current_a.size == 0:
                current_a = next(stream_a, None)
                continue
            if current_b.size == 0:
                current_b = next(stream_b, None)
                continue
            pair = DataChunk.concat_many([current_a, current_b])
            order = sort_order(pair, self.keys)
            positions = np.empty(pair.size, dtype=np.int64)
            positions[order] = np.arange(pair.size)
            last_a_position = positions[current_a.size - 1]
            last_b_position = positions[pair.size - 1]
            boundary = int(min(last_a_position, last_b_position))
            sorted_pair = pair.slice(order)
            emit = sorted_pair.slice(np.arange(0, boundary + 1))
            for piece in emit.split(VECTOR_SIZE):
                yield piece
            carry = sorted_pair.slice(np.arange(boundary + 1, pair.size))
            if last_a_position <= last_b_position:
                current_a = next(stream_a, None)
                current_b = carry
            else:
                current_b = next(stream_b, None)
                current_a = carry
        remainder = current_a if current_a is not None else current_b
        if remainder is not None and remainder.size:
            for piece in remainder.split(VECTOR_SIZE):
                yield piece
        leftover_stream = stream_a if current_a is not None else stream_b
        for chunk in leftover_stream:
            if chunk.size:
                for piece in chunk.split(VECTOR_SIZE):
                    yield piece


class PhysicalOrder(PhysicalOperator):
    """ORDER BY: externally sorts its entire input."""

    def __init__(self, context: ExecutionContext, child: PhysicalOperator,
                 items: List[BoundOrderByItem]) -> None:
        super().__init__(context, [child], child.types, child.names)
        self.items = items

    def execute(self) -> Iterator[DataChunk]:
        child = self.children[0]
        executor = ExpressionExecutor(self.context)
        # Order keys may be arbitrary expressions over the child's output;
        # compute them into hidden trailing columns so the sorter only ever
        # deals with column positions.
        width = len(child.types)
        key_types = [item.expression.return_type for item in self.items]
        keys = [SortKey(width + index, item.ascending, item.nulls_first)
                for index, item in enumerate(self.items)]
        sorter = ExternalSorter(list(child.types) + key_types, keys, self.context)
        for chunk in child.run():
            self.context.check_interrupted()
            key_vectors = [executor.execute(item.expression, chunk)
                           for item in self.items]
            sorter.append(DataChunk(list(chunk.columns) + key_vectors))
        if sorter.spilled:
            self.context.bump_stat("sort_spilled", 1)
        for chunk in sorter.sorted_chunks():
            self.context.check_interrupted()
            yield DataChunk(chunk.columns[:width])

    def _explain_line(self) -> str:
        return f"ORDER_BY ({len(self.items)} keys)"


class PhysicalTopN(PhysicalOperator):
    """Fused ORDER BY + LIMIT: keeps only the top N+offset rows resident."""

    def __init__(self, context: ExecutionContext, child: PhysicalOperator,
                 items: List[BoundOrderByItem], limit: int, offset: int) -> None:
        super().__init__(context, [child], child.types, child.names)
        self.items = items
        self.limit = limit
        self.offset = offset

    def execute(self) -> Iterator[DataChunk]:
        child = self.children[0]
        executor = ExpressionExecutor(self.context)
        width = len(child.types)
        keep = self.limit + self.offset
        if self.limit <= 0:
            return
        keys = [SortKey(width + index, item.ascending, item.nulls_first)
                for index, item in enumerate(self.items)]
        # Amortized heap-style accumulation: buffer incoming chunks and only
        # sort-and-truncate once the resident rows reach 2*keep.  Sorting
        # per chunk would be O(chunks * keep log keep); doubling before each
        # compaction keeps the total sort work O(rows log keep).
        best: Optional[DataChunk] = None
        pending: List[DataChunk] = []
        pending_rows = 0

        def compact() -> Optional[DataChunk]:
            block = DataChunk.concat_many(
                ([best] if best is not None else []) + pending)
            pending.clear()
            if block.size > keep:
                self.context.bump_stat("topn_sorts", 1)
                order = sort_order(block, keys)[:keep]
                block = block.slice(order)
            return block

        for chunk in child.run():
            self.context.check_interrupted()
            key_vectors = [executor.execute(item.expression, chunk)
                           for item in self.items]
            pending.append(DataChunk(list(chunk.columns) + key_vectors))
            pending_rows += chunk.size
            if (best.size if best is not None else 0) + pending_rows \
                    >= 2 * keep:
                best = compact()
                pending_rows = 0
        if pending:
            best = compact()
        if best is None or best.size <= self.offset:
            return
        self.context.bump_stat("topn_sorts", 1)
        order = sort_order(best, keys)
        selected = order[self.offset:self.offset + self.limit]
        result = best.slice(selected)
        for piece in DataChunk(result.columns[:width]).split(VECTOR_SIZE):
            yield piece

    def _explain_line(self) -> str:
        return f"TOP_N limit={self.limit} offset={self.offset}"
