"""Physical operator base classes and the execution context.

Physical operators implement the paper's "Vector Volcano" model (§6):
execution pulls chunks from the root; each operator recursively pulls from
its children.  In Python the pull loop is a generator chain -- each
operator's :meth:`execute` yields :class:`~repro.types.chunk.DataChunk`\\ s.
The client result object simply iterates the root generator, which is
exactly the paper's "the client application becomes the root operator".
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..errors import InterruptError
from ..observability import get_tracer
from ..sanitizer import SanLock, tracked_access
from ..types import DataChunk, LogicalType

__all__ = ["PhysicalOperator", "ExecutionContext"]


class ExecutionContext:
    """Per-query execution state shared by all operators of one plan."""

    def __init__(self, transaction, database=None, parameters=None,
                 config=None) -> None:
        self.transaction = transaction
        self.database = database
        #: Late-bound parameter values for BoundParameterRef slots: a
        #: sequence for qmark parameters, a mapping for named parameters.
        self.parameters = parameters if parameters is not None else ()
        #: Effective configuration for this query.  Usually the database's
        #: config object itself, but a server session passes its own copy
        #: here so session-scoped PRAGMAs (threads, memory_limit,
        #: morsel_size) and admission quotas apply per query without
        #: mutating global state.
        self.config = config if config is not None \
            else (database.config if database is not None else None)
        #: The quacktrace tracer, or None while tracing is disabled.  The
        #: hot path (PhysicalOperator.run) pays one ``is None`` test;
        #: EXPLAIN ANALYZE swaps in a private, forced tracer per query.
        self.tracer = get_tracer()
        #: Uncorrelated subqueries are evaluated once and cached by plan id.
        self._subquery_results = {}
        #: Set (from any thread) to interrupt the query.  Morsel workers poll
        #: this flag between chunks, so an interrupt propagates into the
        #: worker pool of a parallel pipeline as well.
        self.interrupted = False
        #: Statistics filled during execution (rows scanned, spills, ...).
        #: Guarded by ``_stats_lock``: parallel pipeline workers bump stats
        #: concurrently.
        self.stats = {}
        self._stats_lock = SanLock("operator_stats")
        #: True while ``create_physical_plan`` is lowering this query's
        #: tree, so the recursive per-child calls know they are not the
        #: root (only the root lowering is verified by quackplan).
        #: Coordinator-only, like the subquery cache: plans are lowered
        #: before morsel workers exist, and subquery lowerings happen on
        #: the coordinator (``materialize_subquery``).
        self.lowering_active = False

    @property
    def buffer_manager(self):
        return self.database.buffer_manager if self.database is not None else None

    @property
    def controller(self):
        """The reactive resource controller (cooperation, Figure 1)."""
        return self.database.resource_controller if self.database is not None else None

    @property
    def memory_limit(self) -> int:
        if self.config is not None:
            return self.config.memory_limit
        return 1 << 62

    def check_interrupted(self) -> None:
        if self.interrupted:
            raise InterruptError("Query execution was interrupted")

    def materialize_subquery(self, plan) -> DataChunk:
        """Run an uncorrelated subquery plan once; cache the materialization.

        Coordinator-only by design: pipelines containing subqueries never
        parallelize (see ``expressions_parallel_safe``).  The RaceSan probe
        declares the cache lock-free, so any overlap -- i.e. a future change
        that lets a worker thread in here -- is reported as a race.
        """
        key = id(plan)
        with tracked_access(("subquery_cache", id(self)), True, None):
            return self._materialize_subquery(plan, key)

    def _materialize_subquery(self, plan, key) -> DataChunk:
        if key not in self._subquery_results:
            from .physical_planner import create_physical_plan

            physical = create_physical_plan(plan, self)
            chunks = [chunk for chunk in physical.run() if chunk.size]
            if chunks:
                result = DataChunk.concat_many(chunks)
            else:
                from ..types import Vector

                result = DataChunk([Vector.empty(dtype, 0) for dtype in plan.types])
            self._subquery_results[key] = result
        return self._subquery_results[key]

    def bump_stat(self, name: str, amount: int = 1) -> None:
        with self._stats_lock, tracked_access(("operator_stats", id(self)),
                                              True, self._stats_lock):
            self.stats[name] = self.stats.get(name, 0) + amount

    def max_stat(self, name: str, value: int) -> None:
        """Record the high-water mark of a statistic (e.g. workers used)."""
        with self._stats_lock, tracked_access(("operator_stats", id(self)),
                                              True, self._stats_lock):
            if value > self.stats.get(name, 0):
                self.stats[name] = value


class PhysicalOperator:
    """Base class: children, output types, and a chunk generator."""

    #: Optimizer cardinality estimate, copied from the logical operator by
    #: the physical planner; EXPLAIN ANALYZE compares it to actual rows.
    estimated_rows: Optional[float] = None
    #: True when the estimate leaned on column statistics marked stale
    #: (rows changed since the last recompute); copied from the logical
    #: operator so EXPLAIN can flag it.
    estimate_stale: bool = False

    def __init__(self, context: ExecutionContext,
                 children: List["PhysicalOperator"],
                 types: List[LogicalType], names: Optional[List[str]] = None) -> None:
        self.context = context
        self.children = children
        self.types = types
        self.names = names or [f"col{i}" for i in range(len(types))]

    def execute(self) -> Iterator[DataChunk]:
        """Yield result chunks; must be overridden."""
        raise NotImplementedError

    def run(self) -> Iterator[DataChunk]:
        """Entry point callers use: ``execute()`` wrapped in a trace span.

        With tracing disabled this *is* ``execute()`` -- no wrapper
        generator, no allocation, just one ``is None`` test per operator
        per query.  With tracing enabled the chunk stream is accounted to
        an operator span whose parent is the span current at call time
        (the parent operator's span, a morsel span on a worker thread, or
        the query root span).
        """
        tracer = self.context.tracer
        if tracer is None:
            return self.execute()
        return tracer.trace_operator(self, tracer.current())

    def explain(self, indent: int = 0) -> str:
        line = " " * indent + self._explain_line()
        if self.estimated_rows is not None:
            stale = ", stale" if self.estimate_stale else ""
            line += f" (est={int(round(self.estimated_rows))} rows{stale})"
        parts = [line]
        for child in self.children:
            parts.append(child.explain(indent + 2))
        return "\n".join(parts)

    def _explain_line(self) -> str:
        return type(self).__name__
