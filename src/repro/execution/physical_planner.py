"""Lowers optimized logical plans onto physical Vector Volcano operators.

The one genuinely physical decision made here is the join implementation:
equi-joins default to the RAM-hungry hash join, but when the reactive
controller reports memory pressure (or the build estimate exceeds the
limit), eligible joins lower to the out-of-core merge join instead --
the paper's §6 hash-vs-merge trade-off, decided per query at plan time.
"""

from __future__ import annotations

from typing import Optional

from ..errors import InternalError
from ..planner.window import LogicalWindow
from ..planner.logical import (
    LogicalAggregate,
    LogicalCSVScan,
    LogicalDistinct,
    LogicalEmpty,
    LogicalFilter,
    LogicalGet,
    LogicalIntrospectionScan,
    LogicalJoin,
    LogicalLimit,
    LogicalOperator,
    LogicalOrder,
    LogicalProjection,
    LogicalSetOp,
    LogicalValues,
)
from ..verifier import active_verifier
from .aggregate import (
    PhysicalDistinct,
    PhysicalHashAggregate,
    PhysicalSetOp,
    aggregate_supports_partial,
)
from .basic import PhysicalFilter, PhysicalLimit, PhysicalProjection
from .joins import PhysicalHashJoin, PhysicalMergeJoin, PhysicalNestedLoopJoin
from .parallel import (
    MORSEL_ROWS,
    PhysicalParallelHashAggregate,
    PhysicalParallelTableScan,
    aligned_morsel_rows,
    expressions_parallel_safe,
    plan_worker_count,
)
from .physical import ExecutionContext, PhysicalOperator
from .scan import (
    PhysicalCSVScan,
    PhysicalEmptyResult,
    PhysicalIntrospectionScan,
    PhysicalTableScan,
    PhysicalValues,
)
from .sort import PhysicalOrder, PhysicalTopN

__all__ = ["create_physical_plan"]

#: Per-row byte estimate used for the join build-size heuristic.
_ESTIMATED_ROW_BYTES = 16


def _estimate_build_bytes(plan: LogicalOperator) -> int:
    """Cardinality-based estimate of a join build side's footprint.

    Prefers the optimizer's statistics-driven ``estimated_rows`` annotation;
    the structural fallbacks below cover unannotated plans (tests, direct
    lowering)."""
    estimated = getattr(plan, "estimated_rows", None)
    if estimated is not None:
        return int(estimated) * len(plan.schema) * _ESTIMATED_ROW_BYTES
    if isinstance(plan, LogicalGet):
        rows = plan.table_entry.data.row_count
        return rows * len(plan.schema) * _ESTIMATED_ROW_BYTES
    if isinstance(plan, (LogicalFilter,)):
        return _estimate_build_bytes(plan.children[0]) // 3
    if isinstance(plan, LogicalLimit) and plan.limit is not None:
        return plan.limit * len(plan.schema) * _ESTIMATED_ROW_BYTES
    if plan.children:
        return max(_estimate_build_bytes(child) for child in plan.children)
    return 0


def _merge_join_eligible(op: LogicalJoin) -> bool:
    return len(op.conditions) == 1 and op.join_type in ("inner", "left")


# -- morsel-driven parallel lowering ------------------------------------------

def _morsel_rows(context: ExecutionContext) -> int:
    if context.config is not None:
        return aligned_morsel_rows(
            getattr(context.config, "morsel_size", MORSEL_ROWS))
    return MORSEL_ROWS


def _scan_pipeline(plan: LogicalOperator):
    """Unwrap a Filter*/Projection* chain over a base-table scan.

    Returns ``(ops_top_down, get)`` when ``plan`` is such a chain, otherwise
    ``(None, None)``.  These are exactly the pipeline shapes whose fragments
    can run per-morsel on workers.
    """
    ops = []
    node = plan
    while isinstance(node, (LogicalFilter, LogicalProjection)):
        ops.append(node)
        node = node.children[0]
    if not isinstance(node, LogicalGet):
        return None, None
    return ops, node


def _try_parallel_aggregate(plan: LogicalAggregate,
                            context: ExecutionContext
                            ) -> Optional[PhysicalOperator]:
    """Lower an aggregate over a scan pipeline to its morsel-parallel form.

    Eligibility: more than one worker granted, more than one morsel of input,
    every aggregate decomposes into partial states (no DISTINCT), and no
    expression anywhere in the pipeline contains a subquery (the subquery
    materialization cache is coordinator-only state).
    """
    workers = plan_worker_count(context)
    if workers <= 1:
        return None
    ops, get = _scan_pipeline(plan.children[0])
    if get is None:
        return None
    morsel_rows = _morsel_rows(context)
    if get.table_entry.data.row_count <= morsel_rows:
        return None
    if not all(aggregate_supports_partial(aggregate)
               for aggregate in plan.aggregates):
        return None
    expressions = list(plan.groups) + list(get.pushed_filters)
    for aggregate in plan.aggregates:
        expressions.extend(aggregate.args)
    for op in ops:
        if isinstance(op, LogicalFilter):
            expressions.append(op.predicate)
        else:
            expressions.extend(op.expressions)
    if not expressions_parallel_safe(expressions):
        return None

    def fragment_factory(row_range):
        node: PhysicalOperator = PhysicalTableScan(
            context, get.table_entry, get.column_ids, get.types, get.names,
            get.pushed_filters, row_range=row_range)
        for op in reversed(ops):
            if isinstance(op, LogicalFilter):
                node = PhysicalFilter(context, node, op.predicate)
            else:
                node = PhysicalProjection(context, node, op.expressions,
                                          op.names)
        return node

    return PhysicalParallelHashAggregate(
        context, get.table_entry.data, fragment_factory, plan.groups,
        plan.aggregates, plan.types, plan.names, workers, morsel_rows)


def create_physical_plan(plan: LogicalOperator,
                         context: ExecutionContext) -> PhysicalOperator:
    """Lower a logical operator tree, carrying the optimizer's cardinality
    estimates onto the physical operators (for EXPLAIN ANALYZE spans).

    Recursive: ``_lower`` calls back in here per child.  Only the outermost
    call is a *root* lowering -- that is the one quackplan verifies (when
    ``config.verify_plans`` is on), including subquery plans lowered
    mid-execution by ``materialize_subquery``, which re-enter at depth 0.
    """
    root = not context.lowering_active
    context.lowering_active = True
    try:
        physical = _lower(plan, context)
    finally:
        if root:
            context.lowering_active = False
    if physical.estimated_rows is None:
        physical.estimated_rows = plan.estimated_rows
    if plan.estimate_stale and not physical.estimate_stale:
        physical.estimate_stale = True
    if root:
        verifier = active_verifier(context.database)
        if verifier is not None:
            verifier.check_lowering(plan, physical)
    return physical


def _lower(plan: LogicalOperator,
           context: ExecutionContext) -> PhysicalOperator:
    """Recursively lower a logical operator tree."""
    if isinstance(plan, LogicalGet):
        workers = plan_worker_count(context)
        morsel_rows = _morsel_rows(context)
        # A limit hint means only a handful of rows are needed: a serial
        # scan that stops early beats spinning up workers that each fetch
        # a full morsel.
        if (workers > 1
                and plan.limit_hint is None
                and plan.table_entry.data.row_count > morsel_rows
                and expressions_parallel_safe(plan.pushed_filters)):
            return PhysicalParallelTableScan(
                context, plan.table_entry, plan.column_ids, plan.types,
                plan.names, plan.pushed_filters, worker_count=workers,
                morsel_rows=morsel_rows)
        return PhysicalTableScan(context, plan.table_entry, plan.column_ids,
                                 plan.types, plan.names, plan.pushed_filters,
                                 limit_hint=plan.limit_hint)
    if isinstance(plan, LogicalCSVScan):
        return PhysicalCSVScan(context, plan.path, plan.options, plan.types,
                               plan.names)
    if isinstance(plan, LogicalIntrospectionScan):
        return PhysicalIntrospectionScan(context, plan.function, plan.types,
                                         plan.names)
    if isinstance(plan, LogicalValues):
        return PhysicalValues(context, plan.rows, plan.types, plan.names)
    if isinstance(plan, LogicalEmpty):
        return PhysicalEmptyResult(context, [], plan.types, plan.names)
    if isinstance(plan, LogicalFilter):
        child = create_physical_plan(plan.children[0], context)
        return PhysicalFilter(context, child, plan.predicate)
    if isinstance(plan, LogicalProjection):
        child = create_physical_plan(plan.children[0], context)
        projection = PhysicalProjection(context, child, plan.expressions,
                                        plan.names)
        if isinstance(plan.children[0], LogicalFilter):
            # Filter->project chains whose kernels all satisfy the fusion
            # contract (kernel capability manifest: pure, thread-safe,
            # vectorized, NULL-checked) are marked fusable for EXPLAIN.
            # Imported lazily: the analysis layer must not load during
            # ordinary query execution.
            from ..analysis.kernelcheck import expression_chain_fusable

            chain = list(plan.expressions) + [plan.children[0].predicate]
            if expression_chain_fusable(chain):
                projection.fusable = True
        return projection
    if isinstance(plan, LogicalAggregate):
        parallel = _try_parallel_aggregate(plan, context)
        if parallel is not None:
            return parallel
        child = create_physical_plan(plan.children[0], context)
        return PhysicalHashAggregate(context, child, plan.groups, plan.aggregates,
                                     plan.types, plan.names)
    if isinstance(plan, LogicalDistinct):
        child = create_physical_plan(plan.children[0], context)
        return PhysicalDistinct(context, child)
    if isinstance(plan, LogicalWindow):
        from .window import PhysicalWindow

        child = create_physical_plan(plan.children[0], context)
        return PhysicalWindow(context, child, plan.windows, plan.types,
                              plan.names)
    if isinstance(plan, LogicalOrder):
        child = create_physical_plan(plan.children[0], context)
        return PhysicalOrder(context, child, plan.items)
    if isinstance(plan, LogicalLimit):
        # Fuse ORDER BY + LIMIT into Top-N: only limit+offset rows stay resident.
        child_logical = plan.children[0]
        if isinstance(child_logical, LogicalOrder) and plan.limit is not None:
            grandchild = create_physical_plan(child_logical.children[0], context)
            return PhysicalTopN(context, grandchild, child_logical.items,
                                plan.limit, plan.offset)
        child = create_physical_plan(plan.children[0], context)
        return PhysicalLimit(context, child, plan.limit, plan.offset)
    if isinstance(plan, LogicalSetOp):
        left = create_physical_plan(plan.children[0], context)
        right = create_physical_plan(plan.children[1], context)
        return PhysicalSetOp(context, left, right, plan.op, plan.all,
                             plan.types, plan.names)
    if isinstance(plan, LogicalJoin):
        left = create_physical_plan(plan.children[0], context)
        right = create_physical_plan(plan.children[1], context)
        if plan.join_type == "cross" or not plan.conditions:
            return PhysicalNestedLoopJoin(context, left, right,
                                          "inner" if plan.join_type == "cross"
                                          else plan.join_type,
                                          [], plan.residual)
        algorithm = "hash"
        if _merge_join_eligible(plan):
            estimate = _estimate_build_bytes(plan.children[1])
            # The hard memory limit overrides everything: a build side that
            # cannot fit must take the out-of-core path (paper §4: the user
            # sets hard limits; the engine must respect them).
            if estimate > context.memory_limit:
                algorithm = "merge"
            elif context.controller is not None:
                algorithm = context.controller.choose_join_algorithm(estimate)
        if algorithm == "merge" and _merge_join_eligible(plan):
            context.bump_stat("merge_joins", 1)
            return PhysicalMergeJoin(context, left, right, plan.join_type,
                                     plan.conditions, plan.residual)
        context.bump_stat("hash_joins", 1)
        return PhysicalHashJoin(context, left, right, plan.join_type,
                                plan.conditions, plan.residual)
    raise InternalError(f"Cannot lower logical operator {type(plan).__name__}")
