"""Join operators: hash join, external merge join, nested-loop join.

The pair the paper's cooperation section (§6) trades off:

*"a hash join can be transparently replaced with an out-of-core merge join.
The hash join uses a large amount of main memory to store the hash table,
but few CPU cycles ... The merge join requires fewer main memory resources
to run, but O(n log n) CPU cycles as well as disk IO."*

:class:`PhysicalHashJoin` materializes its build side (through a
compressible :class:`~repro.execution.intermediates.ChunkBuffer`) and probes
it fully vectorized.  :class:`PhysicalMergeJoin` externally sorts both
inputs and streams a windowed sorted merge, keeping only the active key
window resident.  The physical planner -- or the reactive controller at
run time -- picks between them based on memory pressure.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..errors import InternalError
from ..planner.expressions import BoundExpression
from ..planner.logical import JoinCondition
from ..types import DataChunk, VECTOR_SIZE, Vector
from .expression_executor import ExpressionExecutor
from .intermediates import ChunkBuffer
from .keys import BuildIndex
from .physical import ExecutionContext, PhysicalOperator
from .sort import ExternalSorter, SortKey

__all__ = ["PhysicalHashJoin", "PhysicalMergeJoin", "PhysicalNestedLoopJoin"]


def _null_extended(types, names, count: int) -> List[Vector]:
    return [Vector.empty(dtype, count) for dtype in types]


#: Probe-side batch size: the per-batch interpretation overhead of probing
#: (binary searches, slicing, chunk assembly) is amortized over many more
#: rows than one standard vector, without materializing the probe side.
_PROBE_BATCH_ROWS = 65536


def _batched(chunks, batch_rows: int = _PROBE_BATCH_ROWS):
    """Coalesce a chunk stream into batches of roughly ``batch_rows``."""
    pending: List[DataChunk] = []
    pending_rows = 0
    for chunk in chunks:
        if chunk.size == 0:
            continue
        pending.append(chunk)
        pending_rows += chunk.size
        if pending_rows >= batch_rows:
            yield pending[0] if len(pending) == 1 \
                else DataChunk.concat_many(pending)
            pending = []
            pending_rows = 0
    if pending:
        yield pending[0] if len(pending) == 1 else DataChunk.concat_many(pending)


def _emit_in_vectors(vectors: List[Vector], names: List[str]) -> Iterator[DataChunk]:
    chunk = DataChunk(vectors)
    for piece in chunk.split(VECTOR_SIZE):
        yield piece


class _JoinBase(PhysicalOperator):
    """Shared bookkeeping for binary joins (schema = left ++ right)."""

    def __init__(self, context: ExecutionContext, left: PhysicalOperator,
                 right: PhysicalOperator, join_type: str,
                 conditions: List[JoinCondition],
                 residual: Optional[BoundExpression]) -> None:
        types = list(left.types) + list(right.types)
        names = list(left.names) + list(right.names)
        super().__init__(context, [left, right], types, names)
        self.join_type = join_type
        self.conditions = conditions
        self.residual = residual
        self._executor = ExpressionExecutor(context)

    @property
    def left(self) -> PhysicalOperator:
        return self.children[0]

    @property
    def right(self) -> PhysicalOperator:
        return self.children[1]

    def _apply_residual(self, combined: DataChunk,
                        probe_positions: np.ndarray,
                        build_rows: np.ndarray):
        if self.residual is None or combined.size == 0:
            return combined, probe_positions, build_rows
        mask = self._executor.execute_filter(self.residual, combined)
        if mask.all():
            return combined, probe_positions, build_rows
        return combined.slice(mask), probe_positions[mask], build_rows[mask]


class PhysicalHashJoin(_JoinBase):
    """Equi-join with a materialized (RAM-resident) build side.

    The build side is the right child.  Build keys are factorized into a
    sorted code index; each probe chunk is matched with two binary searches
    and a vectorized expansion -- no per-row Python.
    """

    def execute(self) -> Iterator[DataChunk]:
        context = self.context
        # Build phase: materialize the right side through a ChunkBuffer so
        # the reactive controller can compress it under memory pressure.
        with ChunkBuffer(self.right.types, context, "hash join build") as buffer:
            for chunk in self.right.run():
                context.check_interrupted()
                buffer.append(chunk)
            build = buffer.materialize()
        context.bump_stat("join_build_rows", build.size)

        build_keys = [self._executor.execute(condition.right, build)
                      for condition in self.conditions]
        index = BuildIndex(build_keys) if build.size else None
        build_matched = np.zeros(build.size, dtype=np.bool_) \
            if self.join_type in ("right", "full") else None

        emit_unmatched_probe = self.join_type in ("left", "full")

        for probe in _batched(self.left.run()):
            context.check_interrupted()
            if probe.size == 0:
                continue
            if index is None:
                probe_positions = np.zeros(0, dtype=np.int64)
                build_rows = np.zeros(0, dtype=np.int64)
            else:
                probe_keys = [self._executor.execute(condition.left, probe)
                              for condition in self.conditions]
                probe_positions, build_rows = index.match(probe_keys)
            if probe_positions.size:
                left_part = probe.slice(probe_positions)
                right_part = build.slice(build_rows)
                combined = DataChunk(left_part.columns + right_part.columns)
                combined, probe_positions, build_rows = self._apply_residual(
                    combined, probe_positions, build_rows)
            else:
                combined = None
            matched_probe = np.zeros(probe.size, dtype=np.bool_)
            if combined is not None and combined.size:
                matched_probe[probe_positions] = True
                if build_matched is not None:
                    build_matched[build_rows] = True
                yield from _emit_in_vectors(combined.columns, self.names)
            if emit_unmatched_probe and not matched_probe.all():
                unmatched = probe.slice(~matched_probe)
                vectors = unmatched.columns + _null_extended(
                    self.right.types, self.right.names, unmatched.size)
                yield from _emit_in_vectors(vectors, self.names)

        if build_matched is not None and build.size and not build_matched.all():
            unmatched = build.slice(~build_matched)
            vectors = _null_extended(self.left.types, self.left.names,
                                     unmatched.size) + unmatched.columns
            yield from _emit_in_vectors(vectors, self.names)

    def _explain_line(self) -> str:
        return f"HASH_JOIN {self.join_type.upper()} eq={len(self.conditions)}"


class PhysicalMergeJoin(_JoinBase):
    """Out-of-core sort-merge join on a single equi-key.

    Both inputs are externally sorted on the key; the merge keeps only a
    window of right rows whose key is still joinable, so resident memory is
    O(duplicates + chunk), not O(input) -- the low-RAM/high-CPU end of the
    paper's trade-off.  Supports inner and left joins without residuals on
    the probe side semantics (the planner enforces eligibility).
    """

    def __init__(self, context, left, right, join_type, conditions, residual):
        super().__init__(context, left, right, join_type, conditions, residual)
        if len(conditions) != 1:
            raise InternalError("Merge join requires exactly one equi-condition")
        if join_type not in ("inner", "left"):
            raise InternalError(f"Merge join does not support {join_type} joins")

    def _sorted_side(self, child: PhysicalOperator, key_expr: BoundExpression):
        """Externally sort a child by its key; yields (chunk, key_vector)."""
        # The key is appended as an extra column so it sorts with the data.
        types = list(child.types) + [key_expr.return_type]
        sorter = ExternalSorter(
            types,
            [SortKey(len(child.types), ascending=True, nulls_first=False)],
            self.context,
        )
        for chunk in child.run():
            self.context.check_interrupted()
            key = self._executor.execute(key_expr, chunk)
            sorter.append(DataChunk(list(chunk.columns) + [key]))
        for chunk in sorter.sorted_chunks():
            key = chunk.columns[-1]
            yield DataChunk(chunk.columns[:-1]), key

    def execute(self) -> Iterator[DataChunk]:
        condition = self.conditions[0]
        left_stream = self._sorted_side(self.left, condition.left)
        right_stream = iter(self._sorted_side(self.right, condition.right))

        right_window: Optional[DataChunk] = None
        right_window_keys: Optional[Vector] = None
        right_exhausted = False
        pending_right: Optional[Tuple[DataChunk, Vector]] = None

        def pull_right():
            nonlocal pending_right, right_exhausted
            if pending_right is not None:
                out = pending_right
                pending_right = None
                return out
            try:
                return next(right_stream)
            except StopIteration:
                right_exhausted = True
                return None

        for left_chunk, left_keys in left_stream:
            if left_chunk.size == 0:
                continue
            left_valid = left_keys.validity
            # NULL keys sort last (nulls_first=False) and never match.
            lo_key = None
            hi_key = None
            valid_positions = np.flatnonzero(left_valid)
            if valid_positions.size:
                lo_key = left_keys.data[valid_positions[0]]
                hi_key = left_keys.data[valid_positions[-1]]

            # Advance the right window: drop rows below lo_key, pull rows <= hi_key.
            if hi_key is not None:
                while not right_exhausted:
                    item = pull_right()
                    if item is None:
                        break
                    chunk, keys = item
                    if chunk.size == 0:
                        continue
                    first_valid = np.flatnonzero(keys.validity)
                    if first_valid.size == 0:
                        continue  # all-NULL keys never match
                    if keys.data[first_valid[0]] > hi_key:
                        pending_right = item
                        break
                    # Keep only valid-key rows in the window.
                    kept = chunk.slice(keys.validity)
                    kept_keys = keys.slice(keys.validity)
                    if right_window is None:
                        right_window, right_window_keys = kept, kept_keys
                    else:
                        right_window = DataChunk.concat_many([right_window, kept])
                        right_window_keys = right_window_keys.concat(kept_keys)
                    last = right_window_keys.data[len(right_window_keys) - 1]
                    if last > hi_key:
                        break
            if right_window is not None and lo_key is not None:
                # Trim rows strictly below the left chunk's smallest key.
                cut = int(np.searchsorted(right_window_keys.data, lo_key, side="left"))
                if cut > 0:
                    keep = np.arange(cut, len(right_window_keys))
                    right_window = right_window.slice(keep)
                    right_window_keys = right_window_keys.slice(keep)

            # Match the left chunk against the window (both sorted).
            matched_left = np.zeros(left_chunk.size, dtype=np.bool_)
            if right_window is not None and right_window.size and hi_key is not None:
                window_keys = right_window_keys.data
                lo = np.searchsorted(window_keys, left_keys.data, side="left")
                hi = np.searchsorted(window_keys, left_keys.data, side="right")
                counts = hi - lo
                counts[~left_valid] = 0
                total = int(counts.sum())
                if total:
                    left_positions = np.repeat(
                        np.arange(left_chunk.size, dtype=np.int64), counts)
                    ends = np.cumsum(counts)
                    starts = ends - counts
                    within = np.arange(total, dtype=np.int64) \
                        - np.repeat(starts, counts)
                    window_positions = np.repeat(lo, counts) + within
                    left_part = left_chunk.slice(left_positions)
                    right_part = right_window.slice(window_positions)
                    combined = DataChunk(left_part.columns + right_part.columns)
                    combined, left_positions, _ = self._apply_residual(
                        combined, left_positions, window_positions)
                    if combined.size:
                        matched_left[left_positions] = True
                        yield from _emit_in_vectors(combined.columns, self.names)
            if self.join_type == "left" and not matched_left.all():
                unmatched = left_chunk.slice(~matched_left)
                vectors = unmatched.columns + _null_extended(
                    self.right.types, self.right.names, unmatched.size)
                yield from _emit_in_vectors(vectors, self.names)

    def _explain_line(self) -> str:
        return f"MERGE_JOIN {self.join_type.upper()}"


class PhysicalNestedLoopJoin(_JoinBase):
    """Block nested-loop join: cross products and non-equi conditions.

    The right side is materialized; each (left chunk x right chunk) block is
    expanded with repeat/tile and filtered by the predicate -- still
    vectorized per block, quadratic overall.
    """

    def execute(self) -> Iterator[DataChunk]:
        context = self.context
        with ChunkBuffer(self.right.types, context, "nl join build") as buffer:
            for chunk in self.right.run():
                context.check_interrupted()
                buffer.append(chunk)
            build = buffer.materialize()

        build_matched = np.zeros(build.size, dtype=np.bool_) \
            if self.join_type in ("right", "full") else None
        emit_unmatched_probe = self.join_type in ("left", "full")

        for probe in self.left.run():
            context.check_interrupted()
            if probe.size == 0:
                continue
            matched_probe = np.zeros(probe.size, dtype=np.bool_)
            if build.size:
                probe_positions = np.repeat(
                    np.arange(probe.size, dtype=np.int64), build.size)
                build_rows = np.tile(
                    np.arange(build.size, dtype=np.int64), probe.size)
                left_part = probe.slice(probe_positions)
                right_part = build.slice(build_rows)
                combined = DataChunk(left_part.columns + right_part.columns)
                combined, probe_positions, build_rows = self._apply_residual(
                    combined, probe_positions, build_rows)
                if combined.size:
                    matched_probe[probe_positions] = True
                    if build_matched is not None:
                        build_matched[build_rows] = True
                    yield from _emit_in_vectors(combined.columns, self.names)
            if emit_unmatched_probe and not matched_probe.all():
                unmatched = probe.slice(~matched_probe)
                vectors = unmatched.columns + _null_extended(
                    self.right.types, self.right.names, unmatched.size)
                yield from _emit_in_vectors(vectors, self.names)

        if build_matched is not None and build.size and not build_matched.all():
            unmatched = build.slice(~build_matched)
            vectors = _null_extended(self.left.types, self.left.names,
                                     unmatched.size) + unmatched.columns
            yield from _emit_in_vectors(vectors, self.names)

    def _explain_line(self) -> str:
        kind = "CROSS" if self.residual is None else "NL"
        return f"{kind}_JOIN {self.join_type.upper()}"
