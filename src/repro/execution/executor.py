"""Statement executor: runs bound statements against the database.

SELECTs lower to physical plans and stream chunks; DML statements drive the
transactional storage layer in bulk (whole chunks of inserts, updates, and
deletes at a time -- the paper's §2 requirement that ETL writes get bulk
granularity, not per-row OLTP treatment) and emit logical WAL records.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..catalog.entry import TableEntry, ViewEntry
from ..errors import (
    BinderError,
    CatalogError,
    ConstraintError,
    InternalError,
    InvalidInputError,
)
from ..optimizer import optimize
from ..planner import bound_statements as bound
from ..storage.table_data import TableData
from ..storage.wal import WALRecord
from ..types import (
    BIGINT,
    DataChunk,
    LogicalType,
    VARCHAR,
    Vector,
    cast_scalar,
    cast_vector,
)
from .expression_executor import ExpressionExecutor
from .physical import ExecutionContext
from .physical_planner import create_physical_plan

__all__ = ["Executor", "StatementResult"]


class StatementResult:
    """What one executed statement produced.

    Either a streaming chunk source (SELECT-like) or a completed effect
    with a row count (DML/DDL).  ``chunks`` is a generator for streaming
    results; the client layer decides whether to materialize it.
    """

    def __init__(self, names: List[str], types: List[LogicalType],
                 chunks: Optional[Iterator[DataChunk]] = None,
                 rowcount: int = -1) -> None:
        self.names = names
        self.types = types
        self.chunks = chunks if chunks is not None else iter(())
        self.rowcount = rowcount

    @classmethod
    def count_result(cls, count: int) -> "StatementResult":
        chunk = DataChunk([Vector.from_values([count], BIGINT)])
        return cls(["Count"], [BIGINT], iter([chunk]), rowcount=count)

    @classmethod
    def empty(cls) -> "StatementResult":
        return cls([], [], iter(()), rowcount=0)

    @classmethod
    def text_result(cls, name: str, lines: List[str]) -> "StatementResult":
        chunk = DataChunk([Vector.from_values(lines, VARCHAR)])
        return cls([name], [VARCHAR], iter([chunk]), rowcount=len(lines))


class Executor:
    """Executes bound statements within one transaction context."""

    def __init__(self, database, transaction, on_context=None, config=None,
                 parameters=None) -> None:
        self.database = database
        self.transaction = transaction
        #: Callback invoked with each fresh ExecutionContext -- the client
        #: layer hooks in here to support query interruption.
        self.on_context = on_context
        #: Effective configuration: the database's config unless a server
        #: session supplies its own copy (session PRAGMAs, admission quotas).
        self.config = config if config is not None else database.config
        #: Late-bound values for BoundParameterRef slots (plan-cache path).
        self.parameters = parameters

    def _context(self) -> ExecutionContext:
        context = ExecutionContext(self.transaction, self.database,
                                   parameters=self.parameters,
                                   config=self.config)
        if self.on_context is not None:
            self.on_context(context)
        return context

    # -- dispatch -----------------------------------------------------------
    def execute(self, statement: bound.BoundStatement) -> StatementResult:
        if isinstance(statement, bound.BoundSelect):
            return self.execute_select(statement)
        if isinstance(statement, bound.BoundInsert):
            return self.execute_insert(statement)
        if isinstance(statement, bound.BoundUpdate):
            return self.execute_update(statement)
        if isinstance(statement, bound.BoundDelete):
            return self.execute_delete(statement)
        if isinstance(statement, bound.BoundCreateTable):
            return self.execute_create_table(statement)
        if isinstance(statement, bound.BoundCreateView):
            return self.execute_create_view(statement)
        if isinstance(statement, bound.BoundDrop):
            return self.execute_drop(statement)
        if isinstance(statement, bound.BoundCopyFrom):
            return self.execute_copy_from(statement)
        if isinstance(statement, bound.BoundCopyTo):
            return self.execute_copy_to(statement)
        if isinstance(statement, bound.BoundPragma):
            return self.execute_pragma(statement)
        if isinstance(statement, bound.BoundExplain):
            return self.execute_explain(statement)
        raise InternalError(
            f"Executor cannot run {type(statement).__name__} "
            "(transaction control is handled by the connection)"
        )

    # -- SELECT ----------------------------------------------------------------
    def prepare_select(self, statement: bound.BoundSelect):
        """Optimize a bound SELECT once, returning the reusable logical plan.

        The returned plan is treated as read-only from here on: the plan
        cache shares it across concurrent executions, each of which lowers
        it into its own physical operator tree via :meth:`run_plan`.
        """
        return optimize(statement.plan, self.database)

    def run_plan(self, plan) -> StatementResult:
        """Lower an optimized logical plan and stream its chunks."""
        context = self._context()
        physical = create_physical_plan(plan, context)
        return StatementResult(plan.names, plan.types, physical.run())

    def execute_select(self, statement: bound.BoundSelect) -> StatementResult:
        return self.run_plan(self.prepare_select(statement))

    # -- INSERT -----------------------------------------------------------------
    def _check_not_null(self, table: TableEntry, chunk: DataChunk,
                        column_indices: Optional[List[int]] = None) -> None:
        indices = column_indices if column_indices is not None \
            else range(len(table.columns))
        for vector, index in zip(chunk.columns, indices):
            column = table.columns[index]
            if not column.nullable and not vector.all_valid():
                raise ConstraintError(
                    f"NOT NULL constraint violated: column "
                    f"{column.name!r} of table {table.name!r}"
                )

    def execute_insert(self, statement: bound.BoundInsert) -> StatementResult:
        table = statement.table
        plan = optimize(statement.source, self.database)
        context = self._context()
        physical = create_physical_plan(plan, context)
        wal_enabled = self.database.storage.wal.enabled
        inserted = 0
        for chunk in physical.run():
            if chunk.size == 0:
                continue
            # Align physical representations exactly with storage.
            aligned = DataChunk([
                cast_vector(vector, column.dtype)
                for vector, column in zip(chunk.columns, table.columns)
            ])
            self._check_not_null(table, aligned)
            table.data.append_chunk(self.transaction, aligned)
            if wal_enabled:
                self.transaction.wal_records.append(
                    WALRecord.insert_chunk(table.name, aligned))
            inserted += aligned.size
        return StatementResult.count_result(inserted)

    # -- UPDATE -----------------------------------------------------------------
    def execute_update(self, statement: bound.BoundUpdate) -> StatementResult:
        table = statement.table
        context = self._context()
        executor = ExpressionExecutor(context)
        wal_enabled = self.database.storage.wal.enabled
        updated = 0
        for chunk, row_ids in table.data.scan(self.transaction,
                                              with_row_ids=True):
            context.check_interrupted()
            if statement.where is not None:
                mask = executor.execute_filter(statement.where, chunk)
                if not mask.any():
                    continue
                if not mask.all():
                    chunk = chunk.slice(mask)
                    row_ids = row_ids[mask]
            values = [executor.execute(expression, chunk)
                      for expression in statement.expressions]
            update_chunk = DataChunk([
                cast_vector(vector, table.columns[index].dtype)
                for vector, index in zip(values, statement.column_indices)
            ])
            self._check_not_null(table, update_chunk, statement.column_indices)
            count = table.data.update_rows(self.transaction, row_ids,
                                           statement.column_indices, update_chunk)
            if wal_enabled and count:
                # update_rows sorted the rows internally; log the same order.
                order = np.argsort(row_ids, kind="stable")
                self.transaction.wal_records.append(WALRecord.update_rows(
                    table.name, statement.column_indices,
                    row_ids[order].astype(np.int64), update_chunk.slice(order)))
            updated += count
        return StatementResult.count_result(updated)

    # -- DELETE -------------------------------------------------------------------
    def execute_delete(self, statement: bound.BoundDelete) -> StatementResult:
        table = statement.table
        context = self._context()
        executor = ExpressionExecutor(context)
        wal_enabled = self.database.storage.wal.enabled
        deleted = 0
        for chunk, row_ids in table.data.scan(self.transaction,
                                              with_row_ids=True):
            context.check_interrupted()
            if statement.where is not None:
                mask = executor.execute_filter(statement.where, chunk)
                if not mask.any():
                    continue
                row_ids = row_ids[mask]
            count = table.data.delete_rows(self.transaction, row_ids)
            if wal_enabled and count:
                self.transaction.wal_records.append(
                    WALRecord.delete_rows(table.name,
                                          np.sort(row_ids).astype(np.int64)))
            deleted += count
        return StatementResult.count_result(deleted)

    # -- DDL ----------------------------------------------------------------------
    def execute_create_table(self, statement: bound.BoundCreateTable) -> StatementResult:
        data = TableData([column.dtype for column in statement.columns])
        entry = TableEntry(statement.name, statement.columns, data,
                           self.transaction.transaction_id)
        created = self.database.catalog.create_entry(
            entry, self.transaction, if_not_exists=statement.if_not_exists)
        if not created:
            return StatementResult.empty()
        if self.database.storage.wal.enabled:
            columns = [
                (column.name, str(column.dtype), column.nullable,
                 None if column.default is None
                 else cast_scalar(column.default, VARCHAR))
                for column in statement.columns
            ]
            self.transaction.wal_records.append(
                WALRecord.create_table(statement.name, columns))
        inserted = 0
        if statement.source is not None:
            insert = bound.BoundInsert(entry, statement.source)
            inserted = self.execute_insert(insert).rowcount
        return StatementResult.count_result(inserted)

    def execute_create_view(self, statement: bound.BoundCreateView) -> StatementResult:
        entry = ViewEntry(statement.name, statement.sql, statement.query,
                          self.transaction.transaction_id)
        self.database.catalog.create_entry(entry, self.transaction,
                                           or_replace=statement.or_replace)
        if self.database.storage.wal.enabled:
            self.transaction.wal_records.append(
                WALRecord.create_view(statement.name, statement.sql))
        return StatementResult.empty()

    def execute_drop(self, statement: bound.BoundDrop) -> StatementResult:
        dropped = self.database.catalog.drop_entry(
            statement.name, self.transaction, if_exists=statement.if_exists,
            expected_type=statement.kind)
        if dropped and self.database.storage.wal.enabled:
            record = WALRecord.drop_table(statement.name) \
                if statement.kind == "table" else WALRecord.drop_view(statement.name)
            self.transaction.wal_records.append(record)
        return StatementResult.empty()

    # -- COPY ---------------------------------------------------------------------
    def execute_copy_from(self, statement: bound.BoundCopyFrom) -> StatementResult:
        from ..etl.csv_reader import read_csv_chunks, sniff_csv

        table = statement.table
        options = dict(statement.options)
        delimiter = options.get("delimiter")
        header = options.get("header")
        sniffed = sniff_csv(statement.path, delimiter=delimiter, header=header)
        delimiter = delimiter or sniffed.delimiter
        header = sniffed.has_header if header is None else header
        if not sniffed.types:
            # Empty file: nothing to load, but not an error (a header-only
            # file likewise loads zero rows).
            return StatementResult.count_result(0)
        if len(sniffed.types) != len(table.columns):
            raise InvalidInputError(
                f"CSV file has {len(sniffed.types)} columns, table "
                f"{table.name!r} has {len(table.columns)}"
            )
        wal_enabled = self.database.storage.wal.enabled
        loaded = 0
        for chunk in read_csv_chunks(statement.path, table.column_types,
                                     delimiter=delimiter, header=header):
            self._check_not_null(table, chunk)
            table.data.append_chunk(self.transaction, chunk)
            if wal_enabled:
                self.transaction.wal_records.append(
                    WALRecord.insert_chunk(table.name, chunk))
            loaded += chunk.size
        return StatementResult.count_result(loaded)

    def execute_copy_to(self, statement: bound.BoundCopyTo) -> StatementResult:
        from ..etl.csv_writer import write_csv

        plan = optimize(statement.source, self.database)
        context = self._context()
        physical = create_physical_plan(plan, context)
        options = statement.options
        written = write_csv(statement.path, physical.run(), plan.names,
                            delimiter=options.get("delimiter", ","),
                            header=options.get("header", True))
        return StatementResult.count_result(written)

    # -- PRAGMA / EXPLAIN --------------------------------------------------------
    def execute_pragma(self, statement: bound.BoundPragma) -> StatementResult:
        name = statement.name.lower()
        database = self.database
        if name == "database_size":
            size = 0
            if database.storage.block_file is not None:
                import os

                size = os.path.getsize(database.storage.block_file.path)
            return StatementResult(
                ["database_size"], [BIGINT],
                iter([DataChunk([Vector.from_values([size], BIGINT)])]), 1)
        if name == "memory_usage":
            return StatementResult(
                ["memory_usage"], [BIGINT],
                iter([DataChunk([Vector.from_values([database.memory_usage()],
                                                    BIGINT)])]), 1)
        if name == "wal_size":
            return StatementResult(
                ["wal_size"], [BIGINT],
                iter([DataChunk([Vector.from_values([database.storage.wal.size()],
                                                    BIGINT)])]), 1)
        if name == "table_info":
            table = database.catalog.get_table(str(statement.value),
                                               self.transaction)
            lines = [f"{column.name} {column.dtype}"
                     + ("" if column.nullable else " NOT NULL")
                     for column in table.columns]
            return StatementResult.text_result("table_info", lines)
        if name == "show_tables":
            names = [table.name for table in
                     database.catalog.tables(self.transaction)]
            return StatementResult.text_result("name", names)
        if name == "memtest":
            # Periodic scrub of all live buffers (paper §6: "periodically to
            # detect new errors").  Returns one line per failing buffer.
            failing = database.buffer_manager.retest_buffers()
            lines = [f"buffers failing: {len(failing)}"]
            for report in failing:
                lines.append(f"  {report!r}")
            return StatementResult.text_result("memtest", lines)
        if name == "flight_dump":
            path = database.dump_flight("PRAGMA flight_dump")
            return StatementResult.text_result("flight_dump", [str(path)])
        if name in ("enable_profiling", "disable_profiling"):
            self.config.set_option("profile_enabled",
                                   name == "enable_profiling")
            if self.config is database.config:
                database.sync_profiler()
            return StatementResult.empty()
        if name == "telemetry_sample":
            # Force one synchronous telemetry sample -- deterministic
            # history/export points for tests and dashboards.
            sample = database.telemetry_sample()
            count = len(sample.entries) if sample is not None else 0
            return StatementResult.text_result(
                "telemetry_sample", [f"sampled {count} metrics"])
        if name in ("capture_enabled", "capture_path") \
                and statement.value is not None:
            # Capture is instance-wide by design: a session recording only
            # its own slice of an interleaved workload could not be
            # replayed into the same database state.  Route the option to
            # the *database* config whatever config this executor runs on.
            database.config.set_option(name, statement.value)
            if self.config is not database.config:
                self.config.set_option(name, statement.value)
            database.sync_capture()
            return StatementResult.empty()
        if statement.value is None:
            value = self.config.get_option(name)
            return StatementResult.text_result(name, [str(value)])
        # A session-scoped config (server sessions, pooled connections)
        # takes the PRAGMA locally; only a connection running on the
        # database's own config mutates process-wide behaviour like the
        # profiler daemon.
        self.config.set_option(name, statement.value)
        if name in ("profile_enabled", "profile_hz") \
                and self.config is database.config:
            database.sync_profiler()
        if name in ("telemetry_interval_ms", "telemetry_path") \
                and self.config is database.config:
            database.sync_telemetry()
        return StatementResult.empty()

    def execute_explain(self, statement: bound.BoundExplain) -> StatementResult:
        inner = statement.inner
        if isinstance(inner, bound.BoundSelect):
            plan = optimize(inner.plan, self.database)
            context = self._context()
            physical = create_physical_plan(plan, context)
            text = ("-- logical plan --\n" + plan.explain()
                    + "\n-- physical plan --\n" + physical.explain())
            if statement.analyze:
                # EXPLAIN ANALYZE: run the plan under a forced tracer and
                # report per-operator spans plus engine statistics.  The
                # private tracer means ANALYZE profiles even when tracing is
                # globally disabled, without flipping the process switch.
                import time

                from ..observability.render import render_span_tree
                from ..observability.trace import Tracer

                tracer = context.tracer or Tracer()
                context.tracer = tracer
                root = tracer.start_query("explain analyze")
                wall = time.perf_counter_ns()
                cpu = time.thread_time_ns()
                rows = 0
                try:
                    for chunk in physical.run():
                        rows += chunk.size
                finally:
                    tracer.finish_query(root,
                                        time.perf_counter_ns() - wall,
                                        time.thread_time_ns() - cpu)
                text += "\n-- execution statistics --"
                text += f"\nresult rows: {rows}"
                text += f"\nelapsed: {root.wall_ms:.2f} ms"
                for name in sorted(context.stats):
                    text += f"\n{name}: {context.stats[name]}"
                profile = render_span_tree(tracer.sink.trace(root.trace_id),
                                           root)
                text += "\n-- operator profile (quacktrace) --"
                for line in profile:
                    text += "\n" + line
            return StatementResult.text_result("explain", text.split("\n"))
        return StatementResult.text_result(
            "explain", [f"{type(inner).__name__} (no plan)"])
