"""Compressible, spillable buffers for query intermediates.

This is the engine-level cooperation hook of the paper (§6, Figure 1):

*"we can also choose to compress temporary structures like hash tables in
memory with different compression algorithms. As the RAM usage of the
application increases, the DBMS chooses first lightweight compression to
reduce its memory footprint at the expense of extra CPU cycles [then] a
heavy compression algorithm that will further reduce the memory
footprint."*

Blocking operators (hash join builds, sorts, aggregations) buffer their
input through a :class:`ChunkBuffer`.  On every append the buffer asks the
reactive controller for the current :class:`CompressionLevel` and encodes
the chunk accordingly; memory is accounted against the buffer manager, and
when even HEAVY compression cannot fit the limit the buffer spills whole
chunks to a temporary file (the out-of-core path).
"""

from __future__ import annotations

import os
import struct
import tempfile
from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..storage.compression import CompressionLevel, decode_array, encode_array
from ..types import DataChunk, LogicalType, Vector

__all__ = ["ChunkBuffer"]


class _CompressedChunk:
    """One buffered chunk: raw, compressed, or spilled to disk."""

    __slots__ = ("row_count", "payloads", "level", "raw", "spill_offset", "nbytes")

    def __init__(self) -> None:
        self.row_count = 0
        self.payloads: Optional[List[Tuple[bytes, bytes]]] = None
        self.level = CompressionLevel.NONE
        self.raw: Optional[DataChunk] = None
        self.spill_offset: Optional[int] = None
        self.nbytes = 0


class ChunkBuffer:
    """An append-then-scan chunk container with adaptive compression."""

    def __init__(self, types: List[LogicalType], context=None,
                 description: str = "intermediate") -> None:
        self.types = list(types)
        self.context = context
        self.description = description
        self._chunks: List[_CompressedChunk] = []
        self._reserved = 0
        self._spill_file = None
        self.row_count = 0
        #: Statistics for the Figure 1 / C6 experiments.
        self.compressed_appends = 0
        self.spilled_chunks = 0

    # -- policy -------------------------------------------------------------
    def _current_level(self) -> CompressionLevel:
        if self.context is not None and self.context.controller is not None:
            return self.context.controller.compression_level()
        return CompressionLevel.NONE

    def _buffer_manager(self):
        return self.context.buffer_manager if self.context is not None else None

    # -- append ----------------------------------------------------------------
    def append(self, chunk: DataChunk) -> None:
        if chunk.size == 0:
            return
        level = self._current_level()
        entry = _CompressedChunk()
        entry.row_count = chunk.size
        if level is CompressionLevel.NONE:
            entry.raw = chunk
            entry.nbytes = chunk.nbytes()
        else:
            entry.level = level
            entry.payloads = [
                (encode_array(vector.data, level),
                 encode_array(vector.validity, level))
                for vector in chunk.columns
            ]
            entry.nbytes = sum(len(data) + len(validity)
                               for data, validity in entry.payloads)
            self.compressed_appends += 1
        manager = self._buffer_manager()
        if manager is not None:
            if not manager.can_reserve(entry.nbytes):
                # Last resort: spill the chunk to disk (out-of-core path).
                self._spill(entry, chunk)
            else:
                manager.reserve(entry.nbytes, self.description)
                self._reserved += entry.nbytes
        self._chunks.append(entry)
        self.row_count += entry.row_count

    def _spill(self, entry: _CompressedChunk, chunk: DataChunk) -> None:
        if self._spill_file is None:
            handle, path = tempfile.mkstemp(prefix="quackdb_spill_")
            os.close(handle)
            self._spill_file = open(path, "w+b")
            os.unlink(path)  # anonymous: vanishes when closed
        payloads = entry.payloads
        if payloads is None:
            payloads = [
                (encode_array(vector.data, CompressionLevel.LIGHT),
                 encode_array(vector.validity, CompressionLevel.LIGHT))
                for vector in chunk.columns
            ]
        self._spill_file.seek(0, os.SEEK_END)
        entry.spill_offset = self._spill_file.tell()
        for data, validity in payloads:
            self._spill_file.write(struct.pack("<QQ", len(data), len(validity)))
            self._spill_file.write(data)
            self._spill_file.write(validity)
        entry.payloads = None
        entry.raw = None
        entry.nbytes = 0
        self.spilled_chunks += 1

    # -- scan -----------------------------------------------------------------------
    def _decode(self, entry: _CompressedChunk) -> DataChunk:
        if entry.raw is not None:
            return entry.raw
        if entry.spill_offset is not None:
            self._spill_file.seek(entry.spill_offset)
            vectors = []
            for dtype in self.types:
                data_length, validity_length = struct.unpack(
                    "<QQ", self._spill_file.read(16))
                data = decode_array(self._spill_file.read(data_length))
                validity = decode_array(
                    self._spill_file.read(validity_length)).astype(np.bool_)
                vectors.append(Vector(dtype, data, validity))
            return DataChunk(vectors)
        vectors = []
        for dtype, (data_payload, validity_payload) in zip(self.types,
                                                           entry.payloads):
            data = decode_array(data_payload)
            validity = decode_array(validity_payload).astype(np.bool_)
            vectors.append(Vector(dtype, data, validity))
        return DataChunk(vectors)

    def scan(self) -> Iterator[DataChunk]:
        """Yield the buffered chunks in insertion order (decompressing)."""
        for entry in self._chunks:
            yield self._decode(entry)

    def materialize(self) -> DataChunk:
        """All buffered rows as one chunk (empty chunk when no rows)."""
        chunks = [self._decode(entry) for entry in self._chunks]
        chunks = [chunk for chunk in chunks if chunk.size]
        if not chunks:
            return DataChunk([Vector.empty(dtype, 0) for dtype in self.types])
        if len(chunks) == 1:
            return chunks[0]
        return DataChunk.concat_many(chunks)

    def memory_bytes(self) -> int:
        return sum(entry.nbytes for entry in self._chunks)

    def close(self) -> None:
        manager = self._buffer_manager()
        if manager is not None and self._reserved:
            manager.release(self._reserved)
            self._reserved = 0
        if self._spill_file is not None:
            self._spill_file.close()
            self._spill_file = None
        self._chunks = []

    def __enter__(self) -> "ChunkBuffer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
