"""Morsel-driven parallel execution: worker pool, parallel scan, parallel
aggregation.

The paper's §2 demands OLAP queries run "as fast as the hardware allows";
on a multi-core host that means exploiting all cores the user granted via
``config.threads`` (PRAGMA ``threads``).  The design follows the
morsel-driven model: a table scan is partitioned into fixed-size row-range
*morsels* (aligned to the scan chunk size so per-chunk work is bit-identical
to a serial scan), each worker of a ``ThreadPoolExecutor`` runs an entire
pipeline fragment -- scan, pushed filters, residual filters, projection,
partial aggregation -- over its morsel, and the coordinator merges the
partial states.  NumPy kernels release the GIL, so the workers genuinely
overlap on multi-core machines.

Two invariants keep parallel execution transparent:

* **bit-identical results** -- morsel boundaries align with serial chunk
  boundaries, partial aggregates use exact decompositions (see
  :mod:`~repro.execution.aggregate`), and the coordinator consumes worker
  results in morsel order, so a parallel plan returns the same rows in the
  same order as its serial twin (modulo floating-point summation order,
  which is already unspecified for unordered input);
* **cooperation** -- the worker count honors ``config.threads`` and, when
  the reactive controller is active, degrades under application CPU load
  (:meth:`~repro.cooperation.controller.ReactiveController.choose_worker_count`).

``EXPLAIN ANALYZE`` reports ``morsels``, ``parallel_workers``, and
``worker_<i>_rows`` statistics for every parallel pipeline that ran.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Callable, Iterator, List, Optional, Tuple

import numpy as np

from ..sanitizer import SanLock, tracked_access
from ..storage.table_data import SCAN_CHUNK_ROWS
from ..types import DataChunk, VECTOR_SIZE, Vector
from ..functions.aggregate import compute_aggregate
from ..planner.subquery import (
    BoundExistsSubquery,
    BoundInSubquery,
    BoundScalarSubquery,
)
from .aggregate import (
    aggregate_input_layout,
    compute_partial_state,
    finalize_merged_state,
    partial_state_types,
)
from .expression_executor import ExpressionExecutor
from .keys import factorize_for_groups
from .physical import ExecutionContext, PhysicalOperator
from .scan import PhysicalTableScan

__all__ = ["MORSEL_ROWS", "MorselDriver", "PhysicalParallelTableScan",
           "PhysicalParallelHashAggregate", "plan_worker_count",
           "aligned_morsel_rows", "expressions_parallel_safe"]

#: Default rows per morsel (~64K, the classic morsel-driven granularity).
MORSEL_ROWS = 65536

_SUBQUERY_NODES = (BoundScalarSubquery, BoundInSubquery, BoundExistsSubquery)


def aligned_morsel_rows(morsel_rows: int) -> int:
    """Morsel size rounded down to a whole number of scan chunks."""
    return max(SCAN_CHUNK_ROWS,
               (int(morsel_rows) // SCAN_CHUNK_ROWS) * SCAN_CHUNK_ROWS)


def expressions_parallel_safe(expressions) -> bool:
    """False when any expression needs coordinator-only state.

    Subquery nodes materialize through the shared execution-context cache
    (and may lower plans recursively), which is not thread-safe; pipelines
    containing them stay serial.
    """
    stack = list(expressions)
    while stack:
        node = stack.pop()
        if node is None:
            continue
        if isinstance(node, _SUBQUERY_NODES):
            return False
        stack.extend(node.children)
    return True


def plan_worker_count(context: ExecutionContext) -> int:
    """Workers this query may use: ``config.threads``, degraded by the
    cooperation controller under application CPU load."""
    database = context.database
    if database is None:
        return 1
    config = context.config if context.config is not None else database.config
    threads = int(getattr(config, "threads", 1) or 1)
    if threads <= 1:
        return 1
    controller = context.controller
    if controller is not None:
        chooser = getattr(controller, "choose_worker_count", None)
        if chooser is not None:
            threads = chooser(threads)
    return max(1, int(threads))


class MorselDriver:
    """Schedules per-morsel tasks on a worker pool.

    Results are yielded in *morsel order* (not completion order), which
    keeps parallel output ordering identical to a serial scan while workers
    still execute concurrently.  Interrupts propagate both ways: tasks poll
    ``context.interrupted`` between chunks, and an abandoned or failing
    drive cancels all not-yet-started morsels.
    """

    def __init__(self, context: ExecutionContext, worker_count: int) -> None:
        self.context = context
        self.worker_count = max(1, worker_count)
        self._lock = SanLock("morsel_driver")
        #: rows processed per worker thread, in first-use order.
        self._worker_rows: dict = {}
        #: Coordinator-side parent for per-morsel spans (set by map()).
        self._parent_span = None

    def record_rows(self, count: int) -> None:
        """Attribute ``count`` processed rows to the calling worker."""
        ident = threading.get_ident()
        with self._lock, tracked_access(("morsel_driver", id(self)), True,
                                        self._lock):
            self._worker_rows[ident] = self._worker_rows.get(ident, 0) + count
        tracer = self.context.tracer
        if tracer is not None:
            span = tracer.current()
            if span is not None and span.kind == "morsel":
                span.rows += count

    def _run_task(self, index: int, task: Callable):
        self.context.check_interrupted()
        tracer = self.context.tracer
        if tracer is None:
            return task()
        # Per-morsel span on the worker thread: fragment operator spans
        # nest under it, and the renderer derives per-worker morsel counts
        # and skew from these.
        span = tracer.start_span(f"morsel {index}", kind="morsel",
                                 parent=self._parent_span,
                                 attrs={"morsel": index})
        tracer.push(span)
        wall = time.perf_counter_ns()
        cpu = time.thread_time_ns()
        try:
            return task()
        finally:
            span.add_timing(time.perf_counter_ns() - wall,
                            time.thread_time_ns() - cpu)
            tracer.pop(span)
            tracer.end_span(span)

    def map(self, tasks: List[Callable]) -> Iterator:
        """Run every task on the pool; yield results in task order."""
        context = self.context
        tracer = context.tracer
        if tracer is not None:
            self._parent_span = tracer.current()
        pool = ThreadPoolExecutor(max_workers=self.worker_count,
                                  thread_name_prefix="repro-morsel")
        futures = [pool.submit(self._run_task, index, task)
                   for index, task in enumerate(tasks)]
        try:
            for future in futures:
                yield future.result()
        finally:
            for future in futures:
                future.cancel()
            pool.shutdown(wait=True)
            context.bump_stat("morsels", len(futures))
            with self._lock:
                rows = list(self._worker_rows.values())
            for index, count in enumerate(rows):
                context.bump_stat(f"worker_{index}_rows", count)
            context.max_stat("parallel_workers", len(rows))


class PhysicalParallelTableScan(PhysicalOperator):
    """Morsel-parallel MVCC table scan (scan + pushed filters on workers).

    Each worker executes a serial :class:`PhysicalTableScan` restricted to
    one morsel's row range; the coordinator yields the resulting chunks in
    morsel order, so downstream operators observe the exact chunk stream a
    serial scan would produce.
    """

    def __init__(self, context: ExecutionContext, table_entry, column_ids,
                 types, names, filters=None, worker_count: int = 1,
                 morsel_rows: int = MORSEL_ROWS) -> None:
        super().__init__(context, [], types, names)
        self.table_entry = table_entry
        self.column_ids = column_ids
        self.filters = filters or []
        self.worker_count = max(1, worker_count)
        self.morsel_rows = aligned_morsel_rows(morsel_rows)
        #: Serial twin, reused for full-table fallback and EXPLAIN output.
        self._template = PhysicalTableScan(context, table_entry, column_ids,
                                           types, names, self.filters)

    def _scan_for(self, row_range: Optional[Tuple[int, int]]) -> PhysicalTableScan:
        return PhysicalTableScan(self.context, self.table_entry,
                                 self.column_ids, self.types, self.names,
                                 self.filters, row_range=row_range)

    def _scan_morsel(self, driver: MorselDriver,
                     row_range: Tuple[int, int]) -> List[DataChunk]:
        chunks = list(self._scan_for(row_range).run())
        driver.record_rows(sum(chunk.size for chunk in chunks))
        return chunks

    def execute(self) -> Iterator[DataChunk]:
        ranges = self.table_entry.data.morsel_ranges(self.morsel_rows)
        if self.worker_count <= 1 or len(ranges) <= 1:
            yield from self._template.run()
            return
        driver = MorselDriver(self.context,
                              min(self.worker_count, len(ranges)))
        tasks = [partial(self._scan_morsel, driver, row_range)
                 for row_range in ranges]
        for chunks in driver.map(tasks):
            for chunk in chunks:
                yield chunk

    def _explain_line(self) -> str:
        return (f"PARALLEL_{self._template._explain_line()} "
                f"workers={self.worker_count}")


class PhysicalParallelHashAggregate(PhysicalOperator):
    """Morsel-parallel GROUP BY: partial aggregation on workers, merge on
    the coordinator.

    Each worker runs a full pipeline fragment (scan -> filter -> projection)
    over one morsel, evaluates group keys and aggregate arguments, and
    reduces them to a partial-state chunk: one row per group seen in the
    morsel, carrying decomposed aggregate states (see
    :func:`~repro.execution.aggregate.partial_state_types`).  The
    coordinator concatenates the partials in morsel order, re-factorizes the
    group keys -- merging the per-worker "hash tables" -- applies the merge
    aggregates, and finalizes.
    """

    def __init__(self, context: ExecutionContext, table_data,
                 fragment_factory: Callable[[Optional[Tuple[int, int]]], PhysicalOperator],
                 groups, aggregates, types, names, worker_count: int,
                 morsel_rows: int = MORSEL_ROWS) -> None:
        # The full-range fragment doubles as the EXPLAIN child.
        super().__init__(context, [fragment_factory(None)], types, names)
        self.table_data = table_data
        self.fragment_factory = fragment_factory
        self.groups = groups
        self.aggregates = aggregates
        self.worker_count = max(1, worker_count)
        self.morsel_rows = aligned_morsel_rows(morsel_rows)
        self._buffered_types, self._argument_slots = aggregate_input_layout(
            groups, aggregates)

    # -- worker side ---------------------------------------------------------
    def _partial_for_range(self, driver: MorselDriver,
                           row_range: Tuple[int, int]) -> Optional[DataChunk]:
        """One morsel's partial chunk: group keys ++ partial-state columns."""
        context = self.context
        executor = ExpressionExecutor(context)
        fragment = self.fragment_factory(row_range)
        parts: List[DataChunk] = []
        total_rows = 0
        needs_buffer = bool(self._buffered_types)
        for chunk in fragment.run():
            context.check_interrupted()
            if needs_buffer:
                columns = [executor.execute(group, chunk)
                           for group in self.groups]
                for aggregate in self.aggregates:
                    if aggregate.args:
                        columns.append(executor.execute(aggregate.args[0],
                                                        chunk))
                parts.append(DataChunk(columns))
            total_rows += chunk.size
        driver.record_rows(total_rows)

        group_count = len(self.groups)
        if group_count and total_rows == 0:
            return None  # this morsel contributes no groups
        if parts:
            materialized = DataChunk.concat_many(parts)
        else:
            materialized = DataChunk([Vector.empty(dtype, 0)
                                      for dtype in self._buffered_types])

        if group_count == 0:
            group_ids = np.zeros(total_rows, dtype=np.int64)
            groups_found = 1
            key_columns: List[Vector] = []
        else:
            key_columns = materialized.columns[:group_count]
            group_ids, groups_found, representatives = \
                factorize_for_groups(key_columns)
            key_columns = [column.slice(representatives)
                           for column in key_columns]
        state_columns: List[Vector] = []
        for slot, aggregate in zip(self._argument_slots, self.aggregates):
            argument = materialized.columns[slot] if slot >= 0 else None
            state_columns.extend(compute_partial_state(
                aggregate, argument, group_ids, groups_found))
        return DataChunk(key_columns + state_columns)

    # -- coordinator side ----------------------------------------------------
    def _merge_partials(self, partials: List[DataChunk]) -> Iterator[DataChunk]:
        group_count = len(self.groups)
        merged = DataChunk.concat_many(partials)
        if group_count == 0:
            group_ids = np.zeros(merged.size, dtype=np.int64)
            groups_found = 1
            result_columns: List[Vector] = []
        else:
            key_columns = merged.columns[:group_count]
            group_ids, groups_found, representatives = \
                factorize_for_groups(key_columns)
            self.context.bump_stat("aggregate_groups", groups_found)
            result_columns = [column.slice(representatives)
                              for column in key_columns]
        offset = group_count
        for aggregate in self.aggregates:
            specs = partial_state_types(aggregate)
            merged_states = [
                compute_aggregate(merge_name, False, merged.columns[offset + i],
                                  group_ids, groups_found, state_type)
                for i, (merge_name, state_type) in enumerate(specs)
            ]
            result_columns.append(finalize_merged_state(aggregate,
                                                        merged_states))
            offset += len(specs)
        result = DataChunk(result_columns)
        for piece in result.split(VECTOR_SIZE):
            yield piece

    def _serial_fallback(self) -> PhysicalOperator:
        from .aggregate import PhysicalHashAggregate

        return PhysicalHashAggregate(self.context, self.fragment_factory(None),
                                     self.groups, self.aggregates,
                                     self.types, self.names)

    def execute(self) -> Iterator[DataChunk]:
        ranges = self.table_data.morsel_ranges(self.morsel_rows)
        if self.worker_count <= 1 or len(ranges) <= 1:
            yield from self._serial_fallback().run()
            return
        driver = MorselDriver(self.context,
                              min(self.worker_count, len(ranges)))
        tasks = [partial(self._partial_for_range, driver, row_range)
                 for row_range in ranges]
        partials = [chunk for chunk in driver.map(tasks) if chunk is not None]
        if len(self.groups) and not partials:
            return
        yield from self._merge_partials(partials)

    def _explain_line(self) -> str:
        return (f"PARALLEL_HASH_AGGREGATE groups={len(self.groups)} "
                f"aggs={len(self.aggregates)} workers={self.worker_count}")
