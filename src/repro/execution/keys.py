"""Key factorization: turning (multi-column, mixed-type) keys into dense ids.

The vectorized engine never hashes values one by one.  Instead, key columns
are *factorized* with NumPy (``np.unique``) into dense integer codes, and
multi-column keys are combined with mixed-radix arithmetic.  Equal keys get
equal codes, so grouping becomes ``np.bincount`` over code arrays and
joining becomes a binary search of code arrays -- both single NumPy kernels
over entire vectors, which is the whole point of the paper's vectorized
design.

NULL keys get the special code -1: they never join (SQL equality semantics)
but form their own group in GROUP BY (handled by the caller).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import InternalError
from ..types import LogicalTypeId, Vector

__all__ = ["factorize_for_groups", "BuildIndex"]

_OBJECT_FILLER = ""


def _column_arrays(vector: Vector) -> np.ndarray:
    """The column data with NULL positions normalized to a filler value."""
    if vector.dtype.id is LogicalTypeId.VARCHAR:
        if vector.all_valid():
            return vector.data
        out = vector.data.copy()
        out[~vector.validity] = _OBJECT_FILLER
        return out
    if not vector.all_valid():
        cleaned = vector.data.copy()
        cleaned[~vector.validity] = 0
        return cleaned
    return vector.data


def _combine_codes(combined: Optional[np.ndarray], cardinality: int,
                   codes: np.ndarray, new_cardinality: int) -> Tuple[np.ndarray, int]:
    """Mixed-radix combination of per-column codes, overflow-safe."""
    if combined is None:
        return codes.astype(np.int64), new_cardinality
    if cardinality * new_cardinality > (1 << 62):
        # Compress the running codes back to a dense range first.
        _, combined = np.unique(combined, return_inverse=True)
        cardinality = int(combined.max()) + 1 if combined.size else 1
        if cardinality * new_cardinality > (1 << 62):
            raise InternalError("Group key cardinality exceeds 2^62")
    return combined * new_cardinality + codes, cardinality * new_cardinality


#: Largest bounded code space the no-sort (bincount) paths will allocate.
_DENSE_CODE_LIMIT = 1 << 22


def _factorize_object(data: np.ndarray) -> Tuple[np.ndarray, int]:
    """Dict-based factorization for string columns.

    ``np.unique`` on object arrays sorts with per-element Python
    comparisons (O(n log n) interpreter calls); a single dict pass is both
    O(n) and constant-factor faster for the few-distinct-values columns
    typical of group keys.  Codes are in first-occurrence order.
    """
    table: dict = {}
    codes = np.empty(len(data), dtype=np.int64)
    setdefault = table.setdefault
    for index, value in enumerate(data):
        codes[index] = setdefault(value, len(table))
    return codes, max(len(table), 1)


def _column_codes(column: Vector) -> Tuple[np.ndarray, int]:
    """Bounded integer codes for one key column (equal values, equal codes).

    Integer-family columns with a narrow value range are coded by value
    offset -- a single subtraction, no sort.  Strings use a dict pass;
    everything else goes through ``np.unique``.  NULLs always get their own
    dedicated code.
    """
    data = _column_arrays(column)
    all_valid = column.all_valid()
    if data.dtype.kind in "iub" and len(data):
        low = int(data.min())
        high = int(data.max())
        span = high - low + 1
        if span <= max(4 * len(data), 1 << 16) and span <= _DENSE_CODE_LIMIT:
            codes = data.astype(np.int64) - low
            if not all_valid:
                codes = np.where(column.validity, codes, span)
                return codes, span + 1
            return codes, span
    if data.dtype == object:
        codes, cardinality = _factorize_object(data)
    else:
        _, codes = np.unique(data, return_inverse=True)
        codes = codes.astype(np.int64).reshape(-1)
        cardinality = int(codes.max()) + 1 if codes.size else 1
    if not all_valid:
        codes = np.where(column.validity, codes, cardinality)
        return codes, cardinality + 1
    return codes, cardinality


def factorize_for_groups(columns: Sequence[Vector]) -> Tuple[np.ndarray, int, np.ndarray]:
    """Assign each row a dense group id over the given key columns.

    NULLs are grouping-distinct: a NULL key value forms its own group (SQL
    GROUP BY semantics).  Returns ``(group_ids, group_count,
    representative_rows)`` where ``representative_rows[g]`` is the first
    input row of group ``g`` (used to materialize the key values).

    Fully vectorized and, for narrow integer keys, sort-free: per-column
    bounded codes combine with mixed-radix arithmetic and the final dense
    renumbering is a ``bincount`` + prefix sum -- this is the engine's
    "hash table build" for aggregation.
    """
    if not columns:
        raise InternalError("factorize_for_groups needs at least one column")
    count = len(columns[0])
    if count == 0:
        return np.zeros(0, dtype=np.int64), 0, np.zeros(0, dtype=np.int64)
    combined: Optional[np.ndarray] = None
    cardinality = 1
    for column in columns:
        codes, column_cardinality = _column_codes(column)
        combined, cardinality = _combine_codes(combined, cardinality, codes,
                                               column_cardinality)
    if cardinality <= _DENSE_CODE_LIMIT:
        # Sort-free dense renumbering.
        counts = np.bincount(combined, minlength=cardinality)
        present = counts > 0
        group_count = int(np.count_nonzero(present))
        code_map = np.cumsum(present, dtype=np.int64) - 1
        group_ids = code_map[combined]
        # First-occurrence representative per group: reversed assignment
        # makes the earliest row the last (winning) write.
        representative = np.empty(group_count, dtype=np.int64)
        representative[group_ids[::-1]] = np.arange(count - 1, -1, -1,
                                                    dtype=np.int64)
        return group_ids, group_count, representative
    unique_codes, representative, group_ids = np.unique(
        combined, return_index=True, return_inverse=True)
    return group_ids.astype(np.int64).reshape(-1), len(unique_codes), \
        representative.astype(np.int64)


#: Largest dense lookup table the index will allocate (entries).  Beyond
#: this, probing falls back to binary search -- trading the hash join's
#: O(1) probes for less memory, which is the very trade-off of §6.
_DENSE_TABLE_LIMIT = 1 << 23


class BuildIndex:
    """A join build index: factorized build keys with O(1) dense probing.

    The hash-table equivalent of the vectorized engine: build keys are
    factorized into dense codes, and per-code match ranges live in flat
    arrays indexed *directly* by code -- a probe is a couple of NumPy
    gathers, not a per-row hash loop.  Value-to-code translation also uses
    a direct-mapped array when the key range permits; otherwise it falls
    back to vectorized binary search.  Either way the index materializes
    the entire build side in memory: the high-RAM/low-CPU end of the
    paper's hash-vs-merge trade-off.
    """

    def __init__(self, build_columns: Sequence[Vector]) -> None:
        if not build_columns:
            raise InternalError("BuildIndex needs at least one key column")
        self.column_count = len(build_columns)
        count = len(build_columns[0])
        self._uniques: List[np.ndarray] = []
        self._radices: List[int] = []
        #: Per column: (min_value, dense value->code array) or None.
        self._direct_maps: List[Optional[Tuple[int, np.ndarray]]] = []
        build_valid = np.ones(count, dtype=np.bool_)
        combined: Optional[np.ndarray] = None
        cardinality = 1
        for column in build_columns:
            build_valid &= column.validity
            data = _column_arrays(column)
            uniques, codes = np.unique(data, return_inverse=True)
            codes = codes.astype(np.int64).reshape(-1)
            self._uniques.append(uniques)
            self._direct_maps.append(self._build_direct_map(uniques))
            radix = len(uniques) if len(uniques) else 1
            self._radices.append(radix)
            if combined is None:
                combined = codes
                cardinality = radix
            else:
                if cardinality * radix > (1 << 62):
                    raise InternalError("Join key cardinality exceeds 2^62")
                combined = combined * radix + codes
                cardinality *= radix
        assert combined is not None
        self.cardinality = cardinality
        # Rows with NULL keys never match: give them an impossible code.
        codes64 = combined.astype(np.int64)
        codes64[~build_valid] = -1
        order = np.argsort(codes64, kind="stable")
        self.sorted_codes = codes64[order]
        self.sorted_rows = order.astype(np.int64)
        # Skip the leading -1 (NULL) section.
        first_valid = int(np.searchsorted(self.sorted_codes, 0, side="left"))
        self.sorted_codes = self.sorted_codes[first_valid:]
        self.sorted_rows = self.sorted_rows[first_valid:]
        self.build_count = count
        # Dense per-code match ranges: start offset and count per code.
        if 0 < cardinality <= max(_DENSE_TABLE_LIMIT, 2 * count):
            counts = np.bincount(self.sorted_codes, minlength=cardinality) \
                if self.sorted_codes.size else np.zeros(cardinality,
                                                        dtype=np.int64)
            self._code_counts = counts.astype(np.int64)
            self._code_starts = np.concatenate(
                [[0], np.cumsum(self._code_counts)[:-1]])
        else:
            self._code_counts = None
            self._code_starts = None

    @staticmethod
    def _build_direct_map(uniques: np.ndarray) -> Optional[Tuple[int, np.ndarray]]:
        """Dense value->code array when the key range is narrow enough."""
        if uniques.size == 0 or uniques.dtype.kind not in "iu":
            return None
        low = int(uniques[0])
        high = int(uniques[-1])
        span = high - low + 1
        if span > max(4 * uniques.size, 1 << 16) or span > _DENSE_TABLE_LIMIT:
            return None
        table = np.full(span, -1, dtype=np.int64)
        table[uniques.astype(np.int64) - low] = np.arange(uniques.size,
                                                          dtype=np.int64)
        return low, table

    def probe_codes(self, probe_columns: Sequence[Vector]) -> np.ndarray:
        """Translate probe keys into build code space (-1 = cannot match)."""
        count = len(probe_columns[0]) if probe_columns else 0
        valid = np.ones(count, dtype=np.bool_)
        combined = np.zeros(count, dtype=np.int64)
        for position, column in enumerate(probe_columns):
            valid &= column.validity
            data = _column_arrays(column)
            uniques = self._uniques[position]
            if len(uniques) == 0:
                return np.full(count, -1, dtype=np.int64)
            direct = self._direct_maps[position]
            if direct is not None:
                low, table = direct
                shifted = data.astype(np.int64) - low
                in_range = (shifted >= 0) & (shifted < len(table))
                idx = table[np.where(in_range, shifted, 0)]
                idx = np.where(in_range, idx, -1)
                valid &= idx >= 0
                idx = np.maximum(idx, 0)
            else:
                idx = np.searchsorted(uniques, data)
                idx = np.minimum(idx, len(uniques) - 1)
                found = uniques[idx] == data
                valid &= np.asarray(found, dtype=np.bool_)
                idx = idx.astype(np.int64)
            combined = combined * self._radices[position] + idx
        combined[~valid] = -1
        return combined

    def match(self, probe_columns: Sequence[Vector]):
        """Expand all (probe_row, build_row) match pairs for a probe chunk.

        Returns ``(probe_positions, build_rows)`` -- two aligned int64
        arrays; a probe row appears once per matching build row.
        """
        codes = self.probe_codes(probe_columns)
        if self._code_counts is not None:
            safe = np.maximum(codes, 0)
            counts = self._code_counts[safe]
            lo = self._code_starts[safe]
            counts = np.where(codes < 0, 0, counts)
        else:
            lo = np.searchsorted(self.sorted_codes, codes, side="left")
            hi = np.searchsorted(self.sorted_codes, codes, side="right")
            counts = hi - lo
            counts[codes < 0] = 0
        total = int(counts.sum())
        if total == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        probe_positions = np.repeat(np.arange(len(codes), dtype=np.int64), counts)
        # Offsets within each probe row's match range.
        ends = np.cumsum(counts)
        starts = ends - counts
        within = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
        build_positions = np.repeat(lo, counts) + within
        return probe_positions, self.sorted_rows[build_positions]
