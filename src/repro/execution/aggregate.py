"""Grouped aggregation, DISTINCT, and set operations.

All three share the factorization machinery of
:mod:`~repro.execution.keys`: group keys are turned into dense integer ids
with ``np.unique`` and every aggregate is then a segmented NumPy reduction
over the whole input -- the vectorized (low cycles-per-value) execution
style the paper's §2 demands for OLAP workloads.

The aggregation input is buffered through a
:class:`~repro.execution.intermediates.ChunkBuffer`, so under memory
pressure the reactive controller transparently compresses it (Figure 1).
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from typing import Tuple

from ..errors import InternalError
from ..functions.aggregate import compute_aggregate
from ..planner.expressions import BoundAggregate, BoundExpression
from ..types import BIGINT, DOUBLE, DataChunk, LogicalType, VECTOR_SIZE, Vector
from .expression_executor import ExpressionExecutor
from .intermediates import ChunkBuffer
from .keys import factorize_for_groups
from .physical import ExecutionContext, PhysicalOperator

__all__ = ["PhysicalHashAggregate", "PhysicalDistinct", "PhysicalSetOp",
           "aggregate_supports_partial", "aggregate_input_layout",
           "partial_state_types", "compute_partial_state",
           "finalize_merged_state"]


# -- partial aggregation (morsel-driven parallel execution) -------------------
#
# A parallelizable aggregate decomposes into per-morsel *partial states* that
# workers compute independently, plus a commutative merge the coordinator
# applies over the concatenated partials.  Each state is an ordinary column,
# so merging reuses the same factorize + segmented-reduction machinery as
# serial aggregation: count -> sum of counts, sum -> sum of sums, min/max ->
# min/max of extremes, avg -> (sum, count), variance -> (sum, sum-of-squares,
# count).  ``first`` merges with ``first`` because partials arrive in morsel
# order, preserving the serial first-occurrence semantics.

PARALLEL_SAFE_AGGREGATES = frozenset([
    "count", "sum", "avg", "min", "max", "first",
    "stddev", "stddev_samp", "var_samp", "variance",
])

_VARIANCE_NAMES = ("stddev", "stddev_samp", "var_samp", "variance")


def aggregate_supports_partial(aggregate: BoundAggregate) -> bool:
    """True when this aggregate decomposes into partial states plus merge.

    DISTINCT aggregates need global deduplication and stay serial.
    """
    return (aggregate.name.lower() in PARALLEL_SAFE_AGGREGATES
            and not aggregate.distinct)


def aggregate_input_layout(groups: List[BoundExpression],
                           aggregates: List[BoundAggregate]):
    """Column types and per-aggregate argument slots of the evaluated input.

    The aggregation input is the group-key columns followed by one column
    per aggregate argument; argumentless aggregates (``count(*)``) get
    slot -1.
    """
    buffered_types = [group.return_type for group in groups]
    argument_slots: List[int] = []
    for aggregate in aggregates:
        if aggregate.args:
            argument_slots.append(len(buffered_types))
            buffered_types.append(aggregate.args[0].return_type)
        else:
            argument_slots.append(-1)
    return buffered_types, argument_slots


def partial_state_types(aggregate: BoundAggregate) -> List[Tuple[str, LogicalType]]:
    """``(merge aggregate name, state type)`` per partial-state column."""
    name = aggregate.name.lower()
    if name == "count":
        return [("sum", BIGINT)]
    if name == "sum":
        return [("sum", aggregate.return_type)]
    if name in ("min", "max", "first"):
        return [(name, aggregate.args[0].return_type)]
    if name == "avg":
        return [("sum", DOUBLE), ("sum", BIGINT)]
    if name in _VARIANCE_NAMES:
        return [("sum", DOUBLE), ("sum", DOUBLE), ("sum", BIGINT)]
    raise InternalError(f"Aggregate {name} has no partial decomposition")


def compute_partial_state(aggregate: BoundAggregate, argument: Optional[Vector],
                          group_ids: np.ndarray,
                          group_count: int) -> List[Vector]:
    """One morsel's partial-state columns for one aggregate."""
    name = aggregate.name.lower()
    if name == "count":
        return [compute_aggregate("count", False, argument, group_ids,
                                  group_count, BIGINT)]
    if name == "sum":
        return [compute_aggregate("sum", False, argument, group_ids,
                                  group_count, aggregate.return_type)]
    if name in ("min", "max", "first"):
        return [compute_aggregate(name, False, argument, group_ids,
                                  group_count, argument.dtype)]
    if name == "avg":
        return [compute_aggregate("sum", False, argument, group_ids,
                                  group_count, DOUBLE),
                compute_aggregate("count", False, argument, group_ids,
                                  group_count, BIGINT)]
    if name in _VARIANCE_NAMES:
        cleaned = np.where(argument.validity, argument.data, 0).astype(np.float64)
        squares = Vector(DOUBLE, cleaned * cleaned, argument.validity.copy())
        return [compute_aggregate("sum", False, argument, group_ids,
                                  group_count, DOUBLE),
                compute_aggregate("sum", False, squares, group_ids,
                                  group_count, DOUBLE),
                compute_aggregate("count", False, argument, group_ids,
                                  group_count, BIGINT)]
    raise InternalError(f"Aggregate {name} has no partial decomposition")


def finalize_merged_state(aggregate: BoundAggregate,
                          states: List[Vector]) -> Vector:
    """Turn merged partial states back into the aggregate's result column."""
    name = aggregate.name.lower()
    if name in ("count", "sum", "min", "max", "first"):
        return states[0]
    if name == "avg":
        sums, counts = states
        counts_data = np.where(counts.validity, counts.data, 0).astype(np.float64)
        validity = counts_data > 0
        with np.errstate(all="ignore"):
            means = np.where(sums.validity, sums.data, 0.0) \
                / np.maximum(counts_data, 1)
        return Vector(DOUBLE, means, validity)
    if name in _VARIANCE_NAMES:
        sums, squares, counts = states
        n = np.where(counts.validity, counts.data, 0).astype(np.float64)
        s = np.where(sums.validity, sums.data, 0.0).astype(np.float64)
        ss = np.where(squares.validity, squares.data, 0.0).astype(np.float64)
        validity = n > 1
        with np.errstate(all="ignore"):
            variance = (ss - s * s / np.maximum(n, 1)) / np.maximum(n - 1, 1)
        variance = np.maximum(variance, 0.0)
        if name in ("stddev", "stddev_samp"):
            variance = np.sqrt(variance)
        return Vector(DOUBLE, variance, validity)
    raise InternalError(f"Aggregate {name} has no partial decomposition")


class PhysicalHashAggregate(PhysicalOperator):
    """GROUP BY aggregation: output = group key columns ++ aggregate columns."""

    def __init__(self, context: ExecutionContext, child: PhysicalOperator,
                 groups: List[BoundExpression], aggregates: List[BoundAggregate],
                 types, names) -> None:
        super().__init__(context, [child], types, names)
        self.groups = groups
        self.aggregates = aggregates

    def execute(self) -> Iterator[DataChunk]:
        context = self.context
        executor = ExpressionExecutor(context)
        # Evaluate group keys and aggregate arguments once per input chunk,
        # buffering only those columns (not the full input).
        buffered_types, argument_slots = aggregate_input_layout(
            self.groups, self.aggregates)

        total_rows = 0
        needs_buffer = bool(buffered_types)
        with ChunkBuffer(buffered_types, context, "aggregate input") as buffer:
            for chunk in self.children[0].run():
                context.check_interrupted()
                if needs_buffer:
                    columns = [executor.execute(group, chunk)
                               for group in self.groups]
                    for aggregate in self.aggregates:
                        if aggregate.args:
                            columns.append(executor.execute(aggregate.args[0], chunk))
                    buffer.append(DataChunk(columns))
                total_rows += chunk.size
            materialized = buffer.materialize() if needs_buffer else None

        group_count = len(self.groups)
        if group_count == 0:
            # Ungrouped aggregation always yields exactly one row.
            group_ids = np.zeros(total_rows, dtype=np.int64)
            result_columns: List[Vector] = []
            for slot, aggregate in zip(argument_slots, self.aggregates):
                argument = materialized.columns[slot] if slot >= 0 else None
                result_columns.append(compute_aggregate(
                    aggregate.name, aggregate.distinct, argument, group_ids, 1,
                    aggregate.return_type))
            yield DataChunk(result_columns)
            return

        if materialized.size == 0:
            return
        key_columns = materialized.columns[:group_count]
        group_ids, groups_found, representatives = factorize_for_groups(key_columns)
        context.bump_stat("aggregate_groups", groups_found)

        result_columns = [column.slice(representatives) for column in key_columns]
        for slot, aggregate in zip(argument_slots, self.aggregates):
            argument = materialized.columns[slot] if slot >= 0 else None
            result_columns.append(compute_aggregate(
                aggregate.name, aggregate.distinct, argument, group_ids,
                groups_found, aggregate.return_type))
        result = DataChunk(result_columns)
        for piece in result.split(VECTOR_SIZE):
            yield piece

    def _explain_line(self) -> str:
        return (f"HASH_AGGREGATE groups={len(self.groups)} "
                f"aggs={len(self.aggregates)}")


class PhysicalDistinct(PhysicalOperator):
    """DISTINCT: one representative row per unique full-row key."""

    def __init__(self, context: ExecutionContext, child: PhysicalOperator) -> None:
        super().__init__(context, [child], child.types, child.names)

    def execute(self) -> Iterator[DataChunk]:
        context = self.context
        with ChunkBuffer(self.types, context, "distinct input") as buffer:
            for chunk in self.children[0].run():
                context.check_interrupted()
                buffer.append(chunk)
            materialized = buffer.materialize()
        if materialized.size == 0:
            return
        _, _, representatives = factorize_for_groups(materialized.columns)
        # Keep first-occurrence order for reproducible output.
        representatives = np.sort(representatives)
        result = materialized.slice(representatives)
        for piece in result.split(VECTOR_SIZE):
            yield piece

    def _explain_line(self) -> str:
        return "DISTINCT"


class PhysicalSetOp(PhysicalOperator):
    """UNION [ALL] / EXCEPT / INTERSECT with SQL bag/set semantics."""

    def __init__(self, context: ExecutionContext, left: PhysicalOperator,
                 right: PhysicalOperator, op: str, all_: bool, types, names) -> None:
        super().__init__(context, [left, right], types, names)
        self.op = op
        self.all = all_

    def execute(self) -> Iterator[DataChunk]:
        context = self.context
        if self.op == "union" and self.all:
            for child in self.children:
                for chunk in child.run():
                    context.check_interrupted()
                    yield chunk
            return

        with ChunkBuffer(self.types, context, "setop left") as left_buffer:
            for chunk in self.children[0].run():
                context.check_interrupted()
                left_buffer.append(chunk)
            left = left_buffer.materialize()
        with ChunkBuffer(self.types, context, "setop right") as right_buffer:
            for chunk in self.children[1].run():
                context.check_interrupted()
                right_buffer.append(chunk)
            right = right_buffer.materialize()

        if self.op == "union":
            combined = DataChunk.concat_many([left, right]) \
                if left.size or right.size else left
            if combined.size == 0:
                return
            _, _, representatives = factorize_for_groups(combined.columns)
            result = combined.slice(np.sort(representatives))
            for piece in result.split(VECTOR_SIZE):
                yield piece
            return

        # EXCEPT / INTERSECT (set semantics; ALL variants use multiplicity).
        if left.size == 0:
            return
        combined = DataChunk.concat_many([left, right]) if right.size else left
        group_ids, group_total, _ = factorize_for_groups(combined.columns)
        left_ids = group_ids[:left.size]
        right_ids = group_ids[left.size:]
        left_counts = np.bincount(left_ids, minlength=group_total)
        right_counts = np.bincount(right_ids, minlength=group_total)
        if self.op == "intersect":
            eligible = (left_counts > 0) & (right_counts > 0)
        elif self.op == "except":
            eligible = (left_counts > 0) & (right_counts == 0)
        else:
            raise InternalError(f"Unknown set operation {self.op}")
        keep_mask = eligible[left_ids]
        if not keep_mask.any():
            return
        kept_rows = np.flatnonzero(keep_mask)
        if not self.all:
            # Set semantics: one representative per group.
            _, first_positions = np.unique(left_ids[kept_rows], return_index=True)
            kept_rows = kept_rows[np.sort(first_positions)]
        result = left.slice(kept_rows)
        for piece in result.split(VECTOR_SIZE):
            yield piece

    def _explain_line(self) -> str:
        suffix = " ALL" if self.all else ""
        return f"{self.op.upper()}{suffix}"
