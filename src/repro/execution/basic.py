"""Streaming operators: filter, projection, limit."""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from ..planner.expressions import BoundExpression
from ..types import DataChunk
from .expression_executor import ExpressionExecutor
from .physical import ExecutionContext, PhysicalOperator

__all__ = ["PhysicalFilter", "PhysicalProjection", "PhysicalLimit"]


class PhysicalFilter(PhysicalOperator):
    def __init__(self, context: ExecutionContext, child: PhysicalOperator,
                 predicate: BoundExpression) -> None:
        super().__init__(context, [child], child.types, child.names)
        self.predicate = predicate

    def execute(self) -> Iterator[DataChunk]:
        executor = ExpressionExecutor(self.context)
        for chunk in self.children[0].run():
            self.context.check_interrupted()
            mask = executor.execute_filter(self.predicate, chunk)
            if mask.all():
                yield chunk
            elif mask.any():
                yield chunk.slice(mask)

    def _explain_line(self) -> str:
        return f"FILTER {self.predicate!r}"


class PhysicalProjection(PhysicalOperator):
    def __init__(self, context: ExecutionContext, child: PhysicalOperator,
                 expressions: List[BoundExpression], names: List[str]) -> None:
        super().__init__(context, [child],
                         [expression.return_type for expression in expressions],
                         names)
        self.expressions = expressions
        #: Set by the physical planner when every kernel in this projection
        #: and the filter directly below it satisfies the fusion contract
        #: (pure, thread-safe, vectorized, no unchecked NULL handling) per
        #: the kernel capability manifest.  Advisory: surfaced in EXPLAIN.
        self.fusable = False

    def execute(self) -> Iterator[DataChunk]:
        executor = ExpressionExecutor(self.context)
        for chunk in self.children[0].run():
            self.context.check_interrupted()
            yield DataChunk([executor.execute(expression, chunk)
                             for expression in self.expressions])

    def _explain_line(self) -> str:
        suffix = " [fusable]" if self.fusable else ""
        return f"PROJECT [{', '.join(self.names)}]{suffix}"


class PhysicalLimit(PhysicalOperator):
    def __init__(self, context: ExecutionContext, child: PhysicalOperator,
                 limit: Optional[int], offset: int) -> None:
        super().__init__(context, [child], child.types, child.names)
        self.limit = limit
        self.offset = offset

    def execute(self) -> Iterator[DataChunk]:
        to_skip = self.offset
        remaining = self.limit
        for chunk in self.children[0].run():
            self.context.check_interrupted()
            if to_skip:
                if chunk.size <= to_skip:
                    to_skip -= chunk.size
                    continue
                chunk = chunk.slice(np.arange(to_skip, chunk.size))
                to_skip = 0
            if remaining is None:
                yield chunk
                continue
            if remaining <= 0:
                return
            if chunk.size > remaining:
                chunk = chunk.slice(np.arange(0, remaining))
            remaining -= chunk.size
            if chunk.size:
                yield chunk
            if remaining <= 0:
                return

    def _explain_line(self) -> str:
        return f"LIMIT {self.limit} OFFSET {self.offset}"
