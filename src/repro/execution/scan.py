"""Source operators: table scan, CSV scan, VALUES, empty."""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..planner.expressions import (
    BoundColumnRef,
    BoundConstant,
    BoundExpression,
    BoundOperator,
)
from ..types import VECTOR_SIZE, DataChunk, Vector
from .expression_executor import ExpressionExecutor
from .physical import ExecutionContext, PhysicalOperator

__all__ = ["PhysicalTableScan", "PhysicalCSVScan",
           "PhysicalIntrospectionScan", "PhysicalValues",
           "PhysicalEmptyResult"]


def _extract_zone_conditions(filters: List[BoundExpression],
                             column_ids: List[int]):
    """Distill pushed filters into (physical column id, op, constant) triples
    usable against column zonemaps.  Only plain column-vs-constant
    comparisons qualify; everything else is ignored (still evaluated on the
    fetched chunk as usual)."""
    flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}
    conditions: List[Tuple[int, str, float]] = []
    for predicate in filters:
        if not isinstance(predicate, BoundOperator) or len(predicate.args) != 2:
            continue
        op = predicate.op
        if op not in ("<", "<=", ">", ">=", "="):
            continue
        left, right = predicate.args
        if isinstance(left, BoundColumnRef) and isinstance(right, BoundConstant):
            column, constant = left, right
        elif isinstance(right, BoundColumnRef) and isinstance(left, BoundConstant):
            column, constant = right, left
            op = flipped[op]
        else:
            continue
        if constant.value is None or isinstance(constant.value, str):
            continue
        if not (column.return_type.is_numeric()
                or column.return_type.is_temporal()):
            continue
        value = constant.value
        # Temporal constants compare against the stored integer encoding.
        import datetime

        if isinstance(value, datetime.datetime):
            from ..types.logical import timestamp_to_micros

            value = timestamp_to_micros(value)
        elif isinstance(value, datetime.date):
            from ..types.logical import date_to_days

            value = date_to_days(value)
        elif isinstance(value, bool):
            continue
        conditions.append((column_ids[column.position], op, value))
    return conditions


class PhysicalTableScan(PhysicalOperator):
    """MVCC scan of a base table, with pushed-down filters and projection.

    Pushed filters serve double duty: simple column-vs-constant comparisons
    are first checked against per-zone min/max bounds so whole row ranges
    are skipped *without fetching them* -- the paper's §6 "skip irrelevant
    blocks of rows during a scan" -- and every filter is then evaluated on
    the chunks that do get fetched, before any parent operator sees them.
    """

    def __init__(self, context: ExecutionContext, table_entry, column_ids: List[int],
                 types, names, filters: Optional[List[BoundExpression]] = None,
                 row_range: Optional[Tuple[int, int]] = None,
                 limit_hint: Optional[int] = None) -> None:
        super().__init__(context, [], types, names)
        self.table_entry = table_entry
        self.column_ids = column_ids
        self.filters = filters or []
        #: Optional [start, end) physical row restriction -- one morsel of a
        #: parallel scan.  ``None`` scans the whole table (serial execution).
        self.row_range = row_range
        #: Stop fetching once this many rows passed the filters (LIMIT
        #: pushdown).  Exactness is still enforced by the LIMIT operator
        #: above; this only lets the scan quit early.
        self.limit_hint = limit_hint
        self._zone_conditions = _extract_zone_conditions(self.filters,
                                                         column_ids)

    def _range_predicate(self, start: int, end: int) -> bool:
        """False when zone bounds prove no row in [start, end) can match."""
        data = self.table_entry.data
        for column_id, op, constant in self._zone_conditions:
            bounds = data.columns[column_id].zone_bounds(start, end)
            if bounds is None:
                continue
            low, high = bounds
            if op == "=" and not (low <= constant <= high):
                self.context.bump_stat("zones_skipped", 1)
                return False
            if op in ("<", "<=") and not (low < constant
                                          or (op == "<=" and low <= constant)):
                self.context.bump_stat("zones_skipped", 1)
                return False
            if op in (">", ">=") and not (high > constant
                                          or (op == ">=" and high >= constant)):
                self.context.bump_stat("zones_skipped", 1)
                return False
        return True

    def execute(self) -> Iterator[DataChunk]:
        executor = ExpressionExecutor(self.context)
        range_predicate = self._range_predicate if self._zone_conditions \
            else None
        start_row, end_row = self.row_range if self.row_range is not None \
            else (0, None)
        produced = 0
        for chunk in self.table_entry.data.scan(self.context.transaction,
                                                self.column_ids,
                                                range_predicate=range_predicate,
                                                start_row=start_row,
                                                end_row=end_row):
            self.context.check_interrupted()
            self.context.bump_stat("rows_scanned", chunk.size)
            for predicate in self.filters:
                if chunk.size == 0:
                    break
                mask = executor.execute_filter(predicate, chunk)
                if not mask.all():
                    chunk = chunk.slice(mask)
            if chunk.size:
                yield chunk
                produced += chunk.size
                if self.limit_hint is not None \
                        and produced >= self.limit_hint:
                    self.context.bump_stat("scan_limit_stops", 1)
                    return

    def _explain_line(self) -> str:
        filters = f" filters={len(self.filters)}" if self.filters else ""
        zones = f" zonemap={len(self._zone_conditions)}" \
            if self._zone_conditions else ""
        hint = f" limit_hint={self.limit_hint}" \
            if self.limit_hint is not None else ""
        return (f"TABLE_SCAN {self.table_entry.name}"
                f"[{', '.join(self.names)}]{filters}{zones}{hint}")


class PhysicalCSVScan(PhysicalOperator):
    """Streaming scan of a CSV file (paper §2: ETL directly from files)."""

    def __init__(self, context: ExecutionContext, path: str, options: dict,
                 types, names) -> None:
        super().__init__(context, [], types, names)
        self.path = path
        self.options = options

    def execute(self) -> Iterator[DataChunk]:
        from ..etl.csv_reader import read_csv_chunks

        for chunk in read_csv_chunks(self.path, self.types, **self.options):
            self.context.check_interrupted()
            self.context.bump_stat("rows_scanned", chunk.size)
            yield chunk

    def _explain_line(self) -> str:
        return f"CSV_SCAN {self.path!r}"


class PhysicalIntrospectionScan(PhysicalOperator):
    """Generator-backed scan over a system table function's snapshot.

    The provider materializes its snapshot once, at first pull (copy-then-
    release under the engine lock hierarchy -- see
    :mod:`repro.introspection.providers`); this operator then slices the
    row list into standard 2048-value vectors, so filters, joins, and
    aggregates over system tables go through the ordinary Vector Volcano
    machinery.
    """

    def __init__(self, context: ExecutionContext, function,
                 types, names) -> None:
        super().__init__(context, [], types, names)
        self.function = function

    def execute(self) -> Iterator[DataChunk]:
        rows = self.function.rows(self.context.database,
                                  self.context.transaction)
        for start in range(0, len(rows), VECTOR_SIZE):
            self.context.check_interrupted()
            batch = rows[start:start + VECTOR_SIZE]
            columns = [
                Vector.from_values([row[index] for row in batch], dtype)
                for index, dtype in enumerate(self.types)
            ]
            chunk = DataChunk(columns)
            self.context.bump_stat("rows_scanned", chunk.size)
            yield chunk

    def _explain_line(self) -> str:
        return f"INTROSPECT {self.function.name}()"


class PhysicalValues(PhysicalOperator):
    """Materializes literal rows (VALUES / SELECT without FROM)."""

    def __init__(self, context: ExecutionContext, rows, types, names) -> None:
        super().__init__(context, [], types, names)
        self.rows = rows

    def execute(self) -> Iterator[DataChunk]:
        if not self.rows:
            return
        executor = ExpressionExecutor(self.context)
        dummy = DataChunk([Vector.from_values([True])])
        columns = []
        for column_index, dtype in enumerate(self.types):
            values = []
            for row in self.rows:
                vector = executor.execute(row[column_index], dummy)
                values.append(vector.get_value(0))
            columns.append(Vector.from_values(values, dtype))
        yield DataChunk(columns)

    def _explain_line(self) -> str:
        return f"VALUES ({len(self.rows)} rows)"


class PhysicalEmptyResult(PhysicalOperator):
    def execute(self) -> Iterator[DataChunk]:
        return iter(())

    def _explain_line(self) -> str:
        return "EMPTY"
