"""Window function execution.

The operator materializes its input (through a compressible, spillable
:class:`~repro.execution.intermediates.ChunkBuffer`, like every blocking
operator), then for each window expression:

1. evaluates partition keys and factorizes them into dense partition ids;
2. sorts rows by (partition id, ORDER BY keys) -- one vectorized sort;
3. computes the function over the sorted layout with segmented NumPy
   kernels (boundary masks + cumulative operations);
4. scatters results back into the original row order, so downstream
   operators see the input rows unchanged plus the new column.

Running aggregates use ROWS UNBOUNDED PRECEDING .. CURRENT ROW semantics
(per physical row, not per peer group -- a documented simplification).
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from ..errors import InternalError
from ..functions.aggregate import compute_aggregate
from ..planner.window import BoundWindowExpr
from ..types import BIGINT, DataChunk, LogicalTypeId, VECTOR_SIZE, Vector
from .expression_executor import ExpressionExecutor
from .intermediates import ChunkBuffer
from .keys import factorize_for_groups
from .physical import ExecutionContext, PhysicalOperator
from .sort import SortKey, sort_order

__all__ = ["PhysicalWindow"]


def _partition_starts_mask(partition_ids_sorted: np.ndarray) -> np.ndarray:
    """Boolean mask: True where a new partition begins (in sorted order)."""
    count = len(partition_ids_sorted)
    mask = np.ones(count, dtype=np.bool_)
    if count > 1:
        mask[1:] = partition_ids_sorted[1:] != partition_ids_sorted[:-1]
    return mask


def _segment_base(values: np.ndarray, new_segment: np.ndarray) -> np.ndarray:
    """Per row: the value of ``values`` at its segment's first row.

    ``new_segment`` marks segment starts; both arrays are in sorted order.
    """
    index = np.arange(len(values), dtype=np.int64)
    start_positions = np.where(new_segment, index, 0)
    start_positions = np.maximum.accumulate(start_positions)
    return values[start_positions]


class PhysicalWindow(PhysicalOperator):
    """Computes window columns; output = child columns ++ window columns."""

    def __init__(self, context: ExecutionContext, child: PhysicalOperator,
                 windows: List[BoundWindowExpr], types, names) -> None:
        super().__init__(context, [child], types, names)
        self.windows = windows

    # -- kernels (all operate on the sorted layout) -------------------------
    def _ranking(self, window: BoundWindowExpr, order_key_codes,
                 partition_new: np.ndarray) -> Vector:
        count = len(partition_new)
        index = np.arange(count, dtype=np.int64)
        partition_start = _segment_base(index, partition_new)
        if window.name == "row_number":
            data = index - partition_start + 1
            return Vector(BIGINT, data, np.ones(count, dtype=np.bool_))
        # rank / dense_rank need peer boundaries (ties in the order keys).
        peer_new = partition_new.copy()
        if order_key_codes is not None and count > 1:
            peer_new[1:] |= order_key_codes[1:] != order_key_codes[:-1]
        if window.name == "rank":
            peer_start = _segment_base(index, peer_new)
            data = peer_start - partition_start + 1
            return Vector(BIGINT, data, np.ones(count, dtype=np.bool_))
        # dense_rank: count of peer groups so far within the partition.
        new_group = peer_new.astype(np.int64)
        group_cum = np.cumsum(new_group)
        base = _segment_base(group_cum - new_group, partition_new)
        data = group_cum - base
        return Vector(BIGINT, data, np.ones(count, dtype=np.bool_))

    def _ntile(self, window: BoundWindowExpr, materialized: DataChunk,
               executor: ExpressionExecutor, partition_sorted: np.ndarray,
               partition_new: np.ndarray) -> Vector:
        """SQL ntile: split each partition into n maximally even buckets."""
        count = len(partition_sorted)
        buckets_vector = executor.execute(window.args[0], materialized)
        buckets = int(buckets_vector.data[0]) if len(buckets_vector) else 1
        if buckets < 1:
            raise InternalError("ntile() bucket count must be >= 1")
        index = np.arange(count, dtype=np.int64)
        partition_start = _segment_base(index, partition_new)
        position = index - partition_start  # 0-based within the partition
        # Partition sizes, broadcast per row.
        sizes = np.bincount(partition_sorted,
                            minlength=int(partition_sorted.max()) + 1
                            if count else 1)
        size = sizes[partition_sorted]
        base = size // buckets
        remainder = size % buckets
        big = remainder * (base + 1)
        in_big = position < big
        with np.errstate(divide="ignore", invalid="ignore"):
            tile_big = position // np.maximum(base + 1, 1)
            tile_small = remainder + (position - big) // np.maximum(base, 1)
        data = np.where(in_big, tile_big, tile_small) + 1
        return Vector(BIGINT, data.astype(np.int64),
                      np.ones(count, dtype=np.bool_))

    def _boundary_value(self, window: BoundWindowExpr, argument: Vector,
                        partition_new: np.ndarray) -> Vector:
        """first_value/last_value over the whole partition (documented frame)."""
        count = len(argument)
        index = np.arange(count, dtype=np.int64)
        if window.name == "first_value":
            source = _segment_base(index, partition_new)
        else:
            # Each row maps to its partition's last index.
            starts = np.flatnonzero(partition_new)
            ends = np.concatenate([starts[1:], [count]]) - 1
            source = np.repeat(ends, np.diff(np.concatenate([starts, [count]])))
        data = argument.data[source]
        validity = argument.validity[source]
        return Vector(argument.dtype, data.copy(), validity.copy())

    def _offset_function(self, window: BoundWindowExpr, argument: Vector,
                         default: Optional[Vector],
                         partition_ids_sorted: np.ndarray,
                         offset: int) -> Vector:
        count = len(argument)
        if window.name == "lead":
            offset = -offset
        shifted_data = np.roll(argument.data, offset)
        shifted_validity = np.roll(argument.validity, offset)
        shifted_partition = np.roll(partition_ids_sorted, offset)
        index = np.arange(count, dtype=np.int64)
        # Out of bounds when the source row falls outside [0, count) or
        # belongs to a different partition.
        if offset >= 0:
            in_range = index >= offset
        else:
            in_range = index < count + offset
        valid_source = in_range & (shifted_partition == partition_ids_sorted)
        data = shifted_data.copy()
        validity = shifted_validity & valid_source
        if default is not None:
            use_default = ~valid_source
            data[use_default] = default.data[use_default]
            validity = np.where(use_default, default.validity, validity)
        if not validity.all() and data.dtype != object:
            data[~validity] = 0
        return Vector(argument.dtype, data, validity)

    def _running_aggregate(self, window: BoundWindowExpr, argument: Optional[Vector],
                           partition_ids_sorted: np.ndarray,
                           partition_new: np.ndarray,
                           partition_count: int) -> Vector:
        count = len(partition_ids_sorted)
        if not window.order_items:
            # Whole-partition aggregate, broadcast to every member row.
            per_partition = compute_aggregate(
                window.name, False, argument, partition_ids_sorted,
                partition_count, window.return_type)
            data = per_partition.data[partition_ids_sorted]
            validity = per_partition.validity[partition_ids_sorted]
            return Vector(window.return_type, data.copy(), validity.copy())

        # Running aggregates: cumulative ops with per-partition reset.
        name = window.name
        if name == "count":
            counted = argument.validity.astype(np.int64) \
                if argument is not None else np.ones(count, dtype=np.int64)
            running = np.cumsum(counted)
            base = _segment_base(running - counted, partition_new)
            return Vector(BIGINT, running - base,
                          np.ones(count, dtype=np.bool_))
        if argument is None:
            raise InternalError(f"window aggregate {name} needs an argument")
        valid = argument.validity
        values = np.where(valid, argument.data, 0)
        if name in ("sum", "avg"):
            running_sum = np.cumsum(values.astype(np.float64))
            running_sum -= _segment_base(
                running_sum - np.where(valid, values, 0), partition_new)
            counted = valid.astype(np.int64)
            running_count = np.cumsum(counted)
            running_count -= _segment_base(running_count - counted,
                                           partition_new)
            validity = running_count > 0
            if name == "avg":
                with np.errstate(all="ignore"):
                    data = running_sum / np.maximum(running_count, 1)
                return Vector(window.return_type, data, validity)
            if window.return_type.is_integer():
                data = np.rint(running_sum).astype(np.int64)
            else:
                data = running_sum
            return Vector(window.return_type, data, validity)
        if name in ("min", "max"):
            # Segmented cumulative extreme: per-partition slices (bounded
            # Python loop over partitions, vectorized within each).
            out = argument.data.astype(np.float64, copy=True)
            sentinel = np.inf if name == "min" else -np.inf
            out[~valid] = sentinel
            accumulate = np.minimum.accumulate if name == "min" \
                else np.maximum.accumulate
            starts = np.flatnonzero(partition_new)
            ends = np.concatenate([starts[1:], [count]])
            for start, end in zip(starts, ends):
                out[start:end] = accumulate(out[start:end])
            validity = out != sentinel
            data = np.where(validity, out, 0)
            if window.return_type.id is not LogicalTypeId.DOUBLE and \
                    window.return_type.numpy_dtype.kind in "iu":
                data = np.rint(data).astype(window.return_type.numpy_dtype)
            else:
                data = data.astype(window.return_type.numpy_dtype)
            return Vector(window.return_type, data, validity)
        raise InternalError(f"Unhandled window aggregate {name}")

    # -- main ------------------------------------------------------------------
    def _compute_window(self, window: BoundWindowExpr, materialized: DataChunk,
                        executor: ExpressionExecutor) -> Vector:
        count = materialized.size
        if count == 0:
            return Vector.empty(window.return_type, 0)
        # 1. Partition ids.
        if window.partitions:
            keys = [executor.execute(key, materialized)
                    for key in window.partitions]
            partition_ids, partition_count, _ = factorize_for_groups(keys)
        else:
            partition_ids = np.zeros(count, dtype=np.int64)
            partition_count = 1
        # 2. Sort by (partition, order keys).
        order_vectors = [executor.execute(item.expression, materialized)
                         for item in window.order_items]
        partition_vector = Vector(BIGINT, partition_ids)
        sort_chunk = DataChunk([partition_vector] + order_vectors)
        keys = [SortKey(0, True, False)] + [
            SortKey(position + 1, item.ascending, item.nulls_first)
            for position, item in enumerate(window.order_items)
        ]
        order = sort_order(sort_chunk, keys)
        partition_sorted = partition_ids[order]
        partition_new = _partition_starts_mask(partition_sorted)

        # Combined order-key codes (for rank ties), in sorted order.
        order_key_codes = None
        if order_vectors:
            codes, _, _ = factorize_for_groups(
                [vector.slice(order) for vector in order_vectors])
            order_key_codes = codes

        # 3. Evaluate the argument (sorted order) and dispatch.
        name = window.name
        if name in ("row_number", "rank", "dense_rank"):
            sorted_result = self._ranking(window, order_key_codes,
                                          partition_new)
        elif name == "ntile":
            sorted_result = self._ntile(window, materialized, executor,
                                        partition_sorted, partition_new)
        elif name in ("first_value", "last_value"):
            argument = executor.execute(window.args[0], materialized).slice(order)
            sorted_result = self._boundary_value(window, argument,
                                                 partition_new)
        elif name in ("lag", "lead"):
            argument = executor.execute(window.args[0], materialized).slice(order)
            offset = 1
            if len(window.args) >= 2:
                offset_vector = executor.execute(window.args[1], materialized)
                offset = int(offset_vector.data[0]) if len(offset_vector) else 1
            default = None
            if len(window.args) == 3:
                default = executor.execute(window.args[2],
                                           materialized).slice(order)
                from ..types import cast_vector

                default = cast_vector(default, argument.dtype)
            sorted_result = self._offset_function(window, argument, default,
                                                  partition_sorted, offset)
        else:
            argument = None
            if window.args:
                argument = executor.execute(window.args[0],
                                            materialized).slice(order)
            sorted_result = self._running_aggregate(
                window, argument, partition_sorted, partition_new,
                partition_count)

        # 4. Scatter back to the original row order.
        result = Vector.empty(window.return_type, count)
        result.data[order] = sorted_result.data
        result.validity[order] = sorted_result.validity
        return result

    def execute(self) -> Iterator[DataChunk]:
        context = self.context
        child = self.children[0]
        executor = ExpressionExecutor(context)
        with ChunkBuffer(child.types, context, "window input") as buffer:
            for chunk in child.run():
                context.check_interrupted()
                buffer.append(chunk)
            materialized = buffer.materialize()
        if materialized.size == 0:
            return
        window_columns = [self._compute_window(window, materialized, executor)
                          for window in self.windows]
        result = DataChunk(list(materialized.columns) + window_columns)
        for piece in result.split(VECTOR_SIZE):
            context.check_interrupted()
            yield piece

    def _explain_line(self) -> str:
        names = ", ".join(window.name for window in self.windows)
        return f"WINDOW [{names}]"
