"""Write-ahead log (paper §6).

*"As an exception, the WAL is written to a separate file until consumed by a
checkpoint."*

The WAL stores *logical* records (create table, bulk append, bulk delete,
bulk update, ...) rather than physical page images: bulk ETL operations are
the common write pattern (§2), and logging them logically keeps the WAL
proportional to the change, not to the table.

Records of one transaction are buffered in memory and written -- followed by
a COMMIT record and an fsync -- only when the transaction commits.  Each
record is framed with its length and a CRC-32; replay stops at the first
torn or corrupted frame, so a crash mid-write simply loses the uncommitted
tail, never committed data.
"""

from __future__ import annotations

import enum
import os
import struct
from typing import Any, List, Optional

import numpy as np

from ..errors import CorruptionError, WALError
from ..observability import engine_span, registry as metrics_registry
from ..types import DataChunk, LogicalType, Vector, type_from_string
from .checksum import checksum
from .compression import CompressionLevel, decode_array, encode_array
from .serialize import BinaryReader, BinaryWriter

__all__ = ["WALRecordType", "WALRecord", "WriteAheadLog",
           "serialize_chunk", "deserialize_chunk"]

_FRAME = struct.Struct("<QI")  # payload length, crc32


class WALRecordType(enum.IntEnum):
    CREATE_TABLE = 1
    DROP_TABLE = 2
    CREATE_VIEW = 3
    DROP_VIEW = 4
    INSERT_CHUNK = 5
    DELETE_ROWS = 6
    UPDATE_ROWS = 7
    COMMIT = 8


def serialize_chunk(writer: BinaryWriter, chunk: DataChunk) -> None:
    """Append a chunk (types, data, validity) to a binary stream."""
    writer.write_uint32(chunk.column_count)
    writer.write_uint64(chunk.size)
    for vector in chunk.columns:
        writer.write_string(str(vector.dtype))
        writer.write_bytes(encode_array(vector.data, CompressionLevel.NONE))
        writer.write_bytes(encode_array(vector.validity, CompressionLevel.NONE))


def deserialize_chunk(reader: BinaryReader) -> DataChunk:
    """Inverse of :func:`serialize_chunk`."""
    column_count = reader.read_uint32()
    row_count = reader.read_uint64()
    vectors = []
    for _ in range(column_count):
        dtype = type_from_string(reader.read_string())
        data = decode_array(reader.read_bytes())
        validity = decode_array(reader.read_bytes()).astype(np.bool_)
        if len(data) != row_count or len(validity) != row_count:
            raise CorruptionError("Chunk payload length mismatch in WAL")
        vectors.append(Vector(dtype, data, validity))
    return DataChunk(vectors)


class WALRecord:
    """One logical WAL record: a type tag plus a typed payload."""

    __slots__ = ("record_type", "payload")

    def __init__(self, record_type: WALRecordType, payload: dict) -> None:
        self.record_type = record_type
        self.payload = payload

    # -- constructors for each record kind ---------------------------------
    @classmethod
    def create_table(cls, name: str, columns: List[tuple]) -> "WALRecord":
        """``columns`` is a list of (name, type_string, nullable, default_text)."""
        return cls(WALRecordType.CREATE_TABLE, {"name": name, "columns": columns})

    @classmethod
    def drop_table(cls, name: str) -> "WALRecord":
        return cls(WALRecordType.DROP_TABLE, {"name": name})

    @classmethod
    def create_view(cls, name: str, sql: str) -> "WALRecord":
        return cls(WALRecordType.CREATE_VIEW, {"name": name, "sql": sql})

    @classmethod
    def drop_view(cls, name: str) -> "WALRecord":
        return cls(WALRecordType.DROP_VIEW, {"name": name})

    @classmethod
    def insert_chunk(cls, table: str, chunk: DataChunk) -> "WALRecord":
        return cls(WALRecordType.INSERT_CHUNK, {"table": table, "chunk": chunk})

    @classmethod
    def delete_rows(cls, table: str, rows: np.ndarray) -> "WALRecord":
        return cls(WALRecordType.DELETE_ROWS, {"table": table, "rows": rows})

    @classmethod
    def update_rows(cls, table: str, column_indices: List[int], rows: np.ndarray,
                    chunk: DataChunk) -> "WALRecord":
        return cls(WALRecordType.UPDATE_ROWS, {
            "table": table, "columns": column_indices, "rows": rows, "chunk": chunk,
        })

    @classmethod
    def commit(cls, commit_id: int) -> "WALRecord":
        return cls(WALRecordType.COMMIT, {"commit_id": commit_id})

    # -- wire format -----------------------------------------------------------
    def serialize(self) -> bytes:
        writer = BinaryWriter()
        writer.write_uint8(int(self.record_type))
        payload = self.payload
        kind = self.record_type
        if kind is WALRecordType.CREATE_TABLE:
            writer.write_string(payload["name"])
            writer.write_uint32(len(payload["columns"]))
            for name, type_text, nullable, default_text in payload["columns"]:
                writer.write_string(name)
                writer.write_string(type_text)
                writer.write_bool(nullable)
                writer.write_optional_string(default_text)
        elif kind in (WALRecordType.DROP_TABLE, WALRecordType.DROP_VIEW):
            writer.write_string(payload["name"])
        elif kind is WALRecordType.CREATE_VIEW:
            writer.write_string(payload["name"])
            writer.write_string(payload["sql"])
        elif kind is WALRecordType.INSERT_CHUNK:
            writer.write_string(payload["table"])
            serialize_chunk(writer, payload["chunk"])
        elif kind is WALRecordType.DELETE_ROWS:
            writer.write_string(payload["table"])
            writer.write_int64_array(payload["rows"])
        elif kind is WALRecordType.UPDATE_ROWS:
            writer.write_string(payload["table"])
            writer.write_uint32(len(payload["columns"]))
            for column_index in payload["columns"]:
                writer.write_uint32(column_index)
            writer.write_int64_array(payload["rows"])
            serialize_chunk(writer, payload["chunk"])
        elif kind is WALRecordType.COMMIT:
            writer.write_uint64(payload["commit_id"])
        else:  # pragma: no cover - enum is exhaustive
            raise WALError(f"Cannot serialize WAL record of type {kind}")
        return writer.getvalue()

    @classmethod
    def deserialize(cls, data: bytes) -> "WALRecord":
        reader = BinaryReader(data)
        kind = WALRecordType(reader.read_uint8())
        if kind is WALRecordType.CREATE_TABLE:
            name = reader.read_string()
            count = reader.read_uint32()
            columns = []
            for _ in range(count):
                columns.append((
                    reader.read_string(),
                    reader.read_string(),
                    reader.read_bool(),
                    reader.read_optional_string(),
                ))
            return cls.create_table(name, columns)
        if kind is WALRecordType.DROP_TABLE:
            return cls.drop_table(reader.read_string())
        if kind is WALRecordType.CREATE_VIEW:
            name = reader.read_string()
            return cls.create_view(name, reader.read_string())
        if kind is WALRecordType.DROP_VIEW:
            return cls.drop_view(reader.read_string())
        if kind is WALRecordType.INSERT_CHUNK:
            table = reader.read_string()
            return cls.insert_chunk(table, deserialize_chunk(reader))
        if kind is WALRecordType.DELETE_ROWS:
            table = reader.read_string()
            return cls.delete_rows(table, reader.read_int64_array())
        if kind is WALRecordType.UPDATE_ROWS:
            table = reader.read_string()
            count = reader.read_uint32()
            columns = [reader.read_uint32() for _ in range(count)]
            rows = reader.read_int64_array()
            return cls.update_rows(table, columns, rows, deserialize_chunk(reader))
        if kind is WALRecordType.COMMIT:
            return cls.commit(reader.read_uint64())
        raise WALError(f"Unknown WAL record type {kind}")


class WriteAheadLog:
    """Append-only, checksummed record log in a sidecar file."""

    def __init__(self, path: Optional[str]) -> None:
        #: ``None`` path disables the WAL (in-memory databases).
        self.path = path
        self._file = open(path, "ab") if path else None

    @property
    def enabled(self) -> bool:
        return self._file is not None

    def size(self) -> int:
        """Current WAL size in bytes (0 when disabled)."""
        if not self.path or not os.path.exists(self.path):
            return 0
        return os.path.getsize(self.path)

    def append_commit_group(self, records: List[WALRecord], commit_id: int) -> None:
        """Durably write a transaction's records followed by its COMMIT frame."""
        if self._file is None:
            return
        frames = []
        for record in list(records) + [WALRecord.commit(commit_id)]:
            payload = record.serialize()
            frames.append(_FRAME.pack(len(payload), checksum(payload)))
            frames.append(payload)
        data = b"".join(frames)
        with engine_span("wal.commit_group", kind="wal",
                         records=len(records), bytes=len(data)):
            self._file.write(data)
            self._file.flush()
            os.fsync(self._file.fileno())
        metrics = metrics_registry()
        metrics.counter("repro_wal_bytes_written_total",
                        "Bytes appended to the write-ahead log").inc(len(data))
        metrics.counter("repro_wal_commit_groups_total",
                        "Transaction commit groups written to the WAL").inc()

    def read_all(self) -> List[List[WALRecord]]:
        """All *committed* record groups, in commit order.

        Stops quietly at the first torn/corrupted frame (a crash mid-write);
        an uncommitted trailing group is discarded, mirroring rollback.
        """
        if not self.path or not os.path.exists(self.path):
            return []
        with open(self.path, "rb") as handle:
            data = handle.read()
        groups: List[List[WALRecord]] = []
        current: List[WALRecord] = []
        offset = 0
        while offset + _FRAME.size <= len(data):
            length, crc = _FRAME.unpack_from(data, offset)
            start = offset + _FRAME.size
            end = start + length
            if end > len(data):
                break  # torn write
            payload = data[start:end]
            if checksum(payload) != crc:
                break  # corrupted tail
            try:
                record = WALRecord.deserialize(payload)
            except (CorruptionError, ValueError, WALError):
                break
            if record.record_type is WALRecordType.COMMIT:
                groups.append(current)
                current = []
            else:
                current.append(record)
            offset = end
        return groups

    def truncate(self) -> None:
        """Discard all records (called after a successful checkpoint)."""
        if self._file is None:
            return
        self._file.close()
        self._file = open(self.path, "wb")
        self._file.flush()
        os.fsync(self._file.fileno())
        self._file.close()
        self._file = open(self.path, "ab")

    def close(self) -> None:
        if self._file is not None and not self._file.closed:
            self._file.flush()
            self._file.close()

    def delete_file(self) -> None:
        """Close and remove the WAL file (clean shutdown after checkpoint)."""
        self.close()
        if self.path and os.path.exists(self.path):
            os.remove(self.path)
