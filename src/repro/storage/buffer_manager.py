"""Buffer manager: memory accounting, buffer allocation, and memtests.

Three of the paper's requirements meet here:

* **Cooperation (§4)** -- the buffer manager enforces the configured
  ``memory_limit``.  Every sizable allocation (block cache entries, hash
  tables, sort runs) is registered; exceeding the limit either evicts cached
  blocks, signals operators to spill, or raises
  :class:`~repro.errors.OutOfMemoryError`.  The current pressure ratio feeds
  the reactive controller of Figure 1.
* **Resilience (§6)** -- when ``buffer_memtest`` is enabled, every freshly
  allocated buffer is swept with the moving-inversions test *before use*,
  and regions that fail are quarantined and never handed out again
  ("figuring out which areas are broken and avoiding the use of those
  memory areas").
* **Storage** -- a small LRU cache of verified file blocks sits in front of
  the :class:`~repro.storage.block_file.BlockFile`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..config import DatabaseConfig
from ..errors import MemoryFaultError, OutOfMemoryError
from ..sanitizer import SanRLock, tracked_access
from ..resilience.faults import PlainMemory
from ..resilience.memtest import MemtestReport, moving_inversions

__all__ = ["Buffer", "BufferManager", "MemoryReservation"]


class Buffer:
    """A tracked allocation of raw memory handed to an operator."""

    __slots__ = ("buffer_id", "array", "arena_offset", "manager")

    def __init__(self, buffer_id: int, array: np.ndarray, arena_offset: int,
                 manager: "BufferManager") -> None:
        self.buffer_id = buffer_id
        self.array = array
        self.arena_offset = arena_offset
        self.manager = manager

    @property
    def size(self) -> int:
        return len(self.array)

    def release(self) -> None:
        self.manager.free_buffer(self)


class MemoryReservation:
    """RAII-style accounting token: reserve on enter, release on exit."""

    def __init__(self, manager: "BufferManager", nbytes: int, description: str) -> None:
        self._manager = manager
        self.nbytes = nbytes
        self.description = description
        self._active = False

    def __enter__(self) -> "MemoryReservation":
        self._manager.reserve(self.nbytes, self.description)
        self._active = True
        return self

    def __exit__(self, *exc) -> None:
        if self._active:
            self._manager.release(self.nbytes)
            self._active = False

    def resize(self, new_bytes: int) -> None:
        """Adjust a live reservation (e.g. a growing hash table)."""
        if not self._active:
            raise OutOfMemoryError("resize of an inactive reservation")
        delta = new_bytes - self.nbytes
        if delta > 0:
            self._manager.reserve(delta, self.description)
        elif delta < 0:
            self._manager.release(-delta)
        self.nbytes = new_bytes


class BufferManager:
    """Central allocator and accountant for all engine memory."""

    def __init__(self, config: DatabaseConfig, arena=None, arena_size: int = 0) -> None:
        self.config = config
        self._lock = SanRLock("buffer_manager")
        self._used = 0
        self._peak = 0
        self._next_buffer_id = 0
        self._buffers: Dict[int, Buffer] = {}
        #: Arena used for memtested buffer allocation.  Tests inject a
        #: FaultyMemory arena here; production uses lazily grown PlainMemory.
        self._arena = arena
        self._arena_size = arena_size if arena is None else arena.size
        self._arena_cursor = 0
        #: Quarantined arena ranges [(start, end)) that failed a memtest.
        self.quarantined: List[Tuple[int, int]] = []
        self.memtest_reports: List[MemtestReport] = []
        # Block cache: block id -> payload bytes, LRU order.
        self._block_cache: "OrderedDict[int, bytes]" = OrderedDict()
        self._block_cache_bytes = 0
        #: Cheap monotonic counters, folded into the process-wide metrics
        #: registry at statement boundaries (see Connection._fold_metrics).
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0

    # -- accounting -----------------------------------------------------------
    @property
    def memory_limit(self) -> int:
        return self.config.memory_limit

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def peak_bytes(self) -> int:
        return self._peak

    def memory_pressure(self) -> float:
        """Fraction of the memory limit currently in use (0.0 - 1.0+)."""
        return self._used / self.memory_limit if self.memory_limit else 0.0

    def reserve(self, nbytes: int, description: str = "allocation") -> None:
        """Account for ``nbytes``; evict cache or raise when over the limit."""
        with self._lock, tracked_access(("buffer_manager", id(self)), True,
                                        self._lock):
            total = self._used + self._block_cache_bytes + nbytes
            if total > self.memory_limit:
                self._evict_blocks_locked(total - self.memory_limit)
            if self._used + nbytes > self.memory_limit:
                raise OutOfMemoryError(
                    f"Cannot reserve {nbytes} bytes for {description}: "
                    f"{self._used} of {self.memory_limit} bytes already in use "
                    f"(set PRAGMA memory_limit to raise the cap)"
                )
            self._used += nbytes
            self._peak = max(self._peak, self._used)

    def release(self, nbytes: int) -> None:
        with self._lock, tracked_access(("buffer_manager", id(self)), True,
                                        self._lock):
            self._used = max(0, self._used - nbytes)

    def reservation(self, nbytes: int, description: str = "allocation") -> MemoryReservation:
        return MemoryReservation(self, nbytes, description)

    def can_reserve(self, nbytes: int) -> bool:
        """Would a reservation of ``nbytes`` succeed right now (ignoring cache)?"""
        with self._lock:
            return self._used + nbytes <= self.memory_limit

    # -- memtested buffer allocation ---------------------------------------------
    def _ensure_arena_locked(self, nbytes: int) -> None:
        """Grow (or lazily create) the arena; caller must hold ``_lock``."""
        if self._arena is None:
            size = max(nbytes * 4, 1 << 20)
            self._arena = PlainMemory(size)
            self._arena_size = size
            self._arena_cursor = 0
        elif self._arena_cursor + nbytes > self._arena_size:
            if isinstance(self._arena, PlainMemory) and type(self._arena) is PlainMemory:
                # Healthy arenas can be grown; faulty test arenas are fixed.
                grown = PlainMemory(max(self._arena_size * 2, self._arena_cursor + nbytes))
                grown.data[: self._arena_size] = self._arena.data
                self._arena = grown
                self._arena_size = grown.size
            else:
                raise OutOfMemoryError("Buffer arena exhausted")

    def _overlaps_quarantine(self, start: int, end: int) -> bool:
        return any(start < q_end and q_start < end for q_start, q_end in self.quarantined)

    def allocate_buffer(self, nbytes: int, description: str = "buffer") -> Buffer:
        """Allocate a raw buffer, memtesting it first when configured.

        Regions that fail the moving-inversions sweep are quarantined and the
        allocation transparently retries on the next region; only when the
        arena cannot satisfy the request does the call fail.
        """
        self.reserve(nbytes, description)
        try:
            with self._lock:
                while True:
                    self._ensure_arena_locked(nbytes)
                    start = self._arena_cursor
                    end = start + nbytes
                    if self._overlaps_quarantine(start, end):
                        self._arena_cursor = end
                        continue
                    if self.config.buffer_memtest:
                        report = moving_inversions(self._arena, start, nbytes)
                        self.memtest_reports.append(report)
                        if not report.passed:
                            for bad_start, bad_end in report.bad_ranges(256):
                                self.quarantined.append((bad_start, bad_end))
                            self._arena_cursor = end
                            continue
                    self._arena_cursor = end
                    array = self._arena.view(start, nbytes)
                    array[:] = 0
                    buffer = Buffer(self._next_buffer_id, array, start, self)
                    self._next_buffer_id += 1
                    self._buffers[buffer.buffer_id] = buffer
                    return buffer
        except Exception:
            self.release(nbytes)
            raise

    def free_buffer(self, buffer: Buffer) -> None:
        with self._lock:
            if buffer.buffer_id in self._buffers:
                del self._buffers[buffer.buffer_id]
                self.release(buffer.size)

    def retest_buffers(self) -> List[MemtestReport]:
        """Periodic re-test of all live buffers ("periodically to detect new
        errors", §6).  Buffers whose region fails are NOT silently fixed --
        the caller gets the failing reports and must treat the contents as
        lost (raise, recompute, or re-read from storage)."""
        reports = []
        with self._lock:
            for buffer in list(self._buffers.values()):
                saved = self._arena.read(buffer.arena_offset, buffer.size)
                report = moving_inversions(self._arena, buffer.arena_offset, buffer.size)
                self._arena.write(buffer.arena_offset, saved)
                self.memtest_reports.append(report)
                if not report.passed:
                    for bad_start, bad_end in report.bad_ranges(256):
                        self.quarantined.append((bad_start, bad_end))
                    reports.append(report)
        return reports

    # -- block cache -----------------------------------------------------------
    def cache_block(self, block_id: int, payload: bytes) -> None:
        with self._lock:
            if block_id in self._block_cache:
                self._block_cache_bytes -= len(self._block_cache.pop(block_id))
            self._block_cache[block_id] = payload
            self._block_cache_bytes += len(payload)
            # The cache may use at most a quarter of the memory limit.
            budget = self.memory_limit // 4
            while self._block_cache_bytes > budget and self._block_cache:
                _, evicted = self._block_cache.popitem(last=False)
                self._block_cache_bytes -= len(evicted)
                self.cache_evictions += 1

    def get_cached_block(self, block_id: int) -> Optional[bytes]:
        with self._lock:
            payload = self._block_cache.get(block_id)
            if payload is not None:
                self._block_cache.move_to_end(block_id)
                self.cache_hits += 1
            else:
                self.cache_misses += 1
            return payload

    def invalidate_cache(self) -> None:
        with self._lock:
            self._block_cache.clear()
            self._block_cache_bytes = 0

    def _evict_blocks_locked(self, needed: int) -> None:
        freed = 0
        while freed < needed and self._block_cache:
            _, evicted = self._block_cache.popitem(last=False)
            freed += len(evicted)
            self._block_cache_bytes -= len(evicted)
            self.cache_evictions += 1

    def stats(self) -> dict:
        """Snapshot of allocator state for monitoring and the controller."""
        with self._lock:
            return {
                "used_bytes": self._used,
                "peak_bytes": self._peak,
                "memory_limit": self.memory_limit,
                "pressure": self.memory_pressure(),
                "live_buffers": len(self._buffers),
                "block_cache_bytes": self._block_cache_bytes,
                "block_cache_hits": self.cache_hits,
                "block_cache_misses": self.cache_misses,
                "block_cache_evictions": self.cache_evictions,
                "quarantined_ranges": len(self.quarantined),
            }
