"""Block checksums (paper §6, Resilience).

*"DuckDB computes and stores check sums of all blocks in persistent storage
and verifies this as blocks are read. This protects against bit flips in the
persistent storage which would go unnoticed or cause inconsistencies."*

CRC-32 is used: it detects all single-bit and all two-bit errors within a
256 KiB block, which covers the silent-disk-corruption model of the paper
(individual flipped bits, torn sectors).
"""

from __future__ import annotations

import zlib

from ..errors import CorruptionError

__all__ = ["checksum", "verify_checksum"]


def checksum(payload: bytes) -> int:
    """CRC-32 of a block payload, as an unsigned 32-bit integer."""
    return zlib.crc32(payload) & 0xFFFFFFFF


def verify_checksum(payload: bytes, expected: int, context: str = "block") -> None:
    """Raise :class:`~repro.errors.CorruptionError` when the CRC mismatches.

    The error message carries ``context`` (typically the block id) so the
    user learns *which* block of the file is damaged.
    """
    actual = checksum(payload)
    if actual != expected:
        raise CorruptionError(
            f"Checksum mismatch on {context}: stored 0x{expected:08x}, "
            f"computed 0x{actual:08x} -- the database file is corrupted"
        )
