"""Structured binary serialization used by the WAL and checkpoint formats.

A deliberately boring length-prefixed format: explicit little-endian struct
packing, no pickle (the database file must not execute code on load), every
variable-length field length-prefixed.  Readers raise
:class:`~repro.errors.CorruptionError` on any malformed input instead of
guessing.
"""

from __future__ import annotations

import struct
from typing import List, Optional

import numpy as np

from ..errors import CorruptionError

__all__ = ["BinaryWriter", "BinaryReader"]


class BinaryWriter:
    """Appends typed fields to a growing byte buffer."""

    def __init__(self) -> None:
        self._parts: List[bytes] = []

    def write_bool(self, value: bool) -> None:
        self._parts.append(b"\x01" if value else b"\x00")

    def write_uint8(self, value: int) -> None:
        self._parts.append(struct.pack("<B", value))

    def write_uint32(self, value: int) -> None:
        self._parts.append(struct.pack("<I", value))

    def write_uint64(self, value: int) -> None:
        self._parts.append(struct.pack("<Q", value))

    def write_int64(self, value: int) -> None:
        self._parts.append(struct.pack("<q", value))

    def write_double(self, value: float) -> None:
        self._parts.append(struct.pack("<d", value))

    def write_string(self, value: str) -> None:
        raw = value.encode("utf-8")
        self._parts.append(struct.pack("<I", len(raw)))
        self._parts.append(raw)

    def write_optional_string(self, value: Optional[str]) -> None:
        if value is None:
            self._parts.append(struct.pack("<i", -1))
        else:
            raw = value.encode("utf-8")
            self._parts.append(struct.pack("<i", len(raw)))
            self._parts.append(raw)

    def write_bytes(self, value: bytes) -> None:
        self._parts.append(struct.pack("<Q", len(value)))
        self._parts.append(value)

    def write_int64_array(self, array: np.ndarray) -> None:
        array = np.ascontiguousarray(array, dtype=np.int64)
        self._parts.append(struct.pack("<Q", len(array)))
        self._parts.append(array.tobytes())

    def getvalue(self) -> bytes:
        return b"".join(self._parts)

    def __len__(self) -> int:
        return sum(len(part) for part in self._parts)


class BinaryReader:
    """Reads typed fields back, validating lengths as it goes."""

    def __init__(self, data: bytes, offset: int = 0) -> None:
        self._data = data
        self._offset = offset

    def _take(self, count: int) -> bytes:
        if self._offset + count > len(self._data):
            raise CorruptionError("Serialized data ended unexpectedly")
        out = self._data[self._offset:self._offset + count]
        self._offset += count
        return out

    def read_bool(self) -> bool:
        return self._take(1) != b"\x00"

    def read_uint8(self) -> int:
        return struct.unpack("<B", self._take(1))[0]

    def read_uint32(self) -> int:
        return struct.unpack("<I", self._take(4))[0]

    def read_uint64(self) -> int:
        return struct.unpack("<Q", self._take(8))[0]

    def read_int64(self) -> int:
        return struct.unpack("<q", self._take(8))[0]

    def read_double(self) -> float:
        return struct.unpack("<d", self._take(8))[0]

    def read_string(self) -> str:
        length = self.read_uint32()
        if length > len(self._data):
            raise CorruptionError(f"Declared string length {length} exceeds stream size")
        return self._take(length).decode("utf-8")

    def read_optional_string(self) -> Optional[str]:
        (length,) = struct.unpack("<i", self._take(4))
        if length < 0:
            return None
        return self._take(length).decode("utf-8")

    def read_bytes(self) -> bytes:
        length = self.read_uint64()
        if length > len(self._data):
            raise CorruptionError(f"Declared byte length {length} exceeds stream size")
        return self._take(length)

    def read_int64_array(self) -> np.ndarray:
        count = self.read_uint64()
        if count * 8 > len(self._data):
            raise CorruptionError(f"Declared array length {count} exceeds stream size")
        return np.frombuffer(self._take(count * 8), dtype=np.int64).copy()

    @property
    def offset(self) -> int:
        return self._offset

    def exhausted(self) -> bool:
        return self._offset >= len(self._data)
