"""The single-file block storage format (paper §6).

*"DuckDB uses a single-file storage format ... The storage file is
partitioned into fixed-size blocks of 256KB which are read and written in
their entirety. The first block contains a header that points to the table
catalog and a list of free blocks. ... Checkpoints will first write new
blocks that contain the updated data to the file and as a last step update
the root pointer and the free list in the header atomically."*

Layout of a database file::

    offset 0      : header slot A (4 KiB)
    offset 4096   : header slot B (4 KiB)
    offset 8192   : block 0, block 1, ... (256 KiB each)

Atomicity of the root-pointer flip uses the classic double-header scheme:
checkpoints alternate between the two slots, each slot carries a
monotonically increasing epoch and its own CRC, and on open the valid slot
with the highest epoch wins.  A crash mid-checkpoint leaves the previous
slot untouched, so the database always opens at the last completed
checkpoint.

Every block stores a CRC-32 over its payload, verified on every read
(Resilience, §6): a bit flipped on disk surfaces as
:class:`~repro.errors.CorruptionError` instead of silently corrupting query
results.
"""

from __future__ import annotations

import os
import struct
from typing import List, Optional, Set

from ..errors import CorruptionError, StorageError
from .checksum import checksum, verify_checksum

__all__ = ["BlockFile", "MetaBlockWriter", "MetaBlockReader", "BLOCK_SIZE"]

#: Total on-disk size of one block, including its 8-byte checksum header.
BLOCK_SIZE = 256 * 1024
#: Usable payload bytes per block.
BLOCK_PAYLOAD = BLOCK_SIZE - 8

_HEADER_SLOT_SIZE = 4096
_BLOCKS_OFFSET = 2 * _HEADER_SLOT_SIZE
_MAGIC = b"QUACKDB1"
#: magic(8) epoch(Q) root(q) free_list_root(q) block_count(Q) crc(I)
_HEADER_STRUCT = struct.Struct("<8sQqqQI")
_BLOCK_HEADER = struct.Struct("<II")  # crc32, payload length

INVALID_BLOCK = -1


class BlockFile:
    """Low-level access to the single database file."""

    def __init__(self, path: str, create: bool = True, verify_checksums: bool = True) -> None:
        self.path = path
        self.verify_checksums = verify_checksums
        exists = os.path.exists(path) and os.path.getsize(path) > 0
        mode = "r+b" if exists else "w+b"
        self._file = open(path, mode)
        self._free: Set[int] = set()
        if exists:
            self.epoch, self.root_block, self.free_list_root, self.block_count = \
                self._read_best_header()
            # Blocks written after the last header flip (e.g. by a crashed
            # checkpoint) still occupy file space; account for them so block
            # ids stay consistent.  Unreferenced ones are simply dead space
            # until a later checkpoint's free list reclaims the range.
            file_size = os.path.getsize(path)
            derived = max(0, (file_size - _BLOCKS_OFFSET)) // BLOCK_SIZE
            self.block_count = max(self.block_count, derived)
        else:
            if not create:
                raise StorageError(f"Database file {path!r} does not exist")
            self.epoch = 0
            self.root_block = INVALID_BLOCK
            self.free_list_root = INVALID_BLOCK
            self.block_count = 0
            # Write both header slots so a fresh file is always openable.
            self._write_header_slot(0)
            self._write_header_slot(1)
            self._file.flush()
            os.fsync(self._file.fileno())

    # -- header management ----------------------------------------------------
    def _header_bytes(self) -> bytes:
        body = _HEADER_STRUCT.pack(_MAGIC, self.epoch, self.root_block,
                                   self.free_list_root, self.block_count, 0)
        crc = checksum(body[:-4])
        return _HEADER_STRUCT.pack(_MAGIC, self.epoch, self.root_block,
                                   self.free_list_root, self.block_count, crc)

    def _write_header_slot(self, slot: int) -> None:
        payload = self._header_bytes().ljust(_HEADER_SLOT_SIZE, b"\x00")
        self._file.seek(slot * _HEADER_SLOT_SIZE)
        self._file.write(payload)

    def _parse_header_slot(self, slot: int):
        self._file.seek(slot * _HEADER_SLOT_SIZE)
        raw = self._file.read(_HEADER_SLOT_SIZE)
        if len(raw) < _HEADER_STRUCT.size:
            return None
        magic, epoch, root, free_root, count, crc = _HEADER_STRUCT.unpack_from(raw, 0)
        if magic != _MAGIC:
            return None
        body = _HEADER_STRUCT.pack(magic, epoch, root, free_root, count, 0)
        if checksum(body[:-4]) != crc:
            return None
        return epoch, root, free_root, count

    def _read_best_header(self):
        slots = [self._parse_header_slot(0), self._parse_header_slot(1)]
        valid = [slot for slot in slots if slot is not None]
        if not valid:
            raise CorruptionError(
                f"{self.path!r} is not a valid database file: both header slots "
                "are missing or corrupted"
            )
        return max(valid, key=lambda slot: slot[0])

    def flip_header(self, root_block: int, free_list_root: int = INVALID_BLOCK) -> None:
        """Atomically publish a new root pointer (the checkpoint's last step).

        Data blocks are flushed first; only then is the alternate header slot
        overwritten and flushed.  Until that second fsync completes, readers
        crash-recovering the file still see the previous checkpoint.
        """
        self._file.flush()
        os.fsync(self._file.fileno())
        self.epoch += 1
        self.root_block = root_block
        self.free_list_root = free_list_root
        self._write_header_slot(self.epoch % 2)
        self._file.flush()
        os.fsync(self._file.fileno())

    # -- block io ----------------------------------------------------------------
    def _block_offset(self, block_id: int) -> int:
        if block_id < 0 or block_id >= self.block_count:
            raise StorageError(f"Block id {block_id} out of range (file has "
                               f"{self.block_count} blocks)")
        return _BLOCKS_OFFSET + block_id * BLOCK_SIZE

    def allocate_block(self, fresh_only: bool = False) -> int:
        """Reuse a free block or extend the file by one block.

        ``fresh_only`` forces file extension: used for the free-list chain,
        whose block ids must not appear in the very list being serialized.
        """
        if self._free and not fresh_only:
            return self._free.pop()
        block_id = self.block_count
        self.block_count += 1
        # Extend the file eagerly so reads of unwritten blocks fail loudly
        # on checksum rather than on short reads.
        self._file.seek(_BLOCKS_OFFSET + block_id * BLOCK_SIZE + BLOCK_SIZE - 1)
        self._file.write(b"\x00")
        return block_id

    def free_block(self, block_id: int) -> None:
        if 0 <= block_id < self.block_count:
            self._free.add(block_id)

    def set_free_list(self, free_blocks) -> None:
        """Install the free set recovered from the checkpoint metadata."""
        self._free = set(free_blocks)

    @property
    def free_blocks(self) -> List[int]:
        return sorted(self._free)

    def write_block(self, block_id: int, payload: bytes) -> None:
        """Write one block in its entirety (payload + CRC header)."""
        if len(payload) > BLOCK_PAYLOAD:
            raise StorageError(
                f"Block payload of {len(payload)} bytes exceeds capacity {BLOCK_PAYLOAD}"
            )
        offset = self._block_offset(block_id)
        header = _BLOCK_HEADER.pack(checksum(payload), len(payload))
        self._file.seek(offset)
        self._file.write(header)
        self._file.write(payload)

    def read_block(self, block_id: int) -> bytes:
        """Read one block, verifying its checksum (unless disabled)."""
        offset = self._block_offset(block_id)
        self._file.seek(offset)
        raw = self._file.read(BLOCK_SIZE)
        if len(raw) < _BLOCK_HEADER.size:
            raise CorruptionError(f"Block {block_id} is truncated")
        stored_crc, length = _BLOCK_HEADER.unpack_from(raw, 0)
        if length > BLOCK_PAYLOAD:
            raise CorruptionError(f"Block {block_id} declares impossible length {length}")
        payload = raw[_BLOCK_HEADER.size:_BLOCK_HEADER.size + length]
        if len(payload) < length:
            raise CorruptionError(f"Block {block_id} is truncated")
        if self.verify_checksums:
            verify_checksum(payload, stored_crc, context=f"block {block_id}")
        return payload

    def flush(self) -> None:
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def __enter__(self) -> "BlockFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class MetaBlockWriter:
    """Writes an arbitrarily long byte stream across a chain of blocks.

    Each block's payload starts with the 8-byte id of the next block in the
    chain (:data:`INVALID_BLOCK` terminates).  Used for checkpoint metadata
    and any serialized structure larger than one block.
    """

    def __init__(self, block_file: BlockFile, fresh_only: bool = False) -> None:
        self._file = block_file
        self._buffer = bytearray()
        self._fresh_only = fresh_only
        self.written_blocks: List[int] = []

    def write(self, data: bytes) -> None:
        self._buffer.extend(data)

    @staticmethod
    def blocks_needed(payload_length: int) -> int:
        """How many chain blocks a payload of this size occupies."""
        chunk_capacity = BLOCK_PAYLOAD - 8
        return max(1, -(-payload_length // chunk_capacity))

    def finalize(self) -> int:
        """Flush the stream to freshly allocated blocks; returns the head id."""
        chunks = self._chunks()
        block_ids = [self._file.allocate_block(self._fresh_only) for _ in chunks]
        return self._write_chain(chunks, block_ids)

    def finalize_into(self, block_ids: List[int]) -> int:
        """Flush the stream into pre-allocated blocks (must be enough)."""
        chunks = self._chunks()
        if len(chunks) > len(block_ids):
            raise StorageError(
                f"Chain needs {len(chunks)} blocks, only {len(block_ids)} "
                "were pre-allocated"
            )
        return self._write_chain(chunks, list(block_ids[:len(chunks)]))

    def _chunks(self) -> List[bytes]:
        chunk_capacity = BLOCK_PAYLOAD - 8
        data = bytes(self._buffer)
        chunks = [data[i:i + chunk_capacity]
                  for i in range(0, len(data), chunk_capacity)]
        return chunks or [b""]

    def _write_chain(self, chunks: List[bytes], block_ids: List[int]) -> int:
        self.written_blocks = list(block_ids)
        for index, chunk in enumerate(chunks):
            next_id = block_ids[index + 1] if index + 1 < len(block_ids) else INVALID_BLOCK
            self._file.write_block(block_ids[index], struct.pack("<q", next_id) + chunk)
        return block_ids[0]


class MetaBlockReader:
    """Reads back a byte stream written by :class:`MetaBlockWriter`."""

    def __init__(self, block_file: BlockFile, head_block: int) -> None:
        parts = []
        block_id = head_block
        seen = set()
        while block_id != INVALID_BLOCK:
            if block_id in seen:
                raise CorruptionError("Metadata block chain contains a cycle")
            seen.add(block_id)
            payload = block_file.read_block(block_id)
            if len(payload) < 8:
                raise CorruptionError(f"Metadata block {block_id} is too short")
            (next_id,) = struct.unpack_from("<q", payload, 0)
            parts.append(payload[8:])
            block_id = next_id
        self.data = b"".join(parts)
        self.blocks_read = sorted(seen)
        self._offset = 0

    def read(self, count: int) -> bytes:
        if self._offset + count > len(self.data):
            raise CorruptionError("Metadata stream ended unexpectedly")
        out = self.data[self._offset:self._offset + count]
        self._offset += count
        return out

    def remaining(self) -> int:
        return len(self.data) - self._offset
