"""In-memory transactional column store backing every base table.

Implements the paper's combined OLAP & ETL storage requirements (§2):

* **column partitioning** -- each column is stored and versioned separately,
  so bulk updates touch only the columns they change;
* **bulk granularity** -- appends, updates, and deletes operate on whole row
  batches with vectorized version checks, not per-row latching;
* **in-place MVCC** -- updates overwrite the master copy immediately and park
  the pre-image in per-column undo buffers (HyPer-style, §6), so OLAP scans
  of the latest snapshot read plain contiguous NumPy arrays;
* **dirty-range tracking** -- each column remembers which row range changed
  since the last checkpoint, letting the checkpointer skip rewriting
  unchanged columns ("unchanged columns should not be rewritten", §2).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import InternalError, TransactionConflict
from ..optimizer.statistics import (ColumnStatistics,
                                    compute_column_statistics)
from ..sanitizer import SanRLock, tracked_access
from ..transaction.transaction import Transaction
from ..transaction.undo import DeleteUndo, InsertUndo, UpdateUndo
from ..transaction.version import ABORTED_MARKER, NOT_DELETED, versions_visible
from ..types import DataChunk, LogicalType, LogicalTypeId, VECTOR_SIZE, Vector

__all__ = ["ColumnData", "TableData", "SEGMENT_ROWS"]

#: Rows per persisted column segment; also the checkpoint rewrite granularity.
SEGMENT_ROWS = 65536

#: Rows per scan chunk.  A multiple of the standard vector size: the Python
#: interpreter pays a fixed cost per operator invocation, so scans hand out
#: larger chunks than a C++ engine would to keep the per-value overhead low
#: (the same amortization argument as the paper's vectorized execution,
#: tuned for this substrate).
SCAN_CHUNK_ROWS = 8 * VECTOR_SIZE

_INITIAL_CAPACITY = 1024


def _allocate(dtype: LogicalType, capacity: int) -> np.ndarray:
    if dtype.id is LogicalTypeId.VARCHAR:
        array = np.empty(capacity, dtype=object)
        return array
    return np.zeros(capacity, dtype=dtype.numpy_dtype)


class ColumnData:
    """One column of a table: master copy, validity, undo chain, dirty range."""

    __slots__ = ("dtype", "table", "data", "validity", "undo_entries",
                 "dirty_lo", "dirty_hi", "persisted_segments", "_zone_cache",
                 "stats")

    def __init__(self, dtype: LogicalType, table: "TableData") -> None:
        self.dtype = dtype
        self.table = table
        self.data = _allocate(dtype, _INITIAL_CAPACITY)
        self.validity = np.zeros(_INITIAL_CAPACITY, dtype=np.bool_)
        #: Chronologically ordered undo entries (pre-images of updates).
        self.undo_entries: List[UpdateUndo] = []
        #: Half-open dirty row range since the last checkpoint (lo > hi = clean).
        self.dirty_lo = 0
        self.dirty_hi = -1
        #: Opaque per-segment persistence info owned by the checkpointer;
        #: entry i describes rows [i*SEGMENT_ROWS, (i+1)*SEGMENT_ROWS).
        self.persisted_segments: list = []
        #: Zonemap: lazily computed (min, max) per scan-chunk window, keyed
        #: on the full ``(start, end)`` window so a tail segment that grows
        #: between calls can never satisfy a wider window from stale cached
        #: bounds.  Lets scans "skip irrelevant blocks of rows" (paper §6).
        #: Invalidated wholesale by any write to the column.
        self._zone_cache: dict = {}
        #: Optimizer summary (min/max/NDV/null count); advisory only.
        self.stats = ColumnStatistics(dtype)

    # -- capacity -----------------------------------------------------------
    def ensure_capacity(self, rows: int) -> None:
        if rows <= len(self.data):
            return
        new_capacity = max(len(self.data) * 2, rows, _INITIAL_CAPACITY)
        new_data = _allocate(self.dtype, new_capacity)
        new_validity = np.zeros(new_capacity, dtype=np.bool_)
        count = self.table.row_count
        new_data[:count] = self.data[:count]
        new_validity[:count] = self.validity[:count]
        self.data = new_data
        self.validity = new_validity

    # -- dirtiness ------------------------------------------------------------
    def mark_dirty(self, lo: int, hi: int) -> None:
        """Record that rows [lo, hi] changed since the last checkpoint."""
        if self.dirty_hi < self.dirty_lo:
            self.dirty_lo, self.dirty_hi = lo, hi
        else:
            self.dirty_lo = min(self.dirty_lo, lo)
            self.dirty_hi = max(self.dirty_hi, hi)
        self._zone_cache.clear()

    def is_dirty(self) -> bool:
        return self.dirty_hi >= self.dirty_lo

    def mark_clean(self) -> None:
        self.dirty_lo, self.dirty_hi = 0, -1

    # -- writes (caller holds the table lock) ----------------------------------
    def write_at(self, row_start: int, vector: Vector) -> None:
        """Install freshly appended values (no undo needed: new rows)."""
        count = len(vector)
        self.data[row_start:row_start + count] = vector.data
        self.validity[row_start:row_start + count] = vector.validity
        self.mark_dirty(row_start, row_start + count - 1)
        self.stats.observe_append(vector.data, vector.validity)

    def update(self, transaction: Transaction, rows: np.ndarray, vector: Vector) -> UpdateUndo:
        """In-place update of ``rows`` with undo capture (rows must be sorted)."""
        old_data = self.data[rows].copy()
        old_validity = self.validity[rows].copy()
        prev_writer = self.table.last_writer[rows].copy()
        undo = UpdateUndo(transaction.transaction_id, self, rows,
                          old_data, old_validity, prev_writer)
        self.data[rows] = vector.data
        self.validity[rows] = vector.validity
        self.undo_entries.append(undo)
        self.mark_dirty(int(rows[0]), int(rows[-1]))
        self.stats.observe_update(vector.data, vector.validity)
        return undo

    def set_writer(self, rows: np.ndarray, version: int) -> None:
        """Flip the last-writer tags of ``rows`` (commit-time)."""
        self.table.last_writer[rows] = version

    def rollback_update(self, undo: UpdateUndo) -> None:
        """Re-install the pre-image and restore previous writer tags."""
        with self.table.lock:
            self.data[undo.rows] = undo.old_data
            self.validity[undo.rows] = undo.old_validity
            self.table.last_writer[undo.rows] = undo.prev_writer
            self.remove_undo(undo)

    def remove_undo(self, undo: UpdateUndo) -> None:
        """Detach a no-longer-needed undo entry (GC or rollback)."""
        try:
            self.undo_entries.remove(undo)
        except ValueError:
            pass  # already detached

    # -- reads ------------------------------------------------------------------
    def fetch_range(self, start: int, end: int, transaction: Transaction,
                    zero_copy: bool = False) -> Vector:
        """Rows [start, end) as seen by ``transaction``'s snapshot.

        Starts from the master copy and walks the undo chain newest-to-oldest,
        re-installing pre-images of every version the snapshot must not see.

        The returned vector is a *copy* of the master data by default: the
        engine updates columns in place (HyPer-style MVCC), so a view would
        retroactively change under the reader if a concurrent transaction
        updated these rows after the fetch.  ``zero_copy=True`` skips the
        copy and is only used when the caller guarantees no concurrent
        writers for the lifetime of the vector (e.g. the bulk client API on
        a quiesced database).
        """
        data = self.data[start:end]
        validity = self.validity[start:end]
        if not zero_copy:
            data = data.copy()
            validity = validity.copy()
        invisible = [
            undo for undo in self.undo_entries
            if not (undo.version == transaction.transaction_id
                    or undo.version <= transaction.start_time)
        ]
        if invisible:
            copied = not zero_copy
            for undo in reversed(invisible):
                lo = int(np.searchsorted(undo.rows, start))
                hi = int(np.searchsorted(undo.rows, end))
                if lo >= hi:
                    continue
                if not copied:
                    data = data.copy()
                    validity = validity.copy()
                    copied = True
                positions = undo.rows[lo:hi] - start
                data[positions] = undo.old_data[lo:hi]
                validity[positions] = undo.old_validity[lo:hi]
        return Vector(self.dtype, data, validity)

    def undo_memory(self) -> int:
        return sum(entry.nbytes() for entry in self.undo_entries)

    # -- zonemap ----------------------------------------------------------------
    def zone_bounds(self, start: int, end: int):
        """(min, max) over the *current* values of rows [start, end), or None.

        Only usable when snapshot reconstruction cannot matter: any live
        undo entry disables the zonemap for this column, because an older
        snapshot may need pre-image values outside the current bounds.
        (Invisible inserted rows merely *widen* the bounds; deleted rows
        keep their values -- both conservative, both safe.)
        """
        if self.dtype.id is LogicalTypeId.VARCHAR or \
                self.dtype.id is LogicalTypeId.BOOLEAN:
            return None
        with self.table.lock:
            if self.undo_entries:
                return None
            cached = self._zone_cache.get((start, end))
            if cached is not None:
                return cached
            window = self.data[start:end]
            if window.size == 0:
                return None
            # NULL slots hold zeros; including them only widens the bounds,
            # which keeps skipping conservative.
            bounds = (window.min(), window.max())
            self._zone_cache[(start, end)] = bounds
            return bounds


class TableData:
    """Versioned storage of one table: columns plus row-version arrays."""

    def __init__(self, types: Sequence[LogicalType]) -> None:
        self.lock = SanRLock("table_data")
        self.row_count = 0
        self.columns: List[ColumnData] = [ColumnData(dtype, self) for dtype in types]
        self.inserted_by = np.zeros(_INITIAL_CAPACITY, dtype=np.int64)
        self.deleted_by = np.zeros(_INITIAL_CAPACITY, dtype=np.int64)
        self.last_writer = np.zeros(_INITIAL_CAPACITY, dtype=np.int64)
        #: True when rows were deleted/aborted since the last checkpoint, which
        #: forces compaction (and hence a full rewrite) at checkpoint time.
        self.needs_compaction = False

    @property
    def types(self) -> List[LogicalType]:
        return [column.dtype for column in self.columns]

    # -- capacity ---------------------------------------------------------------
    def _ensure_capacity(self, rows: int) -> None:
        if rows > len(self.inserted_by):
            new_capacity = max(len(self.inserted_by) * 2, rows)
            for name in ("inserted_by", "deleted_by", "last_writer"):
                old = getattr(self, name)
                grown = np.zeros(new_capacity, dtype=np.int64)
                grown[: self.row_count] = old[: self.row_count]
                setattr(self, name, grown)
        for column in self.columns:
            column.ensure_capacity(rows)

    # -- writes -------------------------------------------------------------------
    def append_chunk(self, transaction: Transaction, chunk: DataChunk) -> int:
        """Bulk-append a chunk; returns the first physical row id."""
        if chunk.column_count != len(self.columns):
            raise InternalError(
                f"append of {chunk.column_count} columns into "
                f"{len(self.columns)}-column table"
            )
        with self.lock, tracked_access(("table_data", id(self)), True,
                                       self.lock):
            start = self.row_count
            count = chunk.size
            self._ensure_capacity(start + count)
            for column, vector in zip(self.columns, chunk.columns):
                if vector.dtype != column.dtype:
                    raise InternalError(
                        f"append type mismatch: {vector.dtype} into {column.dtype}"
                    )
                column.write_at(start, vector)
            self.inserted_by[start:start + count] = transaction.transaction_id
            self.deleted_by[start:start + count] = NOT_DELETED
            self.last_writer[start:start + count] = 0
            self.row_count = start + count
            transaction.record_insert(InsertUndo(self, start, count))
            return start

    def _check_write_conflict(self, transaction: Transaction, rows: np.ndarray) -> None:
        """First-writer-wins: raise if another transaction already wrote rows.

        A conflicting writer is any version tag newer than our snapshot that
        is not our own id -- i.e. either still in flight or committed after we
        started (HyPer's serializable write rule).
        """
        writers = self.last_writer[rows]
        conflicts = (writers > transaction.start_time) & (writers != transaction.transaction_id)
        if conflicts.any():
            raise TransactionConflict(
                "write-write conflict: row was modified by a concurrent transaction"
            )
        deleters = self.deleted_by[rows]
        conflicts = ((deleters != NOT_DELETED)
                     & (deleters > transaction.start_time)
                     & (deleters != transaction.transaction_id))
        if conflicts.any():
            raise TransactionConflict(
                "write-write conflict: row was deleted by a concurrent transaction"
            )

    def delete_rows(self, transaction: Transaction, rows: np.ndarray) -> int:
        """Tombstone ``rows`` for this transaction; returns the delete count."""
        if rows.size == 0:
            return 0
        rows = np.sort(rows.astype(np.int64))
        with self.lock, tracked_access(("table_data", id(self)), True,
                                       self.lock):
            self._check_write_conflict(transaction, rows)
            # Skip rows this transaction already deleted (idempotent bulk delete).
            fresh = rows[self.deleted_by[rows] != transaction.transaction_id]
            if fresh.size == 0:
                return 0
            prev_writer = self.last_writer[fresh].copy()
            self.deleted_by[fresh] = transaction.transaction_id
            self.last_writer[fresh] = transaction.transaction_id
            self.needs_compaction = True
            for column in self.columns:
                column.stats.mark_stale()
            transaction.record_delete(DeleteUndo(self, fresh, prev_writer))
            return int(fresh.size)

    def update_rows(self, transaction: Transaction, rows: np.ndarray,
                    column_indices: Sequence[int], chunk: DataChunk) -> int:
        """Bulk in-place update of selected columns at ``rows``.

        ``chunk`` carries one vector per entry of ``column_indices``, aligned
        with ``rows``.  Only the named columns are versioned and marked dirty;
        untouched columns keep their segments (paper §2).
        """
        if rows.size == 0:
            return 0
        order = np.argsort(rows, kind="stable")
        rows = rows[order].astype(np.int64)
        with self.lock, tracked_access(("table_data", id(self)), True,
                                       self.lock):
            self._check_write_conflict(transaction, rows)
            for column_index, vector in zip(column_indices, chunk.columns):
                column = self.columns[column_index]
                ordered = vector.slice(order)
                undo = column.update(transaction, rows, ordered)
                transaction.record_update(undo)
            self.last_writer[rows] = transaction.transaction_id
            transaction.modified_tables.add(self)
            return int(rows.size)

    # -- reads ------------------------------------------------------------------
    def visible_mask(self, transaction: Transaction, start: int, end: int) -> np.ndarray:
        """Boolean mask over [start, end): rows visible to the snapshot."""
        inserted = self.inserted_by[start:end]
        deleted = self.deleted_by[start:end]
        visible = versions_visible(inserted, transaction.transaction_id,
                                   transaction.start_time)
        visible &= inserted != ABORTED_MARKER
        tombstoned = deleted != NOT_DELETED
        if tombstoned.any():
            deleted_visible = tombstoned & versions_visible(
                deleted, transaction.transaction_id, transaction.start_time
            )
            visible &= ~deleted_visible
        return visible

    def morsel_ranges(self, morsel_rows: int = SEGMENT_ROWS) -> List[Tuple[int, int]]:
        """Half-open ``[start, end)`` row ranges for morsel-driven scans.

        Morsel boundaries are aligned to :data:`SCAN_CHUNK_ROWS` so a scan
        restricted to one morsel fetches exactly the same chunk windows a
        full serial scan would -- zonemap lookups and chunk contents stay
        bit-identical, only the degree of parallelism changes.
        """
        step = max(SCAN_CHUNK_ROWS,
                   (morsel_rows // SCAN_CHUNK_ROWS) * SCAN_CHUNK_ROWS)
        with self.lock:
            total = self.row_count
        return [(start, min(start + step, total))
                for start in range(0, total, step)]

    def scan(self, transaction: Transaction,
             column_indices: Optional[Sequence[int]] = None,
             chunk_size: int = SCAN_CHUNK_ROWS,
             with_row_ids: bool = False,
             range_predicate=None,
             start_row: int = 0,
             end_row: Optional[int] = None) -> Iterator:
        """Vector Volcano scan: yield chunks of rows visible to the snapshot.

        With ``with_row_ids`` each item is ``(chunk, row_ids)`` where
        ``row_ids`` are the physical rows backing the chunk (used by UPDATE
        and DELETE to address their targets).

        ``range_predicate(start, end)`` -- when provided -- is consulted per
        row range *before* any column data is fetched; returning False skips
        the range entirely (zonemap scan skipping, paper §6).

        ``start_row``/``end_row`` restrict the scan to a physical row range
        (morsel-driven parallel scans hand disjoint ranges to workers).
        """
        if column_indices is None:
            column_indices = range(len(self.columns))
        column_indices = list(column_indices)
        with self.lock:
            total = self.row_count
        if end_row is not None:
            total = min(total, end_row)
        for start in range(start_row, total, chunk_size):
            end = min(start + chunk_size, total)
            if range_predicate is not None and not range_predicate(start, end):
                continue
            with self.lock, tracked_access(("table_data", id(self)), False,
                                           self.lock):
                mask = self.visible_mask(transaction, start, end)
                if not mask.any():
                    continue
                vectors = [
                    self.columns[index].fetch_range(start, end, transaction)
                    for index in column_indices
                ]
            all_visible = bool(mask.all())
            if all_visible:
                chunk = DataChunk(vectors)
            else:
                chunk = DataChunk([vector.slice(mask) for vector in vectors])
            if with_row_ids:
                if all_visible:
                    row_ids = np.arange(start, end, dtype=np.int64)
                else:
                    row_ids = start + np.flatnonzero(mask).astype(np.int64)
                yield chunk, row_ids
            else:
                yield chunk

    def count_visible(self, transaction: Transaction) -> int:
        """Number of rows visible to the snapshot (used by COUNT(*) fast path)."""
        with self.lock:
            total = self.row_count
            if total == 0:
                return 0
            mask = self.visible_mask(transaction, 0, total)
            return int(np.count_nonzero(mask))

    # -- checkpoint support ----------------------------------------------------
    def compact(self, keep_mask: np.ndarray) -> None:
        """Physically drop rows not in ``keep_mask``.

        Only legal when no transaction other than the checkpointer is active;
        the storage manager guarantees that.  Undo chains must be empty.
        """
        with self.lock, tracked_access(("table_data", id(self)), True,
                                       self.lock):
            for column in self.columns:
                if column.undo_entries:
                    raise InternalError("compact with live undo entries")
            keep = np.flatnonzero(keep_mask)
            new_count = int(keep.size)
            for column in self.columns:
                column.data = column.data[keep].copy()
                column.validity = column.validity[keep].copy()
                if new_count:
                    column.mark_dirty(0, new_count - 1)
                else:
                    # Nothing survived: there is no row 0 to dirty.  The
                    # zone cache still describes the dropped rows, so it
                    # must be cleared even without a dirty range.
                    column.mark_clean()
                    column._zone_cache.clear()
                column.stats = compute_column_statistics(
                    column.data[:new_count], column.validity[:new_count],
                    column.dtype)
                column.persisted_segments = []
            self.inserted_by = np.zeros(max(new_count, _INITIAL_CAPACITY), dtype=np.int64)
            self.deleted_by = np.zeros(max(new_count, _INITIAL_CAPACITY), dtype=np.int64)
            self.last_writer = np.zeros(max(new_count, _INITIAL_CAPACITY), dtype=np.int64)
            self.row_count = new_count
            for column in self.columns:
                column.ensure_capacity(max(new_count, _INITIAL_CAPACITY))
            self.needs_compaction = False

    def memory_usage(self) -> int:
        """Approximate resident bytes of this table (data + versions + undo)."""
        with self.lock:
            total = self.inserted_by.nbytes + self.deleted_by.nbytes + self.last_writer.nbytes
            for column in self.columns:
                if column.dtype.id is LogicalTypeId.VARCHAR:
                    used = column.data[: self.row_count]
                    total += sum(len(v) for v in used if isinstance(v, str))
                    total += len(column.data) * 8
                else:
                    total += column.data.nbytes
                total += column.validity.nbytes
                total += column.undo_memory()
            return total
