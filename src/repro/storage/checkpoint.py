"""Checkpointing: persisting the committed state into the single-file format.

The paper (§6): *"Checkpoints will first write new blocks that contain the
updated data to the file and as a last step update the root pointer and the
free list in the header atomically."*  And §2: *"When some columns in a
table are changed, the unchanged columns should not be rewritten in any way
for performance reasons. Partitioning columns is still required though,
otherwise changes again force an unnecessary rewrite of large amounts of
data."*

Both requirements shape the design:

* Column data is persisted in **segments** of :data:`SEGMENT_ROWS` rows.
  Each segment owns its blocks.  A checkpoint rewrites only segments whose
  rows fall inside the column's dirty range; clean segments keep the block
  ids of the previous checkpoint, so an ``UPDATE`` of one column never
  rewrites its neighbors, and appends rewrite only the tail segment.
* Blocks freed by this checkpoint (replaced segments, the old metadata
  chain) are *quarantined* until the header flip: a crash mid-checkpoint
  must leave every block of the previous checkpoint intact, so the old
  header still describes a fully valid database.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..catalog.catalog import Catalog
from ..catalog.entry import ColumnDefinition, TableEntry, ViewEntry
from ..errors import CorruptionError, InternalError
from ..optimizer.statistics import (compute_column_statistics,
                                    restore_column_statistics)
from ..types import DataChunk, Vector, cast_scalar, type_from_string, VARCHAR
from .block_file import INVALID_BLOCK, BlockFile, MetaBlockReader, MetaBlockWriter
from .buffer_manager import BufferManager
from .compression import CompressionLevel, decode_array, encode_array
from .serialize import BinaryReader, BinaryWriter
from .table_data import SEGMENT_ROWS, ColumnData, TableData

__all__ = ["PersistedSegment", "CheckpointWriter", "CheckpointReader"]

#: Version 2 adds per-column optimizer statistics (min/max/NDV/null count)
#: to the catalog metadata; version-1 files still load, with empty stats
#: that the next checkpoint recomputes and persists.
_CHECKPOINT_VERSION = 2
_MIN_SUPPORTED_VERSION = 1


class PersistedSegment:
    """Bookkeeping for one persisted column segment."""

    __slots__ = ("row_start", "row_count", "head_block", "block_ids")

    def __init__(self, row_start: int, row_count: int, head_block: int,
                 block_ids: List[int]) -> None:
        self.row_start = row_start
        self.row_count = row_count
        self.head_block = head_block
        self.block_ids = block_ids


def _serialize_default(column: ColumnDefinition) -> Optional[str]:
    if column.default is None:
        return None
    return cast_scalar(column.default, VARCHAR)


def _deserialize_default(text: Optional[str], column_type) -> object:
    if text is None:
        return None
    return cast_scalar(text, column_type)


def _write_stat_scalar(writer: BinaryWriter, value) -> None:
    """Stats min/max live in the raw storage domain (DATE is int days,
    TIMESTAMP int micros), so they are tagged and written natively instead
    of round-tripping through SQL casts."""
    if value is None:
        writer.write_uint8(0)
    elif isinstance(value, bool):
        writer.write_uint8(4)
        writer.write_bool(value)
    elif isinstance(value, (int, np.integer)):
        writer.write_uint8(1)
        writer.write_int64(int(value))
    elif isinstance(value, (float, np.floating)):
        writer.write_uint8(2)
        writer.write_double(float(value))
    elif isinstance(value, str):
        writer.write_uint8(3)
        writer.write_string(value)
    else:
        writer.write_uint8(0)


def _read_stat_scalar(reader: BinaryReader):
    tag = reader.read_uint8()
    if tag == 1:
        return reader.read_int64()
    if tag == 2:
        return reader.read_double()
    if tag == 3:
        return reader.read_string()
    if tag == 4:
        return reader.read_bool()
    if tag == 0:
        return None
    raise CorruptionError(f"Unknown statistics scalar tag {tag}")


class CheckpointWriter:
    """Writes one checkpoint; one instance per checkpoint invocation."""

    def __init__(self, block_file: BlockFile, buffer_manager: BufferManager) -> None:
        self._file = block_file
        self._buffers = buffer_manager
        #: Blocks owned by the *previous* checkpoint; only freed post-flip.
        self._pending_frees: List[int] = []
        #: Statistics the C1 experiment reports: how much was actually rewritten.
        self.segments_written = 0
        self.segments_reused = 0
        self.bytes_written = 0

    # -- segment io -------------------------------------------------------------
    def _write_segment(self, column: ColumnData, row_start: int, row_count: int) -> PersistedSegment:
        writer = BinaryWriter()
        data_slice = column.data[row_start:row_start + row_count]
        validity_slice = column.validity[row_start:row_start + row_count]
        writer.write_uint64(row_start)
        writer.write_uint64(row_count)
        writer.write_bytes(encode_array(data_slice, CompressionLevel.LIGHT))
        writer.write_bytes(encode_array(validity_slice, CompressionLevel.LIGHT))
        payload = writer.getvalue()
        chain = MetaBlockWriter(self._file)
        chain.write(payload)
        head = chain.finalize()
        self.segments_written += 1
        self.bytes_written += len(payload)
        return PersistedSegment(row_start, row_count, head, chain.written_blocks)

    def _checkpoint_column(self, column: ColumnData, row_count: int) -> List[PersistedSegment]:
        """Rewrite dirty segments, reuse clean ones."""
        old_segments = {segment.row_start: segment for segment in column.persisted_segments}
        new_segments: List[PersistedSegment] = []
        for row_start in range(0, max(row_count, 0), SEGMENT_ROWS):
            segment_rows = min(SEGMENT_ROWS, row_count - row_start)
            old = old_segments.pop(row_start, None)
            dirty = (column.is_dirty()
                     and column.dirty_lo < row_start + segment_rows
                     and column.dirty_hi >= row_start)
            if old is not None and not dirty and old.row_count == segment_rows:
                new_segments.append(old)
                self.segments_reused += 1
            else:
                if old is not None:
                    self._pending_frees.extend(old.block_ids)
                new_segments.append(self._write_segment(column, row_start, segment_rows))
        # Segments past the new row count (after compaction shrink) are freed.
        for old in old_segments.values():
            self._pending_frees.extend(old.block_ids)
        return new_segments

    # -- metadata ------------------------------------------------------------------
    def _serialize_catalog(self, catalog: Catalog, transaction) -> bytes:
        writer = BinaryWriter()
        writer.write_uint32(_CHECKPOINT_VERSION)
        tables = list(catalog.tables(transaction))
        writer.write_uint32(len(tables))
        for table in tables:
            writer.write_string(table.name)
            writer.write_uint32(len(table.columns))
            for column in table.columns:
                writer.write_string(column.name)
                writer.write_string(str(column.dtype))
                writer.write_bool(column.nullable)
                writer.write_optional_string(_serialize_default(column))
            data: TableData = table.data
            writer.write_uint64(data.row_count)
            for column_data in data.columns:
                segments = column_data.persisted_segments
                writer.write_uint32(len(segments))
                for segment in segments:
                    writer.write_uint64(segment.row_start)
                    writer.write_uint64(segment.row_count)
                    writer.write_int64(segment.head_block)
                    writer.write_uint32(len(segment.block_ids))
                    for block_id in segment.block_ids:
                        writer.write_int64(block_id)
                stats = column_data.stats
                writer.write_uint64(stats.row_count)
                writer.write_uint64(stats.null_count)
                writer.write_double(stats.ndv)
                writer.write_bool(stats.stale)
                _write_stat_scalar(writer, stats.min_value)
                _write_stat_scalar(writer, stats.max_value)
        views = list(catalog.views(transaction))
        writer.write_uint32(len(views))
        for view in views:
            writer.write_string(view.name)
            writer.write_string(view.sql)
        return writer.getvalue()

    def write(self, catalog: Catalog, transaction, old_metadata_blocks: List[int],
              old_free_list_blocks: List[int]) -> tuple:
        """Write all dirty data + metadata, flip the header, apply frees.

        ``transaction`` supplies the snapshot (the caller guarantees it sees
        all committed data and that no other transaction is active).
        Returns ``(metadata_blocks, free_list_blocks)`` for the next round.
        """
        # Phase 1: table data.  Compaction first (it dirties everything).
        for table in catalog.tables(transaction):
            data: TableData = table.data
            if data.needs_compaction:
                mask = data.visible_mask(transaction, 0, data.row_count)
                data.compact(mask)
            for column_data in data.columns:
                # Updates/deletes only widen the in-memory summary; the
                # checkpoint re-derives exact statistics, but only for
                # columns whose summary went stale -- clean columns are
                # never re-scanned (paper §2).
                stats = column_data.stats
                if stats.stale or stats.row_count != data.row_count:
                    column_data.stats = compute_column_statistics(
                        column_data.data[:data.row_count],
                        column_data.validity[:data.row_count],
                        column_data.dtype)
                column_data.persisted_segments = self._checkpoint_column(
                    column_data, data.row_count
                )
                column_data.mark_clean()

        # Phase 2: catalog metadata chain.
        metadata = self._serialize_catalog(catalog, transaction)
        meta_chain = MetaBlockWriter(self._file)
        meta_chain.write(metadata)
        metadata_root = meta_chain.finalize()
        self._pending_frees.extend(old_metadata_blocks)
        self._pending_frees.extend(old_free_list_blocks)

        # Phase 3: the free list that will hold once this checkpoint is live.
        # Chicken-and-egg: the chain's own blocks must not appear inside the
        # list it stores, but allocating them changes the list.  Resolve by
        # allocating one block at a time and recomputing until the remaining
        # list fits the allocated chain (allocation only shrinks the list,
        # so this converges).
        chain_blocks: list = []
        while True:
            prospective = sorted(set(self._file.free_blocks)
                                 | set(self._pending_frees))
            free_writer = BinaryWriter()
            free_writer.write_int64_array(np.asarray(prospective, dtype=np.int64))
            payload = free_writer.getvalue()
            if MetaBlockWriter.blocks_needed(len(payload)) <= len(chain_blocks):
                break
            chain_blocks.append(self._file.allocate_block())
        free_chain = MetaBlockWriter(self._file)
        free_chain.write(payload)
        free_root = free_chain.finalize_into(chain_blocks)
        # Over-allocated chain blocks (rare boundary case) return to the
        # in-memory free set; the next checkpoint persists them.
        for unused in chain_blocks[len(free_chain.written_blocks):]:
            self._file.free_block(unused)

        # Phase 4: atomic flip, then release the old checkpoint's blocks.
        self._file.flip_header(metadata_root, free_root)
        for block_id in self._pending_frees:
            self._file.free_block(block_id)
        self._buffers.invalidate_cache()
        return meta_chain.written_blocks, free_chain.written_blocks


class CheckpointReader:
    """Loads the catalog and all table data from a checkpointed file."""

    def __init__(self, block_file: BlockFile, buffer_manager: BufferManager) -> None:
        self._file = block_file
        self._buffers = buffer_manager
        self.metadata_blocks: List[int] = []
        self.free_list_blocks: List[int] = []

    def _read_segment(self, column: ColumnData, segment: PersistedSegment,
                      row_count_check: int) -> None:
        reader_chain = MetaBlockReader(self._file, segment.head_block)
        reader = BinaryReader(reader_chain.data)
        row_start = reader.read_uint64()
        row_count = reader.read_uint64()
        if row_start != segment.row_start or row_count != segment.row_count:
            raise CorruptionError(
                f"Segment at block {segment.head_block} describes rows "
                f"{row_start}+{row_count}, catalog expected "
                f"{segment.row_start}+{segment.row_count}"
            )
        data = decode_array(reader.read_bytes())
        validity = decode_array(reader.read_bytes()).astype(np.bool_)
        if len(data) != row_count or len(validity) != row_count:
            raise CorruptionError("Segment payload row count mismatch")
        column.data[row_start:row_start + row_count] = data
        column.validity[row_start:row_start + row_count] = validity

    def load(self, catalog: Catalog, bootstrap_transaction) -> None:
        """Populate ``catalog`` from the file's current root pointer."""
        if self._file.root_block == INVALID_BLOCK:
            return
        meta_reader_chain = MetaBlockReader(self._file, self._file.root_block)
        self.metadata_blocks = meta_reader_chain.blocks_read
        reader = BinaryReader(meta_reader_chain.data)
        version = reader.read_uint32()
        if not _MIN_SUPPORTED_VERSION <= version <= _CHECKPOINT_VERSION:
            raise CorruptionError(f"Unsupported checkpoint version {version}")
        table_count = reader.read_uint32()
        for _ in range(table_count):
            name = reader.read_string()
            column_count = reader.read_uint32()
            definitions = []
            for _ in range(column_count):
                column_name = reader.read_string()
                column_type = type_from_string(reader.read_string())
                nullable = reader.read_bool()
                default = _deserialize_default(reader.read_optional_string(), column_type)
                definitions.append(
                    ColumnDefinition(column_name, column_type, nullable, default)
                )
            row_count = reader.read_uint64()
            data = TableData([definition.dtype for definition in definitions])
            data._ensure_capacity(max(row_count, 1))
            for column_data in data.columns:
                segment_count = reader.read_uint32()
                segments = []
                for _ in range(segment_count):
                    row_start = reader.read_uint64()
                    segment_rows = reader.read_uint64()
                    head_block = reader.read_int64()
                    block_count = reader.read_uint32()
                    block_ids = [reader.read_int64() for _ in range(block_count)]
                    segments.append(
                        PersistedSegment(row_start, segment_rows, head_block, block_ids)
                    )
                column_data.persisted_segments = segments
                if version >= 2:
                    stats_rows = reader.read_uint64()
                    stats_nulls = reader.read_uint64()
                    stats_ndv = reader.read_double()
                    stats_stale = reader.read_bool()
                    stats_min = _read_stat_scalar(reader)
                    stats_max = _read_stat_scalar(reader)
                    column_data.stats = restore_column_statistics(
                        column_data.dtype, stats_rows, stats_nulls,
                        stats_ndv, stats_stale, stats_min, stats_max)
            data.row_count = row_count
            for column_data in data.columns:
                for segment in column_data.persisted_segments:
                    self._read_segment(column_data, segment, row_count)
                column_data.mark_clean()
            # Checkpoint-loaded rows belong to "pre-history": visible to all.
            data.inserted_by[:row_count] = 0
            data.deleted_by[:row_count] = 0
            data.last_writer[:row_count] = 0
            entry = TableEntry(name, definitions, data, created_by=0)
            catalog.create_entry(entry, bootstrap_transaction)
            # Bootstrap entries are pre-history, not transactional creations.
            entry.created_by = 0
        view_count = reader.read_uint32()
        for _ in range(view_count):
            view_name = reader.read_string()
            view_sql = reader.read_string()
            entry = ViewEntry(view_name, view_sql, None, created_by=0)
            catalog.create_entry(entry, bootstrap_transaction)
            entry.created_by = 0

        if self._file.free_list_root != INVALID_BLOCK:
            free_chain = MetaBlockReader(self._file, self._file.free_list_root)
            self.free_list_blocks = free_chain.blocks_read
            free_reader = BinaryReader(free_chain.data)
            self._file.set_free_list(free_reader.read_int64_array().tolist())
