"""Compression codecs for column segments and query intermediates.

Two roles, both from the paper:

* **storage** -- column segments are compressed inside 256 KiB blocks;
* **cooperation (Figure 1)** -- under memory pressure the reactive controller
  re-compresses *in-memory intermediates* (hash tables, sort runs) first with
  a lightweight codec, then with a heavy one, trading CPU cycles for RAM.

Codec taxonomy follows the paper's "no / light / heavy" levels:

========  ======================  =========================================
Level     Codec                    Characteristics
========  ======================  =========================================
NONE      :class:`NoneCodec`      memcpy; zero CPU cost, zero savings
LIGHT     :class:`RleCodec`,      one cheap NumPy pass; good on repetitive
          :class:`DictionaryCodec`, data (sorted keys, categorical strings)
          :class:`BitPackCodec`
HEAVY     :class:`ZlibCodec`      general-purpose entropy coding; highest
                                  ratio, highest CPU cost
========  ======================  =========================================

Each codec converts a NumPy array to bytes and back.  VARCHAR (object)
arrays are serialized as length-prefixed UTF-8.  All payloads are
self-describing: :func:`decode_array` only needs the bytes.
"""

from __future__ import annotations

import enum
import struct
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import CorruptionError, InternalError

__all__ = [
    "CompressionLevel",
    "CompressionType",
    "encode_array",
    "decode_array",
    "best_codec_for",
]


class CompressionLevel(enum.IntEnum):
    """The three reactive compression levels of Figure 1."""

    NONE = 0
    LIGHT = 1
    HEAVY = 2


class CompressionType(enum.IntEnum):
    """On-wire codec identifiers (stored in the segment header)."""

    RAW = 0
    RLE = 1
    DICTIONARY = 2
    BITPACK = 3
    ZLIB = 4
    STRINGS = 5        # length-prefixed UTF-8, uncompressed
    STRINGS_ZLIB = 6   # length-prefixed UTF-8, zlib-compressed


_HEADER = struct.Struct("<BBQ")  # codec, dtype code, element count

_DTYPE_CODES = {
    np.dtype(np.bool_): 0,
    np.dtype(np.int8): 1,
    np.dtype(np.int16): 2,
    np.dtype(np.int32): 3,
    np.dtype(np.int64): 4,
    np.dtype(np.float32): 5,
    np.dtype(np.float64): 6,
    np.dtype(object): 7,
    np.dtype(np.uint8): 8,
    np.dtype(np.uint32): 9,
    np.dtype(np.uint64): 10,
}
_CODES_DTYPE = {code: dtype for dtype, code in _DTYPE_CODES.items()}


def _encode_strings(array: np.ndarray) -> bytes:
    """Length-prefixed UTF-8 for object arrays; None encoded as length -1."""
    parts = []
    for value in array:
        if value is None:
            parts.append(struct.pack("<i", -1))
        else:
            raw = value.encode("utf-8") if isinstance(value, str) else str(value).encode("utf-8")
            parts.append(struct.pack("<i", len(raw)))
            parts.append(raw)
    return b"".join(parts)


def _decode_strings(payload: bytes, count: int) -> np.ndarray:
    out = np.empty(count, dtype=object)
    offset = 0
    for index in range(count):
        (length,) = struct.unpack_from("<i", payload, offset)
        offset += 4
        if length < 0:
            out[index] = None
        else:
            out[index] = payload[offset:offset + length].decode("utf-8")
            offset += length
    return out


def _rle_encode(array: np.ndarray) -> Optional[bytes]:
    """Run-length encode; returns None when RLE would not shrink the data."""
    if len(array) == 0:
        return struct.pack("<Q", 0)
    changes = np.flatnonzero(array[1:] != array[:-1]) + 1
    starts = np.concatenate([[0], changes])
    if starts.size * (array.itemsize + 8) >= array.nbytes:
        return None
    run_values = array[starts]
    run_lengths = np.diff(np.concatenate([starts, [len(array)]])).astype(np.uint64)
    return (struct.pack("<Q", starts.size)
            + run_lengths.tobytes()
            + run_values.tobytes())


def _rle_decode(payload: bytes, dtype: np.dtype, count: int) -> np.ndarray:
    (runs,) = struct.unpack_from("<Q", payload, 0)
    offset = 8
    lengths = np.frombuffer(payload, dtype=np.uint64, count=runs, offset=offset)
    offset += runs * 8
    values = np.frombuffer(payload, dtype=dtype, count=runs, offset=offset)
    out = np.repeat(values, lengths.astype(np.int64))
    if len(out) != count:
        raise CorruptionError("RLE payload decodes to wrong element count")
    return out


def _dictionary_encode(array: np.ndarray) -> Optional[bytes]:
    """Dictionary encoding for integer arrays with few distinct values."""
    unique, inverse = np.unique(array, return_inverse=True)
    if unique.size > 255 or unique.size * array.itemsize + len(array) >= array.nbytes:
        return None
    codes = inverse.astype(np.uint8)
    return (struct.pack("<H", unique.size)
            + unique.tobytes()
            + codes.tobytes())


def _dictionary_decode(payload: bytes, dtype: np.dtype, count: int) -> np.ndarray:
    (size,) = struct.unpack_from("<H", payload, 0)
    offset = 2
    unique = np.frombuffer(payload, dtype=dtype, count=size, offset=offset)
    offset += size * dtype.itemsize
    codes = np.frombuffer(payload, dtype=np.uint8, count=count, offset=offset)
    return unique[codes]


def _bitpack_encode(array: np.ndarray) -> Optional[bytes]:
    """Frame-of-reference + width reduction for integer arrays."""
    if array.size == 0 or array.dtype.kind != "i":
        return None
    low = int(array.min())
    high = int(array.max())
    span = high - low
    for candidate, code in ((np.uint8, 0), (np.uint16, 1), (np.uint32, 2)):
        if span <= np.iinfo(candidate).max:
            if np.dtype(candidate).itemsize >= array.itemsize:
                return None
            packed = (array.astype(np.int64) - low).astype(candidate)
            return struct.pack("<qB", low, code) + packed.tobytes()
    return None


def _bitpack_decode(payload: bytes, dtype: np.dtype, count: int) -> np.ndarray:
    low, code = struct.unpack_from("<qB", payload, 0)
    packed_dtype = (np.uint8, np.uint16, np.uint32)[code]
    packed = np.frombuffer(payload, dtype=packed_dtype, count=count, offset=9)
    return (packed.astype(np.int64) + low).astype(dtype)


def encode_array(array: np.ndarray, level: CompressionLevel = CompressionLevel.NONE) -> bytes:
    """Serialize an array at the given compression level.

    LIGHT tries RLE, then dictionary, then bit-packing, keeping the first
    that actually shrinks the payload; HEAVY additionally zlib-compresses.
    The result always round-trips through :func:`decode_array`.
    """
    import zlib

    dtype_code = _DTYPE_CODES.get(array.dtype)
    if dtype_code is None:
        raise InternalError(f"Cannot serialize arrays of dtype {array.dtype}")
    count = len(array)

    if array.dtype == object:
        payload = _encode_strings(array)
        if level is CompressionLevel.HEAVY:
            return _HEADER.pack(CompressionType.STRINGS_ZLIB, dtype_code, count) \
                + zlib.compress(payload, 6)
        return _HEADER.pack(CompressionType.STRINGS, dtype_code, count) + payload

    contiguous = np.ascontiguousarray(array)
    if level is CompressionLevel.NONE:
        return _HEADER.pack(CompressionType.RAW, dtype_code, count) + contiguous.tobytes()

    if level is CompressionLevel.LIGHT:
        rle = _rle_encode(contiguous)
        if rle is not None:
            return _HEADER.pack(CompressionType.RLE, dtype_code, count) + rle
        if contiguous.dtype.kind == "i":
            packed = _dictionary_encode(contiguous)
            if packed is not None:
                return _HEADER.pack(CompressionType.DICTIONARY, dtype_code, count) + packed
            packed = _bitpack_encode(contiguous)
            if packed is not None:
                return _HEADER.pack(CompressionType.BITPACK, dtype_code, count) + packed
        return _HEADER.pack(CompressionType.RAW, dtype_code, count) + contiguous.tobytes()

    if level is CompressionLevel.HEAVY:
        # HEAVY means "spend the CPU, get the smallest": take the better of
        # the zlib encoding and the best lightweight encoding.
        heavy = _HEADER.pack(CompressionType.ZLIB, dtype_code, count) \
            + zlib.compress(contiguous.tobytes(), 6)
        light = encode_array(contiguous, CompressionLevel.LIGHT)
        return heavy if len(heavy) <= len(light) else light

    raise InternalError(f"Unknown compression level {level!r}")


def decode_array(payload: bytes) -> np.ndarray:
    """Inverse of :func:`encode_array`; raises CorruptionError on bad data."""
    import zlib

    if len(payload) < _HEADER.size:
        raise CorruptionError("Compressed segment shorter than its header")
    codec_code, dtype_code, count = _HEADER.unpack_from(payload, 0)
    body = payload[_HEADER.size:]
    dtype = _CODES_DTYPE.get(dtype_code)
    if dtype is None:
        raise CorruptionError(f"Unknown dtype code {dtype_code} in segment header")
    try:
        codec = CompressionType(codec_code)
    except ValueError:
        raise CorruptionError(f"Unknown codec code {codec_code} in segment header") from None

    try:
        if codec is CompressionType.RAW:
            return np.frombuffer(body, dtype=dtype, count=count).copy()
        if codec is CompressionType.RLE:
            return _rle_decode(body, dtype, count)
        if codec is CompressionType.DICTIONARY:
            return _dictionary_decode(body, dtype, count).copy()
        if codec is CompressionType.BITPACK:
            return _bitpack_decode(body, dtype, count)
        if codec is CompressionType.ZLIB:
            raw = zlib.decompress(body)
            return np.frombuffer(raw, dtype=dtype, count=count).copy()
        if codec is CompressionType.STRINGS:
            return _decode_strings(body, count)
        if codec is CompressionType.STRINGS_ZLIB:
            return _decode_strings(zlib.decompress(body), count)
    except (ValueError, struct.error, zlib.error) as exc:
        raise CorruptionError(f"Segment payload is corrupted: {exc}") from None
    raise InternalError(f"Unhandled codec {codec}")


def best_codec_for(array: np.ndarray, level: CompressionLevel) -> Tuple[bytes, float]:
    """Encode and report the achieved compression ratio (orig/encoded)."""
    encoded = encode_array(array, level)
    original = max(array.nbytes if array.dtype != object else len(_encode_strings(array)), 1)
    return encoded, original / max(len(encoded), 1)
