"""Storage manager: ties together block file, WAL, checkpoints, and recovery.

Startup sequence for a persistent database (paper §6 semantics):

1. open the single file, pick the newest valid header (double-header scheme);
2. load the catalog and all column segments from the checkpoint, verifying
   every block's checksum on the way in;
3. replay the sidecar WAL: committed record groups are re-applied as
   transactions; a torn tail (crash during commit) is discarded;
4. normal operation -- commits append to the WAL; checkpoints fold the WAL
   into the file and truncate it.

An in-memory database (``":memory:"``) simply runs with the WAL and block
file disabled.
"""

from __future__ import annotations

import os
from typing import List, Optional

from ..catalog.catalog import Catalog
from ..catalog.entry import ColumnDefinition, TableEntry, ViewEntry
from ..config import DatabaseConfig
from ..errors import (
    CatalogError,
    Error,
    InternalError,
    StorageError,
    TransactionContextError,
    WALError,
)
from ..observability import engine_span, registry as metrics_registry
from ..transaction.manager import TransactionManager
from ..transaction.transaction import Transaction
from ..types import DataChunk, cast_vector, type_from_string
from .block_file import BlockFile
from .buffer_manager import BufferManager
from .checkpoint import CheckpointReader, CheckpointWriter
from .table_data import TableData
from .wal import WALRecord, WALRecordType, WriteAheadLog

__all__ = ["StorageManager"]


class StorageManager:
    """Owns persistence for one database instance."""

    def __init__(self, path: str, config: DatabaseConfig,
                 buffer_manager: BufferManager) -> None:
        self.path = path
        self.config = config
        self.buffer_manager = buffer_manager
        self.in_memory = path == ":memory:"
        if self.in_memory:
            self.block_file: Optional[BlockFile] = None
            self.wal = WriteAheadLog(None)
        else:
            self.block_file = BlockFile(path, create=True,
                                        verify_checksums=config.verify_checksums)
            self.wal = WriteAheadLog(path + ".wal")
        self._metadata_blocks: List[int] = []
        self._free_list_blocks: List[int] = []
        self.checkpoints_written = 0
        #: Filled by the last checkpoint, for the C1 experiment report.
        self.last_checkpoint_stats: dict = {}

    # -- startup -------------------------------------------------------------
    def load(self, catalog: Catalog, transaction_manager: TransactionManager) -> None:
        """Load the checkpoint image and replay the WAL."""
        if self.in_memory:
            return
        bootstrap = transaction_manager.begin()
        try:
            reader = CheckpointReader(self.block_file, self.buffer_manager)
            reader.load(catalog, bootstrap)
            self._metadata_blocks = reader.metadata_blocks
            self._free_list_blocks = reader.free_list_blocks
            transaction_manager.commit(bootstrap)
        except Error:
            # Engine errors (CorruptionError, ...) already carry context.
            if bootstrap.is_active:
                transaction_manager.rollback(bootstrap)
            raise
        except Exception as exc:
            if bootstrap.is_active:
                transaction_manager.rollback(bootstrap)
            raise StorageError(
                f"loading the checkpoint image of {self.path!r} failed: {exc}"
            ) from exc
        self._replay_wal(catalog, transaction_manager)

    def _replay_wal(self, catalog: Catalog, transaction_manager: TransactionManager) -> None:
        groups = self.wal.read_all()
        for group_index, group in enumerate(groups):
            transaction = transaction_manager.begin()
            try:
                for record in group:
                    self._replay_record(record, catalog, transaction)
                transaction_manager.commit(transaction)
            except Error:
                if transaction.is_active:
                    transaction_manager.rollback(transaction)
                raise
            except Exception as exc:
                if transaction.is_active:
                    transaction_manager.rollback(transaction)
                raise WALError(
                    f"replay of committed WAL group {group_index} failed: "
                    f"{exc}"
                ) from exc

    def _replay_record(self, record: WALRecord, catalog: Catalog,
                       transaction: Transaction) -> None:
        kind = record.record_type
        payload = record.payload
        if kind is WALRecordType.CREATE_TABLE:
            definitions = []
            for name, type_text, nullable, default_text in payload["columns"]:
                column_type = type_from_string(type_text)
                from .checkpoint import _deserialize_default

                definitions.append(ColumnDefinition(
                    name, column_type, nullable,
                    _deserialize_default(default_text, column_type),
                ))
            data = TableData([definition.dtype for definition in definitions])
            entry = TableEntry(payload["name"], definitions, data,
                               transaction.transaction_id)
            catalog.create_entry(entry, transaction)
        elif kind is WALRecordType.DROP_TABLE:
            catalog.drop_entry(payload["name"], transaction, expected_type="table")
        elif kind is WALRecordType.CREATE_VIEW:
            entry = ViewEntry(payload["name"], payload["sql"], None,
                              transaction.transaction_id)
            catalog.create_entry(entry, transaction, or_replace=True)
        elif kind is WALRecordType.DROP_VIEW:
            catalog.drop_entry(payload["name"], transaction, expected_type="view")
        elif kind is WALRecordType.INSERT_CHUNK:
            table = catalog.get_table(payload["table"], transaction)
            chunk = payload["chunk"]
            aligned = DataChunk([
                cast_vector(vector, dtype)
                for vector, dtype in zip(chunk.columns, table.column_types)
            ])
            table.data.append_chunk(transaction, aligned)
        elif kind is WALRecordType.DELETE_ROWS:
            table = catalog.get_table(payload["table"], transaction)
            table.data.delete_rows(transaction, payload["rows"])
        elif kind is WALRecordType.UPDATE_ROWS:
            table = catalog.get_table(payload["table"], transaction)
            column_indices = payload["columns"]
            chunk = payload["chunk"]
            aligned = DataChunk([
                cast_vector(vector, table.columns[index].dtype)
                for vector, index in zip(chunk.columns, column_indices)
            ])
            table.data.update_rows(transaction, payload["rows"], column_indices, aligned)
        elif kind is WALRecordType.COMMIT:
            raise WALError("COMMIT record inside a record group")
        else:  # pragma: no cover
            raise WALError(f"Unknown WAL record {kind}")

    # -- commit path -------------------------------------------------------------
    def commit_hook(self, transaction: Transaction, commit_id: int) -> None:
        """Pre-commit hook: durably log the transaction before tags flip."""
        if transaction.wal_records and self.wal.enabled:
            self.wal.append_commit_group(transaction.wal_records, commit_id)

    def should_auto_checkpoint(self) -> bool:
        if self.in_memory or not self.config.wal_autocheckpoint:
            return False
        return self.wal.size() >= self.config.wal_autocheckpoint

    # -- checkpointing --------------------------------------------------------------
    def checkpoint(self, catalog: Catalog, transaction_manager: TransactionManager,
                   force: bool = False) -> bool:
        """Fold the WAL into the data file.

        Requires quiescence: the checkpoint snapshot must see every committed
        change and no transaction may be mid-flight (their undo chains would
        be unloadable).  With ``force`` the call raises when other
        transactions are active; otherwise it just returns False.
        """
        if self.in_memory:
            return False

        def write_snapshot(bootstrap: Transaction) -> None:
            writer = CheckpointWriter(self.block_file, self.buffer_manager)
            self._metadata_blocks, self._free_list_blocks = writer.write(
                catalog, bootstrap, self._metadata_blocks, self._free_list_blocks
            )
            self.last_checkpoint_stats = {
                "segments_written": writer.segments_written,
                "segments_reused": writer.segments_reused,
                "bytes_written": writer.bytes_written,
            }
            self.checkpoints_written += 1
            # Truncate *inside* the quiesced region: a commit group appended
            # between the snapshot and the truncation would be silently
            # discarded (durability loss) -- and would race the WAL file
            # handle being swapped.
            self.wal.truncate()

        try:
            with engine_span("checkpoint", kind="checkpoint", path=self.path):
                transaction_manager.run_quiesced(write_snapshot)
        except TransactionContextError:
            if force:
                raise
            return False
        metrics = metrics_registry()
        metrics.counter("repro_checkpoints_total",
                        "Checkpoints folded into the data file").inc()
        metrics.counter(
            "repro_checkpoint_bytes_written_total",
            "Bytes written by checkpoints").inc(
                self.last_checkpoint_stats.get("bytes_written", 0))
        catalog.prune(transaction_manager.lowest_active_start())
        return True

    # -- shutdown ----------------------------------------------------------------
    def close(self, catalog: Catalog, transaction_manager: TransactionManager) -> None:
        """Checkpoint (if configured) and release the file handles.

        A failing checkpoint-on-close must not *mask* the failure (the
        resilience pillar: corruption stops operation, silently dropping the
        report defeats it) and must not *lose* the WAL either -- the sidecar
        stays on disk so the next open replays it.  Handles are always
        released; the failure is re-raised afterwards with context.
        """
        if self.in_memory:
            return
        checkpoint_failure: Optional[BaseException] = None
        if self.config.checkpoint_on_close:
            try:
                if self.checkpoint(catalog, transaction_manager):
                    self.wal.delete_file()
            except (Error, OSError) as exc:
                checkpoint_failure = exc
        self.wal.close()
        if self.block_file is not None:
            self.block_file.close()
        if checkpoint_failure is not None:
            raise StorageError(
                f"checkpoint-on-close of {self.path!r} failed (the WAL was "
                f"preserved for recovery): {checkpoint_failure}"
            ) from checkpoint_failure
