"""Persistent storage: single-file block format, WAL, checkpoints, buffers.

Implements the storage design of paper §6: a single database file of
fixed-size 256 KiB blocks, every block checksummed and verified on read,
a header whose root pointer flips atomically at checkpoint time, a sidecar
write-ahead log consumed by checkpoints, and a buffer manager that enforces
the configured memory limit and (optionally) memtests its buffers.
"""

from .block_file import BLOCK_SIZE, BlockFile, MetaBlockReader, MetaBlockWriter
from .buffer_manager import Buffer, BufferManager, MemoryReservation
from .checkpoint import CheckpointReader, CheckpointWriter, PersistedSegment
from .checksum import checksum, verify_checksum
from .compression import CompressionLevel, CompressionType, decode_array, encode_array
from .serialize import BinaryReader, BinaryWriter
from .storage_manager import StorageManager
from .table_data import SEGMENT_ROWS, ColumnData, TableData
from .wal import WALRecord, WALRecordType, WriteAheadLog

__all__ = [
    "BLOCK_SIZE",
    "BlockFile",
    "MetaBlockReader",
    "MetaBlockWriter",
    "Buffer",
    "BufferManager",
    "MemoryReservation",
    "CheckpointReader",
    "CheckpointWriter",
    "PersistedSegment",
    "checksum",
    "verify_checksum",
    "CompressionLevel",
    "CompressionType",
    "encode_array",
    "decode_array",
    "BinaryReader",
    "BinaryWriter",
    "StorageManager",
    "SEGMENT_ROWS",
    "ColumnData",
    "TableData",
    "WALRecord",
    "WALRecordType",
    "WriteAheadLog",
]
