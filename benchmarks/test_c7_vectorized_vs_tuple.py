"""C7 -- §2/§6 claim: vectorized execution spends few CPU cycles per value.

"For the query processor, only a comparably low amount of CPU cycles per
value can be spent. Vectorized or Just-in-time compilation query processing
engines are the two state-of-the-art possibilities here."

The bench runs the same analytical query through:

* the vectorized Vector Volcano engine (interpretation overhead amortized
  over 2048-value vectors);
* the classic tuple-at-a-time Volcano interpreter
  (:mod:`repro.baselines.tuple_engine`), which re-interprets every
  expression per row.

Workloads: filtered aggregation, grouped aggregation, and an equi-join --
the OLAP patterns of §2.
"""

import time

import numpy as np
import pytest

from conftest import record_experiment

import repro
from repro.baselines import (
    TupleAggregate,
    TupleFilter,
    TupleHashJoin,
    TupleProjection,
    TupleScan,
    run_to_list,
)

ROWS = 1_000_000
DIM_ROWS = 1000


def build():
    con = repro.connect()
    rng = np.random.default_rng(15)
    con.execute("CREATE TABLE fact (g INTEGER, v INTEGER, k INTEGER)")
    groups = rng.integers(0, 100, ROWS).astype(np.int32)
    values = rng.integers(0, 10_000, ROWS).astype(np.int32)
    keys = rng.integers(0, DIM_ROWS, ROWS).astype(np.int32)
    with con.appender("fact") as appender:
        appender.append_numpy({"g": groups, "v": values, "k": keys})
    con.execute("CREATE TABLE dim (k INTEGER, w INTEGER)")
    with con.appender("dim") as appender:
        appender.append_numpy({
            "k": np.arange(DIM_ROWS, dtype=np.int32),
            "w": rng.integers(0, 10, DIM_ROWS).astype(np.int32),
        })
    fact_rows = list(zip(groups.tolist(), values.tolist(), keys.tolist()))
    dim_rows = list(zip(range(DIM_ROWS),
                        [int(w) for w in rng.integers(0, 10, DIM_ROWS)]))
    # Re-read dim rows from the database so both engines see identical data.
    dim_rows = con.execute("SELECT k, w FROM dim").fetchall()
    return con, fact_rows, dim_rows


SUM_SQL = "SELECT sum(v * 2 + 1) FROM fact WHERE v >= 5000"
GROUP_SQL = "SELECT g, sum(v), count(*) FROM fact GROUP BY g"
JOIN_SQL = ("SELECT sum(dim.w) FROM fact JOIN dim ON fact.k = dim.k "
            "WHERE fact.v < 2000")


def tuple_sum(fact_rows):
    plan = TupleAggregate(
        TupleProjection(
            TupleFilter(TupleScan(fact_rows), lambda row: row[1] >= 5000),
            [lambda row: row[1] * 2 + 1]),
        None,
        [(lambda: 0, lambda state, row: state + row[0], lambda state: state)])
    return run_to_list(plan)[0][0]


def tuple_group(fact_rows):
    plan = TupleAggregate(
        TupleScan(fact_rows), lambda row: row[0],
        [(lambda: 0, lambda state, row: state + row[1], lambda state: state),
         (lambda: 0, lambda state, row: state + 1, lambda state: state)])
    return run_to_list(plan)


def tuple_join(fact_rows, dim_rows):
    joined = TupleHashJoin(
        TupleFilter(TupleScan(fact_rows), lambda row: row[1] < 2000),
        TupleScan(dim_rows),
        lambda row: row[2], lambda row: row[0])
    plan = TupleAggregate(
        joined, None,
        [(lambda: 0, lambda state, row: state + row[4], lambda state: state)])
    return run_to_list(plan)[0][0]


def test_vectorized_filtered_sum(benchmark):
    con, _, _ = build()
    benchmark(lambda: con.execute(SUM_SQL).fetchvalue())
    con.close()


def test_tuple_filtered_sum(benchmark):
    _, fact_rows, _ = build()
    benchmark.pedantic(tuple_sum, args=(fact_rows,), rounds=1, iterations=1)


def test_c7_report(benchmark):
    con, fact_rows, dim_rows = build()

    def measure():
        results = []
        for label, sql, tuple_fn in (
            ("filtered sum", SUM_SQL, lambda: tuple_sum(fact_rows)),
            ("grouped agg", GROUP_SQL, lambda: tuple_group(fact_rows)),
            ("join + agg", JOIN_SQL, lambda: tuple_join(fact_rows, dim_rows)),
        ):
            con.execute(sql).fetchall()  # warm-up
            started = time.perf_counter()
            vectorized_result = con.execute(sql).fetchall()
            vectorized_s = time.perf_counter() - started
            started = time.perf_counter()
            tuple_result = tuple_fn()
            tuple_s = time.perf_counter() - started
            # Cross-check correctness between the engines.
            if label == "filtered sum":
                assert vectorized_result[0][0] == tuple_result
            elif label == "grouped agg":
                assert sorted(tuple(r) for r in vectorized_result) == \
                    sorted(tuple_result)
            else:
                assert vectorized_result[0][0] == tuple_result
            results.append((label, vectorized_s, tuple_s))
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [f"fact table: {ROWS:,} rows; dim: {DIM_ROWS:,} rows",
             f"{'workload':<14}{'vectorized':>12}{'tuple-at-a-time':>17}"
             f"{'speedup':>9}"]
    for label, vectorized_s, tuple_s in results:
        lines.append(f"{label:<14}{vectorized_s * 1000:9.1f} ms"
                     f"{tuple_s * 1000:14.1f} ms"
                     f"{tuple_s / vectorized_s:8.0f}x")
    record_experiment("C7", "Vectorized vs tuple-at-a-time execution "
                            "(paper §2/§6)", lines)
    for label, vectorized_s, tuple_s in results:
        assert tuple_s > vectorized_s * 5, \
            f"vectorization must dominate on {label}"
    con.close()
