"""Disabled-tracer overhead gate: observability must be (nearly) free.

The quacktrace contract (ISSUE 4): with tracing disabled the engine pays a
single ``is None`` test per operator per query and nothing else.  This
benchmark holds the contract to a number: a scan/aggregate workload with
the instrumented code paths (the shipping default, tracer off) must stay
within 2% of a stripped baseline where ``PhysicalOperator.run`` is
monkeypatched straight through to ``execute`` -- i.e. with even the
``is None`` check removed.

Timing noise dominates a 2% margin on a short query, so each variant takes
the best of several repeats over a multi-million-row aggregation and the
gate carries a small absolute slack for scheduler jitter.
"""

import time

import numpy as np

import repro
from repro import observability as obs
from repro.execution.physical import PhysicalOperator

from conftest import record_experiment, record_timing

ROWS = 2_000_000
REPEATS = 7
QUERY = "SELECT g, count(*), sum(v) FROM t WHERE v % 7 != 0 GROUP BY g"
#: Relative gate from the issue, plus absolute slack for timer jitter.
MAX_RELATIVE_OVERHEAD = 0.02
ABSOLUTE_SLACK_S = 0.005


def _build():
    con = repro.connect(config={"threads": 1})
    con.execute("CREATE TABLE t (g INTEGER, v INTEGER)")
    index = np.arange(ROWS)
    with con.appender("t") as appender:
        appender.append_numpy({
            "g": (index % 29).astype(np.int32),
            "v": index.astype(np.int32),
        })
    return con


def _samples(con):
    samples = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        con.execute(QUERY).fetchall()
        samples.append(time.perf_counter() - start)
    return samples


def _best_of(con):
    return min(_samples(con))


def test_disabled_tracer_overhead_under_two_percent(monkeypatch):
    was_enabled = obs.tracing_enabled()
    obs.disable_tracing()
    con = _build()
    try:
        # Shipping default: instrumented run()/statement observation with
        # the tracer off.
        instrumented_samples = _samples(con)
        instrumented = min(instrumented_samples)
        record_timing("trace_overhead/instrumented", instrumented_samples,
                      rows=ROWS)

        # Stripped baseline: run() bypassed entirely -- no tracer lookup,
        # no ``is None`` test, exactly the pre-observability pull loop.
        monkeypatch.setattr(PhysicalOperator, "run",
                            lambda self: self.execute())
        baseline_samples = _samples(con)
        baseline = min(baseline_samples)
        record_timing("trace_overhead/baseline", baseline_samples, rows=ROWS)

        overhead = instrumented / baseline - 1.0
        record_experiment(
            "T2", "quacktrace disabled-path overhead",
            [f"rows: {ROWS}",
             f"baseline (run->execute): {baseline * 1e3:.2f} ms",
             f"instrumented, tracer off: {instrumented * 1e3:.2f} ms",
             f"relative overhead: {overhead * 100:+.2f}%",
             f"gate: <= {MAX_RELATIVE_OVERHEAD * 100:.0f}%"])
        assert instrumented <= baseline * (1.0 + MAX_RELATIVE_OVERHEAD) \
            + ABSOLUTE_SLACK_S, (
            f"disabled-tracer overhead {overhead * 100:.2f}% exceeds "
            f"{MAX_RELATIVE_OVERHEAD * 100:.0f}% gate "
            f"(baseline {baseline * 1e3:.2f} ms, "
            f"instrumented {instrumented * 1e3:.2f} ms)")
    finally:
        con.close()
        if was_enabled:
            obs.enable_tracing()
