"""C2 -- §2 claim: combined OLAP & ETL workloads on one system.

"Concurrent data modification is common in dashboard-scenarios where
multiple threads update the data using ETL queries while other threads run
the OLAP queries that drive visualizations."

The bench runs the dashboard scenario: an ETL thread doing bulk appends and
bulk sentinel updates while OLAP readers aggregate concurrently.  Measured:

* OLAP query latency alone vs with a concurrent ETL writer (MVCC must keep
  readers running, not blocked);
* snapshot consistency (every aggregate sees a clean state).
"""

import statistics
import threading
import time

import numpy as np
import pytest

from conftest import record_experiment

import repro

BASE_ROWS = 150_000
OLAP_QUERY = ("SELECT region, count(*), sum(amount), avg(amount) "
              "FROM events GROUP BY region")


def build():
    con = repro.connect()
    con.execute("CREATE TABLE events (region INTEGER, amount INTEGER)")
    rng = np.random.default_rng(2)
    with con.appender("events") as appender:
        appender.append_numpy({
            "region": rng.integers(0, 16, BASE_ROWS).astype(np.int32),
            "amount": rng.integers(1, 1000, BASE_ROWS).astype(np.int32),
        })
    return con


def olap_latencies(con, queries=12):
    latencies = []
    for _ in range(queries):
        started = time.perf_counter()
        rows = con.execute(OLAP_QUERY).fetchall()
        latencies.append(time.perf_counter() - started)
        assert len(rows) == 16
    return latencies


def test_olap_alone(benchmark):
    con = build()
    benchmark(lambda: con.execute(OLAP_QUERY).fetchall())
    con.close()


def test_olap_with_concurrent_etl(benchmark):
    con = build()
    stop = threading.Event()
    etl_rounds = [0]

    def etl_writer():
        local = con.duplicate()
        rng = np.random.default_rng(3)
        while not stop.is_set():
            n = 5000
            with local.appender("events") as appender:
                appender.append_numpy({
                    "region": rng.integers(0, 16, n).astype(np.int32),
                    "amount": np.where(rng.random(n) < 0.2, -999,
                                       rng.integers(1, 1000, n)).astype(np.int32),
                })
            local.execute("UPDATE events SET amount = NULL "
                          "WHERE amount = -999")
            etl_rounds[0] += 1
        local.close()

    writer = threading.Thread(target=etl_writer)
    writer.start()
    try:
        reader = con.duplicate()
        benchmark(lambda: reader.execute(OLAP_QUERY).fetchall())
        reader.close()
    finally:
        stop.set()
        writer.join()

    # Consistency: all sentinels committed so far were recoded.
    assert con.query_value(
        "SELECT count(*) FROM events WHERE amount = -999") == 0
    assert etl_rounds[0] > 0, "the ETL thread must actually have run"
    con.close()


def test_c2_report(benchmark):
    con = build()

    def scenario():
        alone = olap_latencies(con)

        stop = threading.Event()
        etl_stats = {"appends": 0, "updates": 0}

        def etl_writer():
            local = con.duplicate()
            rng = np.random.default_rng(4)
            while not stop.is_set():
                n = 5000
                with local.appender("events") as appender:
                    appender.append_numpy({
                        "region": rng.integers(0, 16, n).astype(np.int32),
                        "amount": np.where(
                            rng.random(n) < 0.2, -999,
                            rng.integers(1, 1000, n)).astype(np.int32),
                    })
                etl_stats["appends"] += n
                local.execute("UPDATE events SET amount = NULL "
                              "WHERE amount = -999")
                etl_stats["updates"] += 1
            local.close()

        writer = threading.Thread(target=etl_writer)
        writer.start()
        try:
            reader = con.duplicate()
            concurrent = olap_latencies(reader)
            reader.close()
        finally:
            stop.set()
            writer.join()
        return alone, concurrent, etl_stats

    alone, concurrent, etl_stats = benchmark.pedantic(scenario, rounds=1,
                                                      iterations=1)
    alone_ms = statistics.median(alone) * 1000
    concurrent_ms = statistics.median(concurrent) * 1000
    record_experiment("C2", "Concurrent OLAP + ETL (paper §2 dashboard)", [
        f"base table: {BASE_ROWS:,} rows; OLAP = 4-aggregate GROUP BY",
        f"OLAP median latency, idle system      : {alone_ms:7.1f} ms",
        f"OLAP median latency, ETL writer active: {concurrent_ms:7.1f} ms",
        f"ETL progress during the window        : "
        f"{etl_stats['appends']:,} rows appended, "
        f"{etl_stats['updates']} bulk updates",
        "readers never blocked (MVCC), every snapshot consistent",
    ])
    # Shape: concurrency costs something, but readers are never blocked --
    # latency must stay within a small factor, not degrade to serialization.
    assert concurrent_ms < alone_ms * 20
    assert con.query_value(
        "SELECT count(*) FROM events WHERE amount = -999") == 0
    con.close()
