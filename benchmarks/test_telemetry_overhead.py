"""PR10 telemetry benchmarks: continuous-telemetry overhead gate + report.

ISSUE 10's pitch is telemetry that can stay on in production: a background
sampler snapshotting the metrics registry every ``telemetry_interval_ms``
plus per-statement resource accounting must not meaningfully slow the
engine.  Two benchmarks hold that to numbers:

* the overhead gate runs the tracer/profiler workload with full telemetry
  on (sampler at 250 ms, JSONL sink, statement log) vs off, best of
  several repeats, gated at 3% relative overhead plus absolute slack for
  scheduler jitter -- the statement log always records (its cost is one
  ring append per *statement*, invisible on a multi-hundred-ms query), so
  "off" here means sampler + sink off, which is the real production knob;
* the serving report drives the PR9 mixed OLAP/ETL session load with
  telemetry fully enabled and writes ``BENCH_PR10.json`` in the same
  repro-bench-v1 shape, so ``tools/bench_compare.py BENCH_PR9.json
  BENCH_PR10.json`` quantifies the telemetry tax at serving scale.
"""

import json
import os
import tempfile
import time

import numpy as np

import repro
from repro.server import loadgen

from conftest import record_experiment, record_timing

ROWS = 2_000_000
REPEATS = 7
QUERY = "SELECT g, count(*), sum(v) FROM t WHERE v % 7 != 0 GROUP BY g"
MAX_RELATIVE_OVERHEAD = 0.03
ABSOLUTE_SLACK_S = 0.005

SESSIONS = int(os.environ.get("REPRO_LOADGEN_SESSIONS", "1000"))
WORKERS = int(os.environ.get("REPRO_LOADGEN_WORKERS", "8"))
STATEMENTS = int(os.environ.get("REPRO_LOADGEN_STATEMENTS", "4"))

BENCH_PR10_JSON = os.environ.get(
    "REPRO_BENCH_PR10_JSON",
    os.path.join(os.path.dirname(__file__), "..", "BENCH_PR10.json"))


def _build(config):
    con = repro.connect(config=config)
    con.execute("CREATE TABLE t (g INTEGER, v INTEGER)")
    index = np.arange(ROWS)
    with con.appender("t") as appender:
        appender.append_numpy({
            "g": (index % 29).astype(np.int32),
            "v": index.astype(np.int32),
        })
    return con


def _samples(con):
    samples = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        con.execute(QUERY).fetchall()
        samples.append(time.perf_counter() - start)
    return samples


def test_telemetry_overhead_under_three_percent():
    # Result caching off: every repeat must execute the full scan, so the
    # gate measures telemetry against real engine work, not cache hits.
    con = _build({"threads": 1, "result_cache_entries": 0})
    try:
        baseline_samples = _samples(con)
        baseline = min(baseline_samples)
        record_timing("telemetry_overhead/baseline", baseline_samples,
                      rows=ROWS)

        with tempfile.TemporaryDirectory() as tmp:
            sink_path = os.path.join(tmp, "telemetry.jsonl")
            con.execute(f"PRAGMA telemetry_path='{sink_path}'")
            con.execute("PRAGMA telemetry_interval_ms=250")
            try:
                telemetry_samples = _samples(con)
            finally:
                # Force one synchronous sample: the workload can finish
                # inside the sampler's first 250 ms wait, and the history/
                # sink assertions below need at least one deterministic
                # data point regardless of machine speed.
                con.execute("PRAGMA telemetry_sample")
                con.execute("PRAGMA telemetry_interval_ms=0")
                con.execute("PRAGMA telemetry_path=''")
            telemetry = min(telemetry_samples)
            with open(sink_path, "r", encoding="utf-8") as handle:
                emitted = sum(1 for _ in handle)
        record_timing("telemetry_overhead/telemetry_on", telemetry_samples,
                      rows=ROWS)

        history_rows = con.execute(
            "SELECT count(*) FROM repro_metrics_history()").fetchvalue()
        statements_logged = con.execute(
            "SELECT count(*) FROM repro_statement_log()").fetchvalue()
        overhead = telemetry / baseline - 1.0
        record_experiment(
            "T4", "continuous-telemetry overhead",
            [f"rows: {ROWS}",
             f"telemetry off: {baseline * 1e3:.2f} ms",
             f"telemetry on (250 ms sampler + JSONL sink): "
             f"{telemetry * 1e3:.2f} ms",
             f"history samples retained: {history_rows} rows",
             f"statements accounted: {statements_logged}",
             f"sink records emitted: {emitted}",
             f"relative overhead: {overhead * 100:+.2f}%",
             f"gate: <= {MAX_RELATIVE_OVERHEAD * 100:.0f}%"])
        assert history_rows > 0
        assert statements_logged > 0
        assert emitted > 0
        assert telemetry <= baseline * (1.0 + MAX_RELATIVE_OVERHEAD) \
            + ABSOLUTE_SLACK_S, (
            f"telemetry overhead {overhead * 100:.2f}% exceeds "
            f"{MAX_RELATIVE_OVERHEAD * 100:.0f}% gate "
            f"(off {baseline * 1e3:.2f} ms, on {telemetry * 1e3:.2f} ms)")
    finally:
        con.close()


def test_serving_load_with_telemetry_writes_bench_pr10():
    with tempfile.TemporaryDirectory() as tmp:
        sink_path = os.path.join(tmp, "telemetry.jsonl")
        config = {
            "max_concurrent_queries": WORKERS,
            "telemetry_interval_ms": 250.0,
            "telemetry_path": sink_path,
        }
        with repro.serve(config=config) as server:
            loadgen.prepare_schema(server, rows=2000)
            summary = loadgen.run_load(
                server,
                sessions=SESSIONS,
                statements_per_session=STATEMENTS,
                olap_fraction=0.8,
                workers=WORKERS,
            )
            with server.session("bench-inspect") as session:
                history_rows = session.execute(
                    "SELECT count(*) FROM repro_metrics_history()"
                ).fetchvalue()
                statements_logged = session.execute(
                    "SELECT count(*) FROM repro_statement_log()"
                ).fetchvalue()
        with open(sink_path, "r", encoding="utf-8") as handle:
            emitted = sum(1 for _ in handle)

    assert summary["errors"] == 0, summary["error_samples"]
    assert summary["statements"] == SESSIONS * STATEMENTS
    # The sampler ran through the whole load and the accounting ring saw
    # every recent statement (bounded by its capacity).
    assert history_rows > 0
    assert statements_logged > 0
    assert emitted > 0

    with open(BENCH_PR10_JSON, "w", encoding="utf-8") as handle:
        json.dump({"format": "repro-bench-v1", "serving": summary},
                  handle, indent=2)

    record_timing("serving_load_telemetry", [summary["wall_seconds"]],
                  rows=summary["statements"])
    record_experiment(
        "S2", "serving load with continuous telemetry on",
        [f"sessions: {summary['sessions']} x {STATEMENTS} statements, "
         f"{WORKERS} workers",
         f"p50: {summary['p50_ms']:.3f} ms  p99: {summary['p99_ms']:.3f} ms",
         f"throughput: {summary['statements_per_second']:.0f} stmt/s",
         f"history samples: {history_rows} rows, "
         f"statement log: {statements_logged}, sink lines: {emitted}",
         "compare against BENCH_PR9.json with tools/bench_compare.py"])
