"""Parallel speedup benchmark: morsel-driven aggregation vs single-threaded.

The paper's §2 performance requirement on a multi-core host: with
``PRAGMA threads = 4`` a scan-heavy aggregation should run meaningfully
faster than serial, because each morsel's NumPy kernels release the GIL and
genuinely overlap.  On machines with fewer than 4 cores the speedup cannot
materialize (the workers time-slice one core), so the assertion is gated on
the core count; the equivalence suite in ``tests/test_parallel_execution.py``
still exercises the parallel machinery everywhere.
"""

import os
import time

import numpy as np
import pytest

import repro

from conftest import record_experiment

ROWS = 2_000_000
QUERY = "SELECT g, count(*), sum(v), avg(d) FROM t WHERE v % 3 != 0 GROUP BY g"


def _build(threads):
    con = repro.connect(config={"threads": threads})
    con.execute("CREATE TABLE t (g INTEGER, v INTEGER, d DOUBLE)")
    index = np.arange(ROWS)
    with con.appender("t") as appender:
        appender.append_numpy({
            "g": (index % 31).astype(np.int32),
            "v": index.astype(np.int32),
            "d": (index % 997) / 13.0,
        })
    return con


def _best_of(con, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        con.execute(QUERY).fetchall()
        best = min(best, time.perf_counter() - start)
    return best


def test_parallel_aggregation_speedup():
    cores = os.cpu_count() or 1
    serial_con = _build(1)
    parallel_con = _build(4)
    try:
        serial_rows = sorted(serial_con.execute(QUERY).fetchall())
        parallel_rows = sorted(parallel_con.execute(QUERY).fetchall())
        assert [row[:3] for row in serial_rows] == \
            [row[:3] for row in parallel_rows]
        serial_time = _best_of(serial_con)
        parallel_time = _best_of(parallel_con)
        speedup = serial_time / parallel_time
        record_experiment(
            "P1", "Morsel-driven parallel aggregation (threads=4 vs 1)",
            [f"rows: {ROWS}, cores: {cores}",
             f"serial best: {serial_time * 1000:.1f} ms",
             f"parallel best: {parallel_time * 1000:.1f} ms",
             f"speedup: {speedup:.2f}x"])
        if cores >= 4:
            assert speedup >= 1.5, (
                f"expected >= 1.5x speedup on {cores} cores, got "
                f"{speedup:.2f}x ({serial_time * 1000:.1f} ms -> "
                f"{parallel_time * 1000:.1f} ms)")
        else:
            pytest.skip(f"only {cores} core(s): measured {speedup:.2f}x, "
                        "speedup assertion needs >= 4 cores")
    finally:
        serial_con.close()
        parallel_con.close()
