"""T1 -- Table 1: 30-day OS crash probability.

Paper's Table 1 (from Nightingale et al., EuroSys 2011):

    Failure         Pr[1st failure]   Pr[2nd fail | 1 fail]
    CPU (MCE)       1 in 190          1 in 2.9
    DRAM bit flip   1 in 1700         1 in 12
    Disk failure    1 in 270          1 in 3.5

The fleet simulator draws per-machine failures at those underlying rates;
this bench re-derives the table empirically via Monte-Carlo over a large
simulated fleet, and checks the headline property (failed machines fail
again at ~two orders of magnitude higher probability).
"""

import pytest

from conftest import record_experiment
from repro.resilience import FleetSimulator, TABLE1_RATES

FLEET = 400_000

PAPER_TABLE = {
    "CPU (MCE)": (1 / 190, 1 / 2.9),
    "DRAM bit flip": (1 / 1700, 1 / 12),
    "Disk failure": (1 / 270, 1 / 3.5),
}


def run_fleet():
    return FleetSimulator(TABLE1_RATES, seed=42).run(machines=FLEET, windows=2)


def test_table1_reproduction(benchmark):
    report = benchmark.pedantic(run_fleet, rounds=1, iterations=1)

    lines = [f"{'Failure':<16}{'Pr[1st] paper':>14}{'measured':>12}"
             f"{'Pr[2nd|1] paper':>17}{'measured':>12}"]
    for label, first, again in report.as_table():
        paper_first, paper_again = PAPER_TABLE[label]
        lines.append(
            f"{label:<16}{f'1 in {1 / paper_first:.0f}':>14}"
            f"{f'1 in {1 / first:.0f}' if first else 'n/a':>12}"
            f"{f'1 in {1 / paper_again:.1f}':>17}"
            f"{f'1 in {1 / again:.1f}' if again else 'n/a':>12}"
        )
    lines.append(f"(fleet of {FLEET:,} machines, two 30-day windows, "
                 f"seed 42)")
    record_experiment("T1", "30-day failure probability (paper Table 1)",
                      lines)

    # Shape assertions: measured rates reproduce the paper's table.
    for label, first, again in report.as_table():
        paper_first, paper_again = PAPER_TABLE[label]
        assert first == pytest.approx(paper_first, rel=0.25), label
        assert again == pytest.approx(paper_again, rel=0.45), label


def test_recurrence_is_orders_of_magnitude_higher(benchmark):
    report = benchmark.pedantic(run_fleet, rounds=1, iterations=1)
    ratios = []
    for label, first, again in report.as_table():
        assert again > 10 * first, label
        ratios.append(f"{label}: recurrence / first = {again / first:.0f}x")
    record_experiment(
        "T1b", "'a system that has failed once is very likely to fail again'",
        ratios)
