"""C5 -- §6 claim: block checksums catch silent disk corruption.

"DuckDB computes and stores check sums of all blocks in persistent storage
and verifies this as blocks are read. This protects against bit flips in
the persistent storage which would go unnoticed or cause inconsistencies."

The bench:

* flips single bits at random data offsets of a checkpointed database file
  and counts how often re-opening/scanning detects the corruption
  (must be 100%);
* shows the contrast: with verification disabled, the same corruption is
  served silently;
* measures the read-path cost of verification (checksums on vs off).
"""

import os
import random
import time

import numpy as np
import pytest

from conftest import record_experiment

import repro
from repro.storage.block_file import BLOCK_SIZE

ROWS = 300_000
_HEADERS = 8192


def build(path):
    con = repro.connect(path, {"checkpoint_on_close": False})
    con.execute("CREATE TABLE facts (k INTEGER, v DOUBLE)")
    rng = np.random.default_rng(13)
    with con.appender("facts") as appender:
        appender.append_numpy({
            "k": np.arange(ROWS, dtype=np.int32),
            "v": rng.normal(0, 1, ROWS),
        })
    con.execute("CHECKPOINT")
    con.close()


def live_data_blocks(path):
    """Block ids actually referenced by the current checkpoint."""
    con = repro.connect(path, {"checkpoint_on_close": False})
    try:
        transaction = con.database.transaction_manager.begin()
        blocks = []
        for table in con.database.catalog.tables(transaction):
            for column in table.data.columns:
                for segment in column.persisted_segments:
                    blocks.extend(segment.block_ids)
        con.database.transaction_manager.rollback(transaction)
        return blocks
    finally:
        con.close()


def flip_random_bit(path, rng, blocks):
    """Flip one bit inside the live payload of a random data block."""
    import struct

    block_id = rng.choice(blocks)
    block_start = _HEADERS + block_id * BLOCK_SIZE
    with open(path, "r+b") as handle:
        handle.seek(block_start)
        _, length = struct.unpack("<II", handle.read(8))
        offset = block_start + 8 + rng.randrange(max(length, 1))
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ (1 << rng.randrange(8))]))
    return offset


def scan_all(path, verify):
    con = repro.connect(path, {"verify_checksums": verify,
                               "checkpoint_on_close": False})
    try:
        return con.query_value("SELECT count(*), sum(v) FROM facts"
                               .replace("count(*), ", ""))
    finally:
        con.close()


def test_full_scan_with_checksums(benchmark, tmp_path):
    path = str(tmp_path / "c5.qdb")
    build(path)
    benchmark(scan_all, path, True)


def test_full_scan_without_checksums(benchmark, tmp_path):
    path = str(tmp_path / "c5.qdb")
    build(path)
    benchmark(scan_all, path, False)


def test_c5_report(benchmark, tmp_path):
    base = str(tmp_path / "pristine.qdb")
    build(base)
    pristine = open(base, "rb").read()
    data_blocks = live_data_blocks(base)
    rng = random.Random(99)

    def measure():
        # Verification cost.
        rounds = 5
        with_times, without_times = [], []
        for _ in range(rounds):
            started = time.perf_counter()
            scan_all(base, True)
            with_times.append(time.perf_counter() - started)
            started = time.perf_counter()
            scan_all(base, False)
            without_times.append(time.perf_counter() - started)
        verify_s = sorted(with_times)[rounds // 2]
        raw_s = sorted(without_times)[rounds // 2]

        # Detection rate over independent single-bit corruptions.
        trials = 20
        detected = 0
        silent_served = 0
        for trial in range(trials):
            victim = str(tmp_path / f"victim{trial}.qdb")
            with open(victim, "wb") as handle:
                handle.write(pristine)
            flip_random_bit(victim, rng, data_blocks)
            try:
                scan_all(victim, True)
            except repro.CorruptionError:
                detected += 1
            except repro.Error:
                detected += 1  # structural damage also counts as detected
            # The same file with verification off: corruption flows through.
            try:
                scan_all(victim, False)
                silent_served += 1
            except repro.Error:
                pass  # some flips hit structure and still break parsing
            os.remove(victim)
        return verify_s, raw_s, detected, silent_served, trials

    verify_s, raw_s, detected, silent_served, trials = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    record_experiment("C5", "Block checksum detection of disk bit flips "
                            "(paper §6)", [
        f"database: {ROWS:,} rows checkpointed into 256 KiB blocks",
        f"single-bit flips detected with checksums: {detected}/{trials} "
        "(must be 100%)",
        f"same corruptions served SILENTLY without checksums: "
        f"{silent_served}/{trials}",
        f"full-scan latency, verification on : {verify_s * 1000:7.1f} ms",
        f"full-scan latency, verification off: {raw_s * 1000:7.1f} ms",
        f"verification overhead              : {verify_s / raw_s:7.2f}x",
    ])
    assert detected == trials, "a silent disk flip escaped the checksums"
    assert silent_served > trials // 2, \
        "without checksums most corruption should pass through silently"
    assert verify_s < raw_s * 2.0, "checksum verification must stay cheap"
