"""C3 -- §5/§6 claim: transfer efficiency of the in-process bulk API.

The paper's argument, quantified on this engine:

* **bulk chunk API** -- "the chunk is handed over without requiring
  copying"; the client consumes the engine's internal representation;
* **value-at-a-time API** -- the ODBC/JDBC/SQLite shape; "the function
  call overhead for each value becomes excessive";
* **serializing socket protocol** -- the traditional client-server path:
  real serialization/deserialization CPU plus a modeled 1 Gbit/s wire.

Expected shape: bulk >> value-at-a-time, and the socket path pays both
serialization CPU and wire time on top.
"""

import time

import numpy as np
import pytest

from conftest import record_experiment

import repro
from repro.client.protocol import GIGABIT_PER_SECOND, SocketProtocolClient

ROWS = 500_000
QUERY = "SELECT id, value, score FROM wide"


def build():
    con = repro.connect()
    con.execute("CREATE TABLE wide (id INTEGER, value INTEGER, score DOUBLE)")
    rng = np.random.default_rng(6)
    with con.appender("wide") as appender:
        appender.append_numpy({
            "id": np.arange(ROWS, dtype=np.int32),
            "value": rng.integers(0, 10**6, ROWS).astype(np.int32),
            "score": rng.normal(0, 1, ROWS),
        })
    return con


def fetch_bulk(con):
    """Chunk/NumPy bulk path: zero per-value work."""
    arrays = con.execute(QUERY, stream=True).fetch_numpy()
    return len(arrays["id"])


def fetch_value_at_a_time(con):
    """SQLite-style stepping cursor: one call per value."""
    cursor = con.cursor()
    cursor.execute(QUERY)
    count = 0
    width = None
    while cursor.step():
        if width is None:
            width = cursor.column_count()
        for index in range(width):
            cursor.column_value(index)
        count += 1
    cursor.finalize()
    return count


def fetch_socket(con):
    client = SocketProtocolClient(con, bandwidth=GIGABIT_PER_SECOND)
    rows, stats = client.execute(QUERY)
    return len(rows), stats


def test_bulk_chunk_api(benchmark):
    con = build()
    assert benchmark(fetch_bulk, con) == ROWS
    con.close()


def test_value_at_a_time_api(benchmark):
    con = build()
    assert benchmark.pedantic(fetch_value_at_a_time, args=(con,),
                              rounds=1, iterations=1) == ROWS
    con.close()


def test_socket_protocol(benchmark):
    con = build()
    (count, _stats) = benchmark.pedantic(fetch_socket, args=(con,),
                                         rounds=1, iterations=1)
    assert count == ROWS
    con.close()


def test_c3_report(benchmark):
    con = build()

    def measure():
        started = time.perf_counter()
        fetch_bulk(con)
        bulk = time.perf_counter() - started

        started = time.perf_counter()
        fetch_value_at_a_time(con)
        value = time.perf_counter() - started

        started = time.perf_counter()
        _, stats = fetch_socket(con)
        socket_cpu = time.perf_counter() - started
        return bulk, value, socket_cpu, stats

    bulk, value, socket_cpu, stats = benchmark.pedantic(measure, rounds=1,
                                                        iterations=1)
    socket_total = socket_cpu + stats["simulated_wire_seconds"]
    lines = [
        f"result set: {ROWS:,} rows x 3 columns",
        f"bulk chunk API (in-process)   : {bulk:8.3f} s "
        f"({ROWS / bulk / 1e6:6.2f} M rows/s)",
        f"value-at-a-time API           : {value:8.3f} s "
        f"({ROWS / value / 1e6:6.2f} M rows/s)  "
        f"[{value / bulk:.0f}x slower]",
        f"socket protocol (CPU only)    : {socket_cpu:8.3f} s "
        f"(serialize {stats['serialize_seconds']:.3f}s + "
        f"deserialize {stats['deserialize_seconds']:.3f}s)",
        f"socket protocol + 1Gbit wire  : {socket_total:8.3f} s "
        f"({stats['bytes_transferred']:,} bytes on the wire)  "
        f"[{socket_total / bulk:.0f}x slower]",
    ]
    record_experiment("C3", "Transfer efficiency: bulk vs value-at-a-time vs "
                            "socket (paper §5)", lines)
    # Shape assertions from the paper's argument.
    assert bulk * 5 < value, "bulk API must dominate per-value calls"
    assert bulk * 5 < socket_total, "bulk API must dominate the socket path"
    con.close()
