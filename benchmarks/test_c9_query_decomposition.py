"""C9 -- §5/§7: does nearly-free data export change how queries are written?

The paper: "Improved transfer efficiency can potentially lead to a change in
database workloads. In traditional client-server based database systems it
is infeasible to transport large amounts of data outside of the RDBMS,
requiring the user to write large and complex queries ... A highly
efficient, or even zero-cost, data export allows the user to instead use
multiple simple queries interleaved with application code to achieve the
same result."

The experiment answers the paper's own research question empirically on
this engine.  One task -- "revenue share of each segment's top-decile
customers" -- implemented three ways:

* **monolithic SQL**: one nested query doing everything inside the engine;
* **decomposed, in-process**: three simple queries with NumPy application
  code between them, data moving through the bulk chunk API;
* **decomposed, client-server**: the same decomposition but every transfer
  paying the serializing socket protocol (the traditional architecture).

Expected shape: in-process decomposition costs only a small factor over the
monolith (the export is nearly free -- decomposition is *viable*), while
the socket-based decomposition is crippled by transfer costs (why the
monolithic style dominated client-server analytics).
"""

import time

import numpy as np
import pytest

from conftest import record_experiment

import repro
from repro.client.protocol import SocketProtocolClient

CUSTOMERS = 20_000
SALES = 400_000


def build():
    con = repro.connect()
    rng = np.random.default_rng(23)
    con.execute("CREATE TABLE customers (id INTEGER, segment INTEGER)")
    with con.appender("customers") as appender:
        appender.append_numpy({
            "id": np.arange(CUSTOMERS, dtype=np.int32),
            "segment": rng.integers(0, 8, CUSTOMERS).astype(np.int32),
        })
    con.execute("CREATE TABLE sales (customer_id INTEGER, amount DOUBLE)")
    with con.appender("sales") as appender:
        appender.append_numpy({
            "customer_id": rng.integers(0, CUSTOMERS, SALES).astype(np.int32),
            "amount": rng.exponential(100, SALES),
        })
    return con


MONOLITH = """
    WITH per_customer AS (
        SELECT c.segment, c.id, sum(s.amount) AS revenue
        FROM customers c JOIN sales s ON c.id = s.customer_id
        GROUP BY c.segment, c.id
    ),
    ranked AS (
        SELECT segment, revenue,
               ntile(10) OVER (PARTITION BY segment ORDER BY revenue DESC)
                   AS decile
        FROM per_customer
    )
    SELECT segment,
           sum(CASE WHEN decile = 1 THEN revenue ELSE 0 END) / sum(revenue)
               AS top_share
    FROM ranked
    GROUP BY segment
    ORDER BY segment
"""


def run_monolith(con):
    return {int(segment): share
            for segment, share in con.execute(MONOLITH).fetchall()}


def run_decomposed_in_process(con):
    """Three simple queries + NumPy between them (bulk chunk transfer)."""
    per_customer = con.execute(
        "SELECT c.segment, c.id, sum(s.amount) AS revenue "
        "FROM customers c JOIN sales s ON c.id = s.customer_id "
        "GROUP BY c.segment, c.id", stream=True).fetch_numpy()
    segments = np.asarray(per_customer["segment"])
    revenue = np.asarray(per_customer["revenue"])
    out = {}
    for segment in np.unique(segments):
        seg_revenue = revenue[segments == segment]
        seg_sorted = np.sort(seg_revenue)[::-1]
        # Top decile: same front-loaded split as SQL ntile(10).
        top_count = len(seg_sorted) // 10 + (1 if len(seg_sorted) % 10 else 0)
        out[int(segment)] = float(seg_sorted[:top_count].sum()
                                  / seg_sorted.sum())
    return out


def run_decomposed_socket(con):
    """The same decomposition, but transfers pay the wire protocol."""
    client = SocketProtocolClient(con)
    rows, stats = client.execute(
        "SELECT c.segment, c.id, sum(s.amount) AS revenue "
        "FROM customers c JOIN sales s ON c.id = s.customer_id "
        "GROUP BY c.segment, c.id")
    segments = np.array([row[0] for row in rows])
    revenue = np.array([row[2] for row in rows])
    out = {}
    for segment in np.unique(segments):
        seg_sorted = np.sort(revenue[segments == segment])[::-1]
        top_count = len(seg_sorted) // 10 + (1 if len(seg_sorted) % 10 else 0)
        out[int(segment)] = float(seg_sorted[:top_count].sum()
                                  / seg_sorted.sum())
    return out, stats


def test_monolithic_query(benchmark):
    con = build()
    shares = benchmark(run_monolith, con)
    assert len(shares) == 8
    con.close()


def test_decomposed_in_process(benchmark):
    con = build()
    shares = benchmark(run_decomposed_in_process, con)
    assert len(shares) == 8
    con.close()


def test_c9_report(benchmark):
    con = build()

    def measure():
        run_monolith(con)  # warm
        started = time.perf_counter()
        monolith = run_monolith(con)
        monolith_s = time.perf_counter() - started

        started = time.perf_counter()
        in_process = run_decomposed_in_process(con)
        in_process_s = time.perf_counter() - started

        started = time.perf_counter()
        socket, stats = run_decomposed_socket(con)
        socket_s = time.perf_counter() - started
        socket_s += stats["simulated_wire_seconds"]

        # All three must agree.
        for segment in monolith:
            assert in_process[segment] == pytest.approx(monolith[segment],
                                                        rel=1e-9)
            assert socket[segment] == pytest.approx(monolith[segment],
                                                    rel=1e-9)
        return monolith_s, in_process_s, socket_s

    monolith_s, in_process_s, socket_s = benchmark.pedantic(measure, rounds=1,
                                                            iterations=1)
    record_experiment("C9", "One complex query vs simple queries + app code "
                            "(paper §5/§7 research question)", [
        f"task: top-decile revenue share per segment "
        f"({SALES:,} sales, {CUSTOMERS:,} customers)",
        f"monolithic SQL (1 nested query)         : {monolith_s * 1000:8.1f} ms",
        f"decomposed, in-process bulk transfer    : {in_process_s * 1000:8.1f} ms "
        f"({in_process_s / monolith_s:.2f}x monolith)",
        f"decomposed, socket protocol + 1Gbit wire: {socket_s * 1000:8.1f} ms "
        f"({socket_s / monolith_s:.2f}x monolith)",
        "with in-process export, decomposition is a viable style;",
        "over a classic client protocol it is not -- the paper's point.",
    ])
    # Shape: in-process decomposition within a small factor of the monolith;
    # socket decomposition clearly worse than both.
    assert in_process_s < monolith_s * 3
    assert socket_s > in_process_s * 2
    con.close()
