"""F1 -- Figure 1: reactive resource usage pattern.

The paper's Figure 1 sketches: the application's RAM usage ramps up over
time; the DBMS responds by switching its intermediate compression from
none -> light -> heavy, shrinking its own RAM footprint at the cost of CPU
cycles.  This bench drives exactly that scenario against the real engine
(aggregation queries whose buffered intermediates go through the reactive
controller) and regenerates the figure as a time series.
"""

import numpy as np
import pytest

from conftest import record_experiment

import repro
from repro.cooperation import SimulatedApplication
from repro.storage.compression import CompressionLevel

MB = 1 << 20
TOTAL_RAM = 1024 * MB


class StepClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def build_database():
    con = repro.connect()
    con.execute("CREATE TABLE series (g INTEGER, v DOUBLE)")
    rng = np.random.default_rng(8)
    n = 300_000
    with con.appender("series") as appender:
        appender.append_numpy({
            "g": rng.integers(0, 64, n).astype(np.int32),
            "v": rng.normal(0, 1, n),
        })
    return con


QUERY = "SELECT g, sum(v), count(*) FROM series GROUP BY g"

#: The Figure 1 application RAM ramp: idle -> busy -> spike -> recover.
APP_PHASES = [
    (6.0, 100 * MB, 0.1),
    (6.0, 580 * MB, 0.4),
    (6.0, 900 * MB, 0.8),
    (6.0, 550 * MB, 0.4),
    (6.0, 100 * MB, 0.1),
]


def test_figure1_reactive_compression(benchmark):
    con = build_database()
    clock = StepClock()
    app = SimulatedApplication(APP_PHASES, clock=clock)
    controller = con.database.enable_reactive_resources(TOTAL_RAM, app,
                                                        clock=clock)
    names = {CompressionLevel.NONE: "none",
             CompressionLevel.LIGHT: "light",
             CompressionLevel.HEAVY: "heavy"}

    series = []
    times = []
    import time as time_module

    def run_step(step):
        clock.now = step * 3.0
        started = time_module.perf_counter()
        rows = con.execute(QUERY).fetchall()
        elapsed = time_module.perf_counter() - started
        assert len(rows) == 64
        _, sample, level = controller.decisions[-1]
        series.append((clock.now, sample.app_ram // MB,
                       sample.ram_pressure, names[level], elapsed))

    def run_all():
        series.clear()
        controller.decisions.clear()
        for step in range(10):
            run_step(step)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [f"{'time':>5} {'app RAM':>8} {'pressure':>9} "
             f"{'compression':>12} {'query time':>11}"]
    for timestamp, app_ram, pressure, level, elapsed in series:
        lines.append(f"{timestamp:5.0f} {app_ram:6d}MB {pressure:9.2f} "
                     f"{level:>12} {elapsed * 1000:9.1f}ms")
    record_experiment("F1", "Reactive resource usage pattern (paper Figure 1)",
                      lines)

    # Shape assertions: the staircase of Figure 1.
    levels = [level for _, _, _, level, _ in series]
    assert "none" in levels[:2], "idle phase should not compress"
    assert "heavy" in levels, "the spike must trigger heavy compression"
    assert levels[-1] in ("none", "light"), "pressure release must de-escalate"
    # Escalation order: first heavy occurrence comes after a light one.
    assert levels.index("light") < levels.index("heavy")

    # CPU/RAM trade-off: compressed queries pay extra CPU.
    none_times = [t for _, _, _, lvl, t in series if lvl == "none"]
    heavy_times = [t for _, _, _, lvl, t in series if lvl == "heavy"]
    assert min(heavy_times) > min(none_times), \
        "heavy compression should cost CPU time (the Figure 1 trade-off)"
    con.close()


def test_compression_shrinks_dbms_footprint(benchmark):
    """The RAM half of the trade-off: intermediates get smaller."""
    from repro.execution.intermediates import ChunkBuffer
    from repro.types import DataChunk, INTEGER

    rng = np.random.default_rng(3)
    data = (rng.integers(0, 50, 500_000)).astype(np.int32)
    chunk = DataChunk.from_numpy([data], [INTEGER])

    class Fixed:
        def __init__(self, level):
            self.level = level

        def compression_level(self):
            return self.level

    class Ctx:
        buffer_manager = None

        def __init__(self, level):
            self.controller = Fixed(level)

    sizes = {}

    def measure():
        for level in (CompressionLevel.NONE, CompressionLevel.LIGHT,
                      CompressionLevel.HEAVY):
            buffer = ChunkBuffer([INTEGER], Ctx(level))
            buffer.append(chunk)
            sizes[level] = buffer.memory_bytes()
            buffer.close()

    benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        f"none : {sizes[CompressionLevel.NONE]:>10,} bytes (1.00x)",
        f"light: {sizes[CompressionLevel.LIGHT]:>10,} bytes "
        f"({sizes[CompressionLevel.NONE] / sizes[CompressionLevel.LIGHT]:.2f}x smaller)",
        f"heavy: {sizes[CompressionLevel.HEAVY]:>10,} bytes "
        f"({sizes[CompressionLevel.NONE] / sizes[CompressionLevel.HEAVY]:.2f}x smaller)",
    ]
    record_experiment("F1b", "Intermediate footprint per compression level",
                      lines)
    assert sizes[CompressionLevel.LIGHT] < sizes[CompressionLevel.NONE]
    assert sizes[CompressionLevel.HEAVY] <= sizes[CompressionLevel.LIGHT]
