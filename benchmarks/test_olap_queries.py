"""OLAP workload benchmark: TPC-H-shaped queries (paper §2 workload).

"The queries typically consist of large table scans and involve multiple
aggregates and complex join graphs. The workloads also typically only
target a subset of the columns of a large table."

Three classic query shapes over a synthetic TPC-H-like schema:

* Q1 -- full scan, 8 aggregates, 6 groups (scan + aggregate throughput);
* Q6 -- highly selective multi-predicate scan (filter throughput);
* Q3 -- customer x orders x lineitem join + aggregation + top-N.

These are the headline "is this engine actually an OLAP engine" numbers.
"""

import sys
import time
from pathlib import Path

import pytest

from conftest import record_experiment

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "examples"))

import repro
from analytics_tpch import Q1, Q3, Q6, SCALE_LINEITEM, load


@pytest.fixture(scope="module")
def tpch():
    con = repro.connect()
    load(con)
    yield con
    con.close()


def test_q1_pricing_summary(benchmark, tpch):
    rows = benchmark(lambda: tpch.execute(Q1).fetchall())
    assert len(rows) == 6


def test_q6_forecast_revenue(benchmark, tpch):
    value = benchmark(lambda: tpch.execute(Q6).fetchvalue())
    assert value > 0


def test_q3_shipping_priority(benchmark, tpch):
    rows = benchmark(lambda: tpch.execute(Q3).fetchall())
    assert len(rows) == 10
    revenues = [row[1] for row in rows]
    assert revenues == sorted(revenues, reverse=True)


QW = """
    SELECT c_mktsegment, o_orderdate, revenue,
           rank() OVER (PARTITION BY c_mktsegment ORDER BY revenue DESC) AS r
    FROM (
        SELECT c_mktsegment, o_orderdate,
               sum(l_extendedprice * (1 - l_discount)) AS revenue
        FROM customer
        JOIN orders ON c_custkey = o_custkey
        JOIN lineitem ON l_orderkey = o_orderkey
        GROUP BY c_mktsegment, o_orderdate
    ) daily
    ORDER BY c_mktsegment, r
    LIMIT 20
"""


def test_qw_windowed_ranking(benchmark, tpch):
    rows = benchmark(lambda: tpch.execute(QW).fetchall())
    assert len(rows) == 20
    assert rows[0][3] == 1


def test_olap_report(benchmark, tpch):
    def measure():
        timings = []
        for name, sql in (("Q1 (scan+8 aggs)", Q1),
                          ("Q6 (selective scan)", Q6),
                          ("Q3 (3-way join+topN)", Q3),
                          ("QW (join+window rank)", QW)):
            tpch.execute(sql).fetchall()  # warm
            samples = []
            for _ in range(5):
                started = time.perf_counter()
                tpch.execute(sql).fetchall()
                samples.append(time.perf_counter() - started)
            timings.append((name, sorted(samples)[2]))
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [f"lineitem: {SCALE_LINEITEM:,} rows (scaled-down TPC-H shape)"]
    for name, seconds in timings:
        lines.append(f"{name:<22}: {seconds * 1000:8.1f} ms "
                     f"({SCALE_LINEITEM / seconds / 1e6:5.1f} M lineitem "
                     f"rows/s)")
    record_experiment("OLAP", "TPC-H-shaped analytical queries (paper §2 "
                              "workload)", lines)
    for name, seconds in timings:
        assert seconds < 2.0, f"{name} should run in interactive time"
