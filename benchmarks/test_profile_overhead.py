"""Sampling-profiler overhead gate: < 3% on a real aggregation workload.

The profiler's pitch (ISSUE 5) is that it can stay on in production: a
background thread walking stacks at ~97 Hz must not meaningfully slow the
engine, because the engine itself runs unmodified -- no per-operator
instrumentation, no hot-path branches.  This benchmark holds that pitch to
a number: the same scan/aggregate workload as the tracer gate, best of
several repeats, profiler on vs profiler off, gated at 3% relative
overhead plus a small absolute slack for scheduler jitter.
"""

import time

import numpy as np

import repro

from conftest import record_experiment, record_timing

ROWS = 2_000_000
REPEATS = 7
QUERY = "SELECT g, count(*), sum(v) FROM t WHERE v % 7 != 0 GROUP BY g"
#: Relative gate from the issue, plus absolute slack for timer jitter.
MAX_RELATIVE_OVERHEAD = 0.03
ABSOLUTE_SLACK_S = 0.005


def _build():
    con = repro.connect(config={"threads": 1})
    con.execute("CREATE TABLE t (g INTEGER, v INTEGER)")
    index = np.arange(ROWS)
    with con.appender("t") as appender:
        appender.append_numpy({
            "g": (index % 29).astype(np.int32),
            "v": index.astype(np.int32),
        })
    return con


def _samples(con):
    samples = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        con.execute(QUERY).fetchall()
        samples.append(time.perf_counter() - start)
    return samples


def test_profiler_overhead_under_three_percent():
    con = _build()
    try:
        baseline_samples = _samples(con)
        baseline = min(baseline_samples)
        record_timing("profile_overhead/baseline", baseline_samples,
                      rows=ROWS)

        con.execute("PRAGMA enable_profiling")
        try:
            profiled_samples = _samples(con)
        finally:
            con.execute("PRAGMA disable_profiling")
        profiled = min(profiled_samples)
        record_timing("profile_overhead/profiled", profiled_samples,
                      rows=ROWS)

        samples = con.execute(
            "SELECT coalesce(sum(samples), 0) FROM repro_profile()"
        ).fetchvalue()
        overhead = profiled / baseline - 1.0
        record_experiment(
            "T3", "sampling-profiler overhead",
            [f"rows: {ROWS}",
             f"profiler off: {baseline * 1e3:.2f} ms",
             f"profiler on (~97 Hz): {profiled * 1e3:.2f} ms",
             f"stack samples attributed: {samples}",
             f"relative overhead: {overhead * 100:+.2f}%",
             f"gate: <= {MAX_RELATIVE_OVERHEAD * 100:.0f}%"])
        assert profiled <= baseline * (1.0 + MAX_RELATIVE_OVERHEAD) \
            + ABSOLUTE_SLACK_S, (
            f"profiler overhead {overhead * 100:.2f}% exceeds "
            f"{MAX_RELATIVE_OVERHEAD * 100:.0f}% gate "
            f"(off {baseline * 1e3:.2f} ms, on {profiled * 1e3:.2f} ms)")
    finally:
        con.close()
