"""C8 -- §3/§6 claim: moving-inversions memtests find broken memory; the
buffer manager avoids it.

"An obvious approach to test its correct operation is to write a known
pattern into RAM and read it back. This is not enough, however, because
intermittent and data-dependent errors are missed." ... "we plan to
integrate memory tests into the buffer manager, which will test all
buffers on allocation to detect existing errors and periodically to detect
new errors."

Measured:

* detection rate of stuck-at and coupling faults for the naive pattern
  test vs moving inversions (the coupling faults are what the naive test
  misses, per the paper);
* memtest throughput (the "significant traffic on the memory bus" cost
  that motivates testing only buffers, not all of RAM);
* buffer-manager integration: allocations on a faulty arena avoid the
  quarantined region, and the allocation-time overhead of testing.
"""

import time

import numpy as np
import pytest

from conftest import record_experiment

from repro.config import DatabaseConfig
from repro.resilience import FaultyMemory, PlainMemory
from repro.resilience.memtest import moving_inversions, quick_pattern_test
from repro.storage.buffer_manager import BufferManager

REGION = 64 * 1024


def test_moving_inversions_throughput(benchmark):
    memory = PlainMemory(REGION)
    report = benchmark(moving_inversions, memory, 0, REGION)
    assert report.passed


def test_quick_pattern_throughput(benchmark):
    memory = PlainMemory(REGION)
    report = benchmark(quick_pattern_test, memory, 0, REGION)
    assert report.passed


def test_c8_detection_report(benchmark):
    def measure():
        rng = np.random.default_rng(16)
        trials = 30
        quick_stuck = full_stuck = 0
        quick_coupling = full_coupling = 0
        for trial in range(trials):
            # Stuck-at fault somewhere in the region.
            memory = FaultyMemory(REGION, seed=trial)
            memory.inject_stuck_bit(int(rng.integers(0, REGION)),
                                    int(rng.integers(0, 8)),
                                    int(rng.integers(0, 2)))
            if not quick_pattern_test(memory, 0, REGION).passed:
                quick_stuck += 1
            if not moving_inversions(memory, 0, REGION).passed:
                full_stuck += 1

            # Coupling fault with the victim *after* the aggressor: the
            # kind a single-pass pattern test overwrites and misses.
            memory = FaultyMemory(REGION, seed=1000 + trial)
            aggressor = int(rng.integers(0, REGION - 512))
            victim = aggressor + int(rng.integers(128, 512))
            memory.inject_coupling_fault(aggressor, victim,
                                         int(rng.integers(0, 8)))
            if not quick_pattern_test(memory, 0, REGION).passed:
                quick_coupling += 1
            if not moving_inversions(memory, 0, REGION).passed:
                full_coupling += 1
        return trials, quick_stuck, full_stuck, quick_coupling, full_coupling

    trials, quick_stuck, full_stuck, quick_coupling, full_coupling = \
        benchmark.pedantic(measure, rounds=1, iterations=1)

    # Throughput of the two tests (the bus-traffic cost).
    memory = PlainMemory(REGION)
    started = time.perf_counter()
    moving_inversions(memory, 0, REGION)
    inversions_s = time.perf_counter() - started
    started = time.perf_counter()
    quick_pattern_test(memory, 0, REGION)
    quick_s = time.perf_counter() - started

    record_experiment("C8", "Memory test detection: moving inversions vs "
                            "naive pattern test (paper §3)", [
        f"region: {REGION // 1024} KiB, {trials} trials per fault class",
        f"{'fault class':<22}{'naive pattern':>14}{'moving inversions':>19}",
        f"{'stuck-at bits':<22}{quick_stuck:>10}/{trials}"
        f"{full_stuck:>15}/{trials}",
        f"{'coupling (disturb)':<22}{quick_coupling:>10}/{trials}"
        f"{full_coupling:>15}/{trials}",
        f"cost: moving inversions {REGION / 1024 / 1024 / inversions_s:.0f} "
        f"MiB/s vs naive {REGION / 1024 / 1024 / quick_s:.0f} MiB/s "
        f"({inversions_s / quick_s:.1f}x more bus traffic)",
    ])
    # Shape: both catch stuck-at faults; ONLY moving inversions catches the
    # data-dependent coupling faults (the paper's argument for it).
    assert full_stuck == trials
    assert quick_stuck == trials
    assert full_coupling == trials
    assert quick_coupling < trials // 3
    assert inversions_s > quick_s


def test_c8_buffer_manager_avoidance(benchmark):
    """Allocation-time testing quarantines broken regions transparently."""
    def scenario():
        arena = FaultyMemory(1 << 21, seed=5)
        arena.inject_stuck_region(256 * 1024, 16 * 1024, faults_per_kib=8)
        manager = BufferManager(DatabaseConfig(buffer_memtest=True),
                                arena=arena)
        buffers = [manager.allocate_buffer(64 * 1024) for _ in range(12)]
        overlaps = 0
        for buffer in buffers:
            for bad_start, bad_end in manager.quarantined:
                if buffer.arena_offset < bad_end and \
                        bad_start < buffer.arena_offset + buffer.size:
                    overlaps += 1
        return len(manager.quarantined), overlaps, len(buffers)

    quarantined, overlaps, allocated = benchmark.pedantic(scenario, rounds=1,
                                                          iterations=1)
    # Allocation overhead: memtested vs raw allocation.
    plain = BufferManager(DatabaseConfig(buffer_memtest=False))
    started = time.perf_counter()
    for _ in range(12):
        plain.allocate_buffer(64 * 1024)
    raw_s = time.perf_counter() - started
    tested = BufferManager(DatabaseConfig(buffer_memtest=True))
    started = time.perf_counter()
    for _ in range(12):
        tested.allocate_buffer(64 * 1024)
    tested_s = time.perf_counter() - started

    record_experiment("C8b", "Buffer-manager memtest integration (paper §6)", [
        f"simulated broken DIMM region: 16 KiB of stuck bits",
        f"buffers allocated: {allocated}; quarantined ranges: {quarantined}; "
        f"allocations overlapping bad memory: {overlaps} (must be 0)",
        f"allocation cost: raw {raw_s * 1000:.2f} ms vs memtested "
        f"{tested_s * 1000:.2f} ms for 12 x 64 KiB",
    ])
    assert overlaps == 0
    assert quarantined >= 1
