"""C1 -- §2 claim: ETL bulk updates need bulk granularity, and unchanged
columns must not be rewritten.

The paper's canonical ETL statement::

    UPDATE t SET d = NULL WHERE d = -999

touches a large fraction of ONE column.  This bench measures:

* the engine's bulk update against a simulated OLTP-style row-at-a-time
  update loop (the "wrong architecture" baseline);
* checkpoint IO after a single-column update on a wide table: only the
  touched column's segments may be rewritten (§2: "the unchanged columns
  should not be rewritten in any way").
"""

import time

import numpy as np
import pytest

from conftest import record_experiment

import repro

ROWS = 200_000
SENTINEL_FRACTION = 0.3
ROW_SAMPLE = 500


def build(path=None):
    con = repro.connect(path or ":memory:")
    con.execute("CREATE TABLE t (a INTEGER, b INTEGER, c INTEGER, d INTEGER)")
    rng = np.random.default_rng(1)
    values = rng.integers(0, 1000, ROWS).astype(np.int32)
    sentinel_mask = rng.random(ROWS) < SENTINEL_FRACTION
    values[sentinel_mask] = -999
    with con.appender("t") as appender:
        appender.append_numpy({
            "a": np.arange(ROWS, dtype=np.int32),
            "b": rng.integers(0, 100, ROWS).astype(np.int32),
            "c": rng.integers(0, 100, ROWS).astype(np.int32),
            "d": values,
        })
    return con, int(sentinel_mask.sum())


def test_bulk_vs_row_at_a_time(benchmark):
    con, sentinels = build()

    def bulk_update():
        con.execute("BEGIN")
        count = con.execute("UPDATE t SET d = NULL WHERE d = -999").rowcount
        con.execute("ROLLBACK")  # every round starts from the same state
        return count

    count = benchmark(bulk_update)
    assert count == sentinels

    # One timed pass of each for the report.
    started = time.perf_counter()
    bulk_update()
    bulk_seconds = time.perf_counter() - started

    started = time.perf_counter()
    con.execute("BEGIN")
    for row_id in range(ROW_SAMPLE):
        con.execute("UPDATE t SET d = NULL WHERE a = ? AND d = -999", [row_id])
    con.execute("ROLLBACK")
    row_seconds = (time.perf_counter() - started) * (ROWS / ROW_SAMPLE)

    speedup = row_seconds / bulk_seconds
    record_experiment("C1", "Bulk vs row-at-a-time sentinel UPDATE (paper §2)", [
        f"table: {ROWS:,} rows, {sentinels:,} sentinel values "
        f"({SENTINEL_FRACTION:.0%} of column d)",
        f"bulk UPDATE .. WHERE d = -999 : {bulk_seconds * 1000:9.1f} ms",
        f"row-at-a-time (extrapolated)  : {row_seconds * 1000:9.1f} ms",
        f"bulk speedup                  : {speedup:9.0f}x",
    ])
    assert speedup > 20, "bulk updates must dominate the OLTP pattern"
    con.close()


def test_column_granular_checkpoint(benchmark, tmp_path):
    """§2: updating one column must not rewrite its three siblings."""
    path = str(tmp_path / "wide.qdb")
    con, _ = build(path=path)
    con.execute("CHECKPOINT")
    full = dict(con.database.storage.last_checkpoint_stats)

    def update_and_checkpoint():
        con.execute("UPDATE t SET d = NULL WHERE d = -999")
        con.execute("CHECKPOINT")
        return dict(con.database.storage.last_checkpoint_stats)

    incremental = benchmark.pedantic(update_and_checkpoint, rounds=1,
                                     iterations=1)
    total_segments = incremental["segments_written"] + \
        incremental["segments_reused"]
    record_experiment("C1b", "Column-granular checkpoint rewrite (paper §2)", [
        f"initial checkpoint: {full['segments_written']} segments, "
        f"{full['bytes_written']:,} bytes",
        f"after 1-column bulk update: "
        f"{incremental['segments_written']} of {total_segments} segments "
        f"rewritten ({incremental['bytes_written']:,} bytes)",
        "columns a, b, c reused their existing blocks",
    ])
    # 4 columns x 4 segments each (200k rows / 65536): only column d's
    # segments may be rewritten.
    assert incremental["segments_written"] == total_segments // 4
    assert incremental["segments_reused"] == 3 * (total_segments // 4)
    con.close()
