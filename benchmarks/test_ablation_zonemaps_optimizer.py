"""Ablation benches for the design choices DESIGN.md calls out.

Four ablations, each toggling one mechanism on an otherwise identical
query, quantifying what the design element buys:

* **zonemaps** (paper §6 "skip irrelevant blocks of rows") -- range query on
  a clustered column with and without zone skipping;
* **filter pushdown + column pruning** -- the same query executed from the
  raw bound plan vs the optimized plan;
* **scan chunk size** -- the per-chunk interpretation overhead argument
  behind vectorized execution, swept across chunk sizes;
* **statistics-driven join order** -- a star join written worst-side-first,
  planned with column statistics vs the syntactic (heuristic) order.
"""

import time

import numpy as np
import pytest

from conftest import record_experiment, record_timing

import repro
from repro.execution.physical import ExecutionContext
from repro.execution.physical_planner import create_physical_plan
from repro.optimizer import cost, optimize
from repro.planner.binder import Binder
from repro.sql import parse_one

ROWS = 1_000_000


def build():
    con = repro.connect()
    con.execute("CREATE TABLE facts (t INTEGER, a INTEGER, b INTEGER, "
                "c INTEGER, v DOUBLE)")
    rng = np.random.default_rng(21)
    with con.appender("facts") as appender:
        appender.append_numpy({
            "t": np.arange(ROWS, dtype=np.int32),   # clustered
            "a": rng.integers(0, 100, ROWS).astype(np.int32),
            "b": rng.integers(0, 100, ROWS).astype(np.int32),
            "c": rng.integers(0, 100, ROWS).astype(np.int32),
            "v": rng.normal(0, 1, ROWS),
        })
    return con


def execute_plan(con, sql, optimized=True):
    transaction = con.database.transaction_manager.begin()
    try:
        binder = Binder(con.database.catalog, transaction)
        bound = binder.bind_statement(parse_one(sql))
        plan = optimize(bound.plan) if optimized else bound.plan
        context = ExecutionContext(transaction, con.database)
        physical = create_physical_plan(plan, context)
        started = time.perf_counter()
        rows = [row for chunk in physical.execute()
                for row in chunk.to_rows()]
        elapsed = time.perf_counter() - started
        return rows, elapsed, context.stats
    finally:
        con.database.transaction_manager.rollback(transaction)


RANGE_SQL = "SELECT count(*), sum(v) FROM facts WHERE t >= 900000 AND t < 910000"


def test_zonemap_ablation(benchmark):
    con = build()

    def measure():
        execute_plan(con, RANGE_SQL)  # warm zone cache
        with_rows, with_s, with_stats = execute_plan(con, RANGE_SQL)
        # Ablate: monkeypatch zone_bounds to pretend zonemaps don't exist.
        from repro.storage.table_data import ColumnData

        original = ColumnData.zone_bounds
        ColumnData.zone_bounds = lambda self, start, end: None
        try:
            without_rows, without_s, without_stats = execute_plan(con,
                                                                  RANGE_SQL)
        finally:
            ColumnData.zone_bounds = original
        assert with_rows == without_rows
        return with_s, with_stats, without_s, without_stats

    with_s, with_stats, without_s, without_stats = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    record_experiment("A1", "Ablation: zonemap scan skipping (paper §6)", [
        f"range query selecting 10k of {ROWS:,} clustered rows",
        f"with zonemaps   : {with_s * 1000:7.2f} ms, "
        f"{with_stats['rows_scanned']:,} rows fetched, "
        f"{with_stats.get('zones_skipped', 0)} zones skipped",
        f"without zonemaps: {without_s * 1000:7.2f} ms, "
        f"{without_stats['rows_scanned']:,} rows fetched",
        f"speedup         : {without_s / with_s:7.1f}x",
    ])
    assert with_stats["rows_scanned"] < without_stats["rows_scanned"] / 10
    assert with_s < without_s
    con.close()


def test_optimizer_ablation(benchmark):
    con = build()
    sql = ("SELECT sum(v) FROM (SELECT t, v, a FROM facts) sub "
           "WHERE a < 10 AND t < 500000")

    def measure():
        execute_plan(con, sql)  # warm
        opt_rows, opt_s, opt_stats = execute_plan(con, sql, optimized=True)
        raw_rows, raw_s, raw_stats = execute_plan(con, sql, optimized=False)
        assert opt_rows == raw_rows
        return opt_s, raw_s, opt_stats, raw_stats

    opt_s, raw_s, opt_stats, raw_stats = benchmark.pedantic(measure, rounds=1,
                                                            iterations=1)
    record_experiment("A2", "Ablation: filter pushdown + column pruning", [
        f"query: filtered aggregation through a subquery, {ROWS:,} rows",
        f"optimized plan  : {opt_s * 1000:7.2f} ms "
        f"({opt_stats['rows_scanned']:,} rows through the scan)",
        f"unoptimized plan: {raw_s * 1000:7.2f} ms "
        f"({raw_stats['rows_scanned']:,} rows through the scan)",
        f"speedup         : {raw_s / opt_s:7.1f}x",
    ])
    assert opt_s < raw_s
    con.close()


def test_statistics_join_order_ablation(benchmark):
    """Stats-driven join reordering vs the heuristic (syntactic) order.

    The query joins ``dim_a JOIN facts`` first, so the syntactic plan
    builds a 1M-row hash table (the build side is the right join input)
    and probes it with a 100-row dimension.  With statistics the
    optimizer starts from the smallest dimension and keeps the fact
    table on the probe side throughout.
    """
    con = build()
    con.execute("CREATE TABLE dim_a (a_id INTEGER, a_name VARCHAR)")
    con.execute("CREATE TABLE dim_b (b_id INTEGER, b_name VARCHAR)")
    with con.appender("dim_a") as appender:
        appender.append_numpy({
            "a_id": np.arange(100, dtype=np.int32),
            "a_name": np.array([f"a-{i}" for i in range(100)], dtype=object),
        })
    with con.appender("dim_b") as appender:
        appender.append_numpy({
            "b_id": np.arange(100, dtype=np.int32),
            "b_name": np.array([f"b-{i}" for i in range(100)], dtype=object),
        })
    sql = ("SELECT count(*), sum(f.v) FROM dim_a "
           "JOIN facts f ON f.a = dim_a.a_id "
           "JOIN dim_b ON f.b = dim_b.b_id "
           "WHERE dim_a.a_id < 10 AND dim_b.b_id < 10")

    def measure():
        execute_plan(con, sql)  # warm
        stats_rows, stats_s, stats_ctx = execute_plan(con, sql)
        previous = cost.set_statistics_enabled(False)
        try:
            heur_rows, heur_s, heur_ctx = execute_plan(con, sql)
        finally:
            cost.set_statistics_enabled(previous)
        # Join order changes float summation order; compare with tolerance.
        assert stats_rows[0][0] == heur_rows[0][0]
        assert stats_rows[0][1] == pytest.approx(heur_rows[0][1])
        return stats_s, stats_ctx, heur_s, heur_ctx

    stats_s, stats_ctx, heur_s, heur_ctx = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    record_experiment("A4", "Ablation: statistics-driven join ordering", [
        f"3-table star join, fact table ({ROWS:,} rows) written as a "
        f"build side",
        f"stats-driven order: {stats_s * 1000:7.2f} ms, "
        f"{stats_ctx.get('join_build_rows', 0):,} hash-build rows",
        f"heuristic order   : {heur_s * 1000:7.2f} ms, "
        f"{heur_ctx.get('join_build_rows', 0):,} hash-build rows",
        f"speedup           : {heur_s / stats_s:7.1f}x",
    ])
    record_timing("ablation/join_order_stats", [stats_s], rows=ROWS)
    record_timing("ablation/join_order_heuristic", [heur_s], rows=ROWS)
    # The stats-driven plan must never build on the fact table, so its
    # hash-build input is orders of magnitude smaller -- and faster.
    assert stats_ctx.get("join_build_rows", 0) < \
        heur_ctx.get("join_build_rows", 0) / 100
    assert stats_s < heur_s
    con.close()


def test_chunk_size_sweep(benchmark):
    con = build()
    transaction = con.database.transaction_manager.begin()
    table = con.database.catalog.get_table("facts", transaction)
    con.database.transaction_manager.rollback(transaction)

    def measure():
        results = []
        for chunk_rows in (512, 2048, 16384, 131072):
            transaction = con.database.transaction_manager.begin()
            started = time.perf_counter()
            total = 0
            for chunk in table.data.scan(transaction, [4],
                                         chunk_size=chunk_rows):
                total += float(chunk.columns[0].data.sum())
            elapsed = time.perf_counter() - started
            con.database.transaction_manager.rollback(transaction)
            results.append((chunk_rows, elapsed))
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    base = results[0][1]
    lines = [f"summing one DOUBLE column of {ROWS:,} rows",
             f"{'chunk rows':>11} {'time':>9} {'vs 512':>8}"]
    for chunk_rows, elapsed in results:
        lines.append(f"{chunk_rows:>11,} {elapsed * 1000:7.1f}ms "
                     f"{base / elapsed:7.1f}x")
    record_experiment("A3", "Ablation: scan chunk size (vectorization "
                            "amortization, paper §2)", lines)
    # Bigger chunks amortize per-chunk interpretation overhead.
    assert results[-1][1] < results[0][1]
    con.close()
