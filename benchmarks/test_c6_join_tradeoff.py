"""C6 -- §6 claim: hash join trades RAM for CPU vs the out-of-core merge join.

"The hash join uses a large amount of main memory to store the hash table,
but few CPU cycles to compute the actual join result because of its lower
complexity class. The merge join requires fewer main memory resources to
run, but O(n log n) CPU cycles as well as disk IO."

The bench joins a fact table against build sides of growing size with both
algorithms, recording wall time and the engine's tracked peak memory, then
shows the reactive controller picking merge join when the machine is under
memory pressure.
"""

import time

import numpy as np
import pytest

from conftest import record_experiment

import repro
from repro.storage.compression import CompressionLevel

PROBE_ROWS = 200_000
JOIN_SQL = "SELECT count(*), sum(b.payload) FROM probe p JOIN build b ON p.k = b.k"

MB = 1 << 20


class ForcedAlgorithm:
    """Controller stub that pins the join algorithm."""

    def __init__(self, algorithm):
        self.algorithm = algorithm

    def compression_level(self):
        return CompressionLevel.NONE

    def choose_join_algorithm(self, estimate):
        return self.algorithm


def build_tables(build_rows, config=None):
    con = repro.connect(config=config)
    rng = np.random.default_rng(14)
    con.execute("CREATE TABLE probe (k INTEGER)")
    con.execute("CREATE TABLE build (k INTEGER, payload INTEGER)")
    with con.appender("probe") as appender:
        appender.append_numpy({
            "k": rng.integers(0, build_rows, PROBE_ROWS).astype(np.int32)})
    with con.appender("build") as appender:
        appender.append_numpy({
            "k": np.arange(build_rows, dtype=np.int32),
            "payload": rng.integers(0, 100, build_rows).astype(np.int32),
        })
    return con


def run_join(con, algorithm):
    con.database.resource_controller = ForcedAlgorithm(algorithm)
    manager = con.database.buffer_manager
    manager._peak = manager._used  # reset peak tracking for this query
    started = time.perf_counter()
    row = con.execute(JOIN_SQL).fetchone()
    elapsed = time.perf_counter() - started
    peak = manager.peak_bytes
    con.database.disable_reactive_resources()
    return row, elapsed, peak


def test_hash_join(benchmark):
    con = build_tables(100_000)
    con.database.resource_controller = ForcedAlgorithm("hash")
    benchmark(lambda: con.execute(JOIN_SQL).fetchone())
    con.close()


def test_merge_join(benchmark):
    con = build_tables(100_000)
    con.database.resource_controller = ForcedAlgorithm("merge")
    benchmark(lambda: con.execute(JOIN_SQL).fetchone())
    con.close()


def test_c6_report(benchmark):
    def sweep():
        rows = []
        for build_rows in (10_000, 100_000, 400_000):
            # Hash join: unconstrained memory (it materializes the build).
            con = build_tables(build_rows)
            run_join(con, "hash")  # warm-up (plan caches, allocator)
            hash_result, hash_s, hash_peak = run_join(con, "hash")
            con.close()
            # Merge join: a tight memory limit forces the out-of-core path
            # (sort runs spill to disk); it must still finish, with its
            # resident working set bounded by the limit.
            con = build_tables(build_rows, config={"memory_limit": 2 * MB})
            merge_result, merge_s, merge_peak = run_join(con, "merge")
            con.close()
            assert hash_result == merge_result, "algorithms must agree"
            rows.append((build_rows, hash_s, hash_peak, merge_s, merge_peak))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"{'build rows':>11} {'hash time':>10} {'hash peakRAM':>13} "
             f"{'merge time':>11} {'merge peakRAM':>14}",
             f"{'':>11} {'(unlimited RAM)':>24} "
             f"{'(2 MiB memory_limit, spills to disk)':>40}"]
    for build_rows, hash_s, hash_peak, merge_s, merge_peak in rows:
        lines.append(f"{build_rows:>11,} {hash_s * 1000:8.1f}ms "
                     f"{hash_peak / MB:11.2f}MB {merge_s * 1000:9.1f}ms "
                     f"{merge_peak / MB:12.2f}MB")
    record_experiment("C6", "Hash join (RAM-hungry, fast) vs out-of-core "
                            "merge join (paper §6)", lines)

    # Shape: hash join wins CPU-wise once the build side is sizable (at tiny
    # builds the merge's single big sort can compete with per-chunk probe
    # overhead); its memory grows with the build side, while the merge
    # join's resident working set stays bounded by the memory limit.
    for build_rows, hash_s, hash_peak, merge_s, merge_peak in rows:
        if build_rows >= 100_000:
            assert hash_s < merge_s, f"hash should win at {build_rows}"
        assert merge_peak <= 2 * MB * 1.25, \
            "merge join must respect the memory limit"
    assert rows[-1][2] > rows[0][2] * 2, \
        "hash join memory must scale with the build side"
    assert rows[-1][2] > rows[-1][4], \
        "at the largest build, hash must need more RAM than bounded merge"


def test_reactive_controller_switches_to_merge(benchmark):
    """The adaptive story: under external memory pressure the planner picks
    the merge join without being told."""
    from repro.cooperation import SimulatedApplication

    con = build_tables(400_000)

    class StepClock:
        now = 0.0

        def __call__(self):
            return self.now

    clock = StepClock()
    app = SimulatedApplication([(100.0, 100 * MB, 0.1),
                                (100.0, 1015 * MB, 0.9)], clock=clock)
    con.database.enable_reactive_resources(1024 * MB, app, clock=clock)

    def run_both_phases():
        results = {}
        for label, when in (("idle", 0.0), ("pressure", 150.0)):
            clock.now = when
            from repro.execution.physical import ExecutionContext

            transaction = con.database.transaction_manager.begin()
            try:
                from repro.planner.binder import Binder
                from repro.optimizer import optimize
                from repro.execution.physical_planner import create_physical_plan
                from repro.sql import parse_one

                binder = Binder(con.database.catalog, transaction)
                bound = binder.bind_statement(parse_one(JOIN_SQL))
                plan = optimize(bound.plan)
                context = ExecutionContext(transaction, con.database)
                physical = create_physical_plan(plan, context)
                results[label] = physical.explain()
            finally:
                con.database.transaction_manager.rollback(transaction)
        return results

    plans = benchmark.pedantic(run_both_phases, rounds=1, iterations=1)
    record_experiment("C6b", "Reactive join algorithm choice under pressure", [
        "idle machine    : " + ("HASH_JOIN" if "HASH_JOIN" in plans["idle"]
                                else "MERGE_JOIN"),
        "RAM pressure 0.9: " + ("MERGE_JOIN"
                                if "MERGE_JOIN" in plans["pressure"]
                                else "HASH_JOIN"),
    ])
    assert "HASH_JOIN" in plans["idle"]
    assert "MERGE_JOIN" in plans["pressure"]
    con.database.disable_reactive_resources()
    con.close()
