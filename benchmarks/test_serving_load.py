"""PR9 serving benchmark: 1000 concurrent mixed OLAP/ETL sessions.

The §2 dashboard deployment at serving scale: a thousand short client
sessions multiplexed onto one embedded database through the query server.
Each session issues a handful of statements drawn from a small repeated
template set -- exactly the workload the plan cache exists for -- while an
ETL fraction keeps advancing the data version so result-cache invalidation
stays honest.

Acceptance gates checked here (the committed ``BENCH_PR9.json`` is the
artifact):

* >= 1000 sessions complete, zero errors;
* warm plan-cache hit rate > 90% on the repeated-query workload;
* p50/p99 statement latency recorded in BENCH_PR9.json.
"""

import json
import os

from conftest import record_experiment, record_timing

import repro
from repro.server import loadgen

SESSIONS = int(os.environ.get("REPRO_LOADGEN_SESSIONS", "1000"))
WORKERS = int(os.environ.get("REPRO_LOADGEN_WORKERS", "8"))
STATEMENTS = int(os.environ.get("REPRO_LOADGEN_STATEMENTS", "4"))

BENCH_PR9_JSON = os.environ.get(
    "REPRO_BENCH_PR9_JSON",
    os.path.join(os.path.dirname(__file__), "..", "BENCH_PR9.json"))


def test_serving_load_1000_sessions():
    with repro.serve(config={"max_concurrent_queries": WORKERS}) as server:
        loadgen.prepare_schema(server, rows=2000)
        summary = loadgen.run_load(
            server,
            sessions=SESSIONS,
            statements_per_session=STATEMENTS,
            olap_fraction=0.8,
            workers=WORKERS,
        )

    registry = summary["session_registry"]
    assert registry["opened"] >= SESSIONS
    assert registry["closed"] == registry["opened"]
    assert summary["errors"] == 0, summary["error_samples"]
    assert summary["statements"] == SESSIONS * STATEMENTS
    # The warm plan cache must absorb the repeated template set: a handful
    # of misses (one per SQL/type-signature pair) against thousands of hits.
    assert summary["plan_cache_hit_rate"] > 0.90, summary["plan_cache"]

    with open(BENCH_PR9_JSON, "w", encoding="utf-8") as handle:
        json.dump({"format": "repro-bench-v1", "serving": summary},
                  handle, indent=2)

    record_timing("serving_load", [summary["wall_seconds"]],
                  rows=summary["statements"])
    record_experiment("PR9", "Concurrent serving load (1000 sessions)", [
        f"sessions={summary['sessions']} workers={summary['workers']} "
        f"statements={summary['statements']} errors={summary['errors']}",
        f"p50={summary['p50_ms']:.3f}ms p99={summary['p99_ms']:.3f}ms "
        f"max={summary['max_ms']:.3f}ms",
        f"throughput={summary['statements_per_second']:.0f} stmt/s "
        f"wall={summary['wall_seconds']:.2f}s",
        f"plan_cache hit_rate={summary['plan_cache_hit_rate']:.3f} "
        f"{summary['plan_cache']}",
        f"result_cache {summary['result_cache']}",
        f"admission {summary['admission']}",
    ])
