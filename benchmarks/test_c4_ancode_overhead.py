"""C4 -- §3 claim: AN-code hardening costs 1.1x-1.6x while detecting flips.

"[Kolditz et al.] error detection is efficiently implemented through the
use of AN codes, resulting in resilience against random bit flips in the
data while operating between 1.1x and 1.6x slower."

The bench aggregates a large integer column three ways:

* plain NumPy sum (no protection);
* AN-coded sum with end-to-end verification;
* AN-coded sum with corrupted memory -- must raise, never return garbage.
"""

import time

import numpy as np
import pytest

from conftest import record_experiment

import repro
from repro.resilience import ANCodedVector, inject_bit_flips
from repro.types import BIGINT, Vector

ROWS = 4_000_000


def build():
    rng = np.random.default_rng(12)
    values = rng.integers(0, 10_000, ROWS).astype(np.int64)
    return values, ANCodedVector(Vector.from_numpy(values, BIGINT))


def test_plain_sum(benchmark):
    values, _ = build()
    total = benchmark(lambda: int(values.sum()))
    assert total == int(values.sum())


def test_an_coded_sum(benchmark):
    _, coded = build()
    plain_total = int((coded.codes // coded.a).sum())
    total = benchmark(coded.checked_sum)
    assert total == plain_total


def test_c4_report(benchmark):
    values, coded = build()

    def measure():
        # Warm both paths once, then time medians of several rounds.
        rounds = 7
        plain_times = []
        coded_times = []
        for _ in range(rounds):
            started = time.perf_counter()
            plain = int(values.sum())
            plain_times.append(time.perf_counter() - started)
            started = time.perf_counter()
            checked = coded.checked_sum()
            coded_times.append(time.perf_counter() - started)
            assert plain == checked
        return sorted(plain_times)[rounds // 2], sorted(coded_times)[rounds // 2]

    plain_s, coded_s = benchmark.pedantic(measure, rounds=1, iterations=1)
    overhead = coded_s / plain_s

    # Detection: flip random bits, verify the checked sum always raises.
    detected = 0
    trials = 25
    for trial in range(trials):
        corrupted = ANCodedVector(Vector.from_numpy(values.copy(),
                                                    coded.dtype))
        corrupted.codes = inject_bit_flips(corrupted.codes, 1, seed=trial)
        try:
            corrupted.checked_sum()
        except repro.CorruptionError:
            detected += 1

    record_experiment("C4", "AN-code hardening overhead & detection "
                            "(paper §3, Kolditz et al.)", [
        f"column: {ROWS:,} BIGINT values",
        f"plain sum                : {plain_s * 1000:7.2f} ms",
        f"AN-coded verified sum    : {coded_s * 1000:7.2f} ms",
        f"overhead factor          : {overhead:7.2f}x  "
        f"(paper reports 1.1x-1.6x)",
        f"single-bit-flip detection: {detected}/{trials} trials detected "
        f"(must be {trials}/{trials})",
    ])
    assert detected == trials, "every single-bit flip must be detected"
    # Shape: the overhead is a CONSTANT factor (a fixed number of extra
    # vector passes), not asymptotic.  On the authors' C++ testbed with a
    # fused verify+aggregate kernel this lands at 1.1-1.6x; NumPy cannot
    # fuse the modulo pass into the sum, so the same design costs a larger
    # -- but still constant -- factor here (see EXPERIMENTS.md).
    assert overhead < 15.0
    assert overhead > 1.0
