"""Durability benchmark: the cost and speed of the ACID machinery.

The paper's premise: the script-and-CSV "zoo" has "nothing close to
transactional guarantees"; an embedded database must provide them without
making ingest impractical.  Measured here:

* commit cost: per-statement WAL-fsync'd inserts vs bulk appends vs an
  in-memory database (the durability tax, and how bulk operations amortize
  it -- the reason §2 demands bulk granularity);
* recovery speed: WAL replay throughput on reopen after a crash;
* checkpoint speed: folding the WAL into the single-file format.
"""

import os
import time

import numpy as np
import pytest

from conftest import record_experiment

import repro

BULK_ROWS = 100_000
SINGLETON_ROWS = 300


def test_bulk_append_durable(benchmark, tmp_path):
    path = str(tmp_path / "bulk.qdb")
    con = repro.connect(path, {"wal_autocheckpoint": 0,
                               "checkpoint_on_close": False})
    con.execute("CREATE TABLE t (a INTEGER, b DOUBLE)")
    rng = np.random.default_rng(0)
    arrays = {"a": np.arange(BULK_ROWS, dtype=np.int32),
              "b": rng.normal(size=BULK_ROWS)}

    def bulk():
        with con.appender("t") as appender:
            appender.append_numpy(arrays)

    benchmark.pedantic(bulk, rounds=3, iterations=1)
    con.close()


def test_durability_report(benchmark, tmp_path):
    def measure():
        results = {}
        rng = np.random.default_rng(1)
        arrays = {"a": np.arange(BULK_ROWS, dtype=np.int32),
                  "b": rng.normal(size=BULK_ROWS)}

        # 1. Bulk append, durable (one WAL commit group + fsync).
        path = str(tmp_path / "durable.qdb")
        con = repro.connect(path, {"wal_autocheckpoint": 0,
                                   "checkpoint_on_close": False})
        con.execute("CREATE TABLE t (a INTEGER, b DOUBLE)")
        started = time.perf_counter()
        with con.appender("t") as appender:
            appender.append_numpy(arrays)
        results["bulk_durable"] = time.perf_counter() - started
        wal_bytes = con.database.storage.wal.size()

        # 2. Singleton durable inserts: one fsync'd commit per row.
        started = time.perf_counter()
        for index in range(SINGLETON_ROWS):
            con.execute("INSERT INTO t VALUES (?, 0.0)", [index])
        singleton_s = time.perf_counter() - started
        results["singleton_per_row"] = singleton_s / SINGLETON_ROWS

        # 3. Recovery: crash (no checkpoint) and replay the WAL.
        database = con.database
        database.storage.wal.close()
        database.storage.block_file.close()
        started = time.perf_counter()
        recovered = repro.connect(path, {"checkpoint_on_close": False})
        results["replay"] = time.perf_counter() - started
        count = recovered.query_value("SELECT count(*) FROM t")
        assert count == BULK_ROWS + SINGLETON_ROWS

        # 4. Checkpoint: fold everything into the single file.
        started = time.perf_counter()
        recovered.execute("CHECKPOINT")
        results["checkpoint"] = time.perf_counter() - started
        recovered.close()

        # 5. The same bulk append on an in-memory database (no WAL).
        memory = repro.connect()
        memory.execute("CREATE TABLE t (a INTEGER, b DOUBLE)")
        started = time.perf_counter()
        with memory.appender("t") as appender:
            appender.append_numpy(arrays)
        results["bulk_memory"] = time.perf_counter() - started
        memory.close()
        return results, wal_bytes

    results, wal_bytes = benchmark.pedantic(measure, rounds=1, iterations=1)
    durability_tax = results["bulk_durable"] / results["bulk_memory"]
    record_experiment("D1", "Durability: WAL commit, replay, checkpoint", [
        f"bulk append {BULK_ROWS:,} rows, in-memory    : "
        f"{results['bulk_memory'] * 1000:8.1f} ms",
        f"bulk append {BULK_ROWS:,} rows, WAL + fsync  : "
        f"{results['bulk_durable'] * 1000:8.1f} ms "
        f"({durability_tax:.1f}x durability tax, {wal_bytes:,} WAL bytes)",
        f"singleton durable INSERT (per statement)  : "
        f"{results['singleton_per_row'] * 1000:8.2f} ms "
        "(one fsync'd commit each)",
        f"crash recovery (WAL replay, all rows)     : "
        f"{results['replay'] * 1000:8.1f} ms",
        f"checkpoint (fold WAL into data file)      : "
        f"{results['checkpoint'] * 1000:8.1f} ms",
    ])
    # Shape: bulk durability costs a small factor; per-row commits cost
    # orders of magnitude more per row -- the paper's bulk-granularity
    # argument applied to the write-ahead log.
    per_row_bulk = results["bulk_durable"] / BULK_ROWS
    assert results["singleton_per_row"] > per_row_bulk * 50
    assert results["replay"] < 10.0
