"""Quickstart: the embedded analytical database in five minutes.

Covers the core loop of the paper's target user -- a data scientist running
medium-sized analysis on their own machine: create tables, bulk-load data,
run OLAP queries, and pull results into NumPy without any server setup.

Run with::

    python examples/quickstart.py
"""

import os
import tempfile

import numpy as np

import repro


def main() -> None:
    # ------------------------------------------------------------------
    # 1. In-memory database: zero setup, lives inside this process.
    # ------------------------------------------------------------------
    con = repro.connect()

    con.execute("""
        CREATE TABLE observations (
            station   VARCHAR NOT NULL,
            day       DATE,
            temp_c    DOUBLE,
            humidity  DOUBLE
        )
    """)
    con.execute("""
        INSERT INTO observations VALUES
            ('AMS', CAST('2024-01-01' AS DATE), 4.2, 0.93),
            ('AMS', CAST('2024-01-02' AS DATE), 5.1, 0.88),
            ('ROT', CAST('2024-01-01' AS DATE), 4.8, 0.90),
            ('ROT', CAST('2024-01-02' AS DATE), NULL, 0.85),
            ('UTR', CAST('2024-01-01' AS DATE), 3.9, NULL)
    """)

    # Standard analytical SQL: aggregation, grouping, ordering.
    print("Average temperature per station:")
    for station, average, count in con.execute("""
        SELECT station, avg(temp_c) AS avg_temp, count(temp_c) AS n
        FROM observations
        GROUP BY station
        ORDER BY avg_temp DESC
    """):
        print(f"  {station}: {average} ({count} readings)")

    # ------------------------------------------------------------------
    # 2. Bulk append through the Appender -- no per-row SQL overhead.
    # ------------------------------------------------------------------
    rng = np.random.default_rng(0)
    n = 100_000
    with con.appender("observations") as appender:
        appender.append_numpy({
            "station": np.array(["GEN"] * n, dtype=object),
            "day": np.zeros(n, dtype=np.int32),        # days since epoch
            "temp_c": rng.normal(10, 5, n),
            "humidity": rng.uniform(0.3, 1.0, n),
        })
    print(f"\nRows after bulk append: "
          f"{con.query_value('SELECT count(*) FROM observations'):,}")

    # ------------------------------------------------------------------
    # 3. Zero-copy transfer out: whole columns as NumPy arrays.
    # ------------------------------------------------------------------
    arrays = con.execute("""
        SELECT temp_c, humidity FROM observations WHERE station = 'GEN'
    """).fetch_numpy()
    correlation = np.corrcoef(arrays["temp_c"], arrays["humidity"])[0, 1]
    print(f"Temp/humidity correlation (computed in NumPy): {correlation:+.4f}")

    # ------------------------------------------------------------------
    # 4. Persistence: a single file plus a WAL, ACID across restarts.
    # ------------------------------------------------------------------
    path = os.path.join(tempfile.mkdtemp(), "weather.qdb")
    disk = repro.connect(path)
    disk.execute("CREATE TABLE summary AS "
                 "SELECT 'demo' AS run, 42 AS answer")
    disk.close()  # checkpoints into the single file

    disk = repro.connect(path)
    print(f"\nReloaded from {path}:",
          disk.execute("SELECT * FROM summary").fetchall())
    disk.close()
    os.remove(path)

    con.close()


if __name__ == "__main__":
    main()
