"""The dashboard scenario: concurrent ETL writers + OLAP readers (paper §2).

*"Concurrent data modification is common in dashboard-scenarios where
multiple threads update the data using ETL queries while other threads run
the OLAP queries that drive visualizations."*

One thread continuously ingests new events and periodically recodes bad
values (the ETL side); several reader threads concurrently refresh
"dashboard tiles" (aggregation queries).  MVCC guarantees every tile
renders from a consistent snapshot -- no torn aggregates, no blocking.

Run with::

    python examples/dashboard.py
"""

import random
import threading
import time

import numpy as np

import repro

RUN_SECONDS = 3.0


def ingest_worker(con: "repro.client.connection.Connection",
                  stop: threading.Event, stats: dict) -> None:
    """Appends event batches and periodically recodes sentinels (ETL)."""
    local = con.duplicate()
    rng = np.random.default_rng(1)
    batch_id = 0
    while not stop.is_set():
        n = 2000
        with local.appender("events") as appender:
            appender.append_numpy({
                "region": rng.integers(0, 8, n).astype(np.int32),
                "amount": np.where(rng.random(n) < 0.1, -999,
                                   rng.integers(1, 500, n)).astype(np.int32),
                "batch": np.full(n, batch_id, dtype=np.int32),
            })
        stats["rows_ingested"] += n
        # ETL pass: the paper's sentinel recoding, as a bulk update.
        local.execute("UPDATE events SET amount = NULL "
                      "WHERE amount = -999 AND batch = ?", [batch_id])
        stats["etl_updates"] += 1
        batch_id += 1
    local.close()


def dashboard_tile(con, stop: threading.Event, stats: dict,
                   failures: list) -> None:
    """Refreshes an aggregate 'tile'; checks snapshot consistency."""
    local = con.duplicate()
    while not stop.is_set():
        rows = local.execute("""
            SELECT region, count(*) AS events, sum(amount) AS revenue
            FROM events GROUP BY region ORDER BY region
        """).fetchall()
        # Consistency invariant: recoded batches contain no -999 anymore,
        # and a snapshot never shows a half-recoded batch for committed data.
        bad = local.query_value(
            "SELECT count(*) FROM events WHERE amount = -999 "
            "AND batch < (SELECT max(batch) FROM events)")
        if bad and bad > 0:
            # Only the newest (possibly not yet recoded) batch may have -999.
            failures.append(bad)
        stats["tiles_rendered"] += 1
    local.close()


def main() -> None:
    con = repro.connect()
    con.execute("""
        CREATE TABLE events (
            region INTEGER,
            amount INTEGER,
            batch  INTEGER
        )
    """)

    stop = threading.Event()
    stats = {"rows_ingested": 0, "etl_updates": 0, "tiles_rendered": 0}
    failures: list = []

    writer = threading.Thread(target=ingest_worker, args=(con, stop, stats))
    readers = [threading.Thread(target=dashboard_tile,
                                args=(con, stop, stats, failures))
               for _ in range(3)]
    writer.start()
    for reader in readers:
        reader.start()
    time.sleep(RUN_SECONDS)
    stop.set()
    writer.join()
    for reader in readers:
        reader.join()

    print(f"Ran dashboard scenario for {RUN_SECONDS:.0f}s:")
    print(f"  rows ingested        : {stats['rows_ingested']:,}")
    print(f"  bulk ETL updates     : {stats['etl_updates']}")
    print(f"  dashboard refreshes  : {stats['tiles_rendered']}")
    print(f"  consistency failures : {len(failures)} (must be 0)")

    print("\nFinal dashboard state (with window-function ranking):")
    for region, events, revenue, rank, share in con.execute("""
        SELECT region, events, revenue,
               rank() OVER (ORDER BY revenue DESC) AS rnk,
               revenue * 100.0 / sum(revenue) OVER () AS pct
        FROM (SELECT region, count(*) AS events, sum(amount) AS revenue
              FROM events GROUP BY region) per_region
        ORDER BY region
    """):
        print(f"  region {region}: {events:6d} events, revenue {revenue} "
              f"(rank {rank}, {share:.1f}% of total)")

    assert not failures, "MVCC snapshot consistency was violated!"
    con.close()


if __name__ == "__main__":
    main()
