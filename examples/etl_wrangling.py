"""ETL / data-wrangling inside the database (paper §2).

The paper's motivating ETL scenario end to end:

1. scan raw CSV files directly with SQL (no manual loading step);
2. recode sentinel values -- the paper's own example,
   ``UPDATE t SET d = NULL WHERE d = -999``, run as a *bulk* update;
3. unit conversions as bulk column updates;
4. append the cleaned result to a persistent table, transactionally;
5. export a derived dataset back to CSV.

Everything happens out-of-core-capable and with transactional guarantees --
the contrast to the "zoo of one-off scripts" the paper describes.

Run with::

    python examples/etl_wrangling.py
"""

import csv
import os
import random
import tempfile

import repro


def generate_raw_csv(path: str, rows: int = 50_000) -> None:
    """Synthesize a messy sensor dump: -999 sentinels, odd units, dupes."""
    random.seed(17)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["sensor_id", "reading_f", "battery_mv", "status"])
        for index in range(rows):
            reading_f = round(random.uniform(30, 110), 2)
            if random.random() < 0.15:
                reading_f = -999          # missing encoded as a sentinel
            battery = random.randint(2800, 4200)
            if random.random() < 0.05:
                battery = -999
            status = random.choice(["ok", "ok", "ok", "degraded", "offline"])
            writer.writerow([index % 500, reading_f, battery, status])


def main() -> None:
    workdir = tempfile.mkdtemp()
    raw_csv = os.path.join(workdir, "sensor_dump.csv")
    database_file = os.path.join(workdir, "sensors.qdb")
    generate_raw_csv(raw_csv)

    con = repro.connect(database_file)

    # ------------------------------------------------------------------
    # Step 1+2: scan the CSV directly and load it into a persistent table.
    # The file never needs a separate "import" tool.
    # ------------------------------------------------------------------
    con.execute(f"""
        CREATE TABLE readings AS
        SELECT sensor_id, reading_f, battery_mv, status
        FROM '{raw_csv}'
    """)
    total = con.query_value("SELECT count(*) FROM readings")
    print(f"Loaded {total:,} raw rows straight from CSV")

    # ------------------------------------------------------------------
    # Step 3: bulk sentinel recoding -- the paper's exact UPDATE pattern.
    # These touch ~15% / ~5% of a column: bulk updates, not OLTP writes.
    # ------------------------------------------------------------------
    recoded = con.execute(
        "UPDATE readings SET reading_f = NULL WHERE reading_f = -999").rowcount
    print(f"Recoded {recoded:,} missing temperature sentinels to NULL")
    recoded = con.execute(
        "UPDATE readings SET battery_mv = NULL WHERE battery_mv = -999").rowcount
    print(f"Recoded {recoded:,} missing battery sentinels to NULL")

    # Step 4: unit conversion as a bulk column update (F -> C).
    con.execute("""
        UPDATE readings SET reading_f = (reading_f - 32.0) * 5.0 / 9.0
        WHERE reading_f IS NOT NULL
    """)
    print("Converted temperatures to Celsius in place")

    # ------------------------------------------------------------------
    # Step 5: analysis over the cleaned data.
    # ------------------------------------------------------------------
    print("\nPer-status data quality report:")
    report = con.execute("""
        SELECT status,
               count(*)                             AS rows,
               count(reading_f)                     AS with_temp,
               round(avg(reading_f), 2)             AS avg_temp_c,
               round(avg(battery_mv), 0)            AS avg_battery
        FROM readings
        GROUP BY status
        ORDER BY rows DESC
    """)
    for row in report:
        print("  ", row)

    # The whole pipeline was transactional: a failed step would roll back.
    con.execute("BEGIN")
    con.execute("DELETE FROM readings WHERE status = 'offline'")
    print("\nOffline rows inside transaction:",
          con.query_value("SELECT count(*) FROM readings WHERE "
                          "status = 'offline'"))
    con.execute("ROLLBACK")
    print("After rollback:",
          con.query_value("SELECT count(*) FROM readings WHERE "
                          "status = 'offline'"))

    # Step 6: export a derived dataset for a downstream tool.
    export_path = os.path.join(workdir, "per_sensor.csv")
    con.execute(f"""
        COPY (SELECT sensor_id, avg(reading_f) AS avg_c,
                     min(battery_mv) AS min_battery
              FROM readings GROUP BY sensor_id)
        TO '{export_path}'
    """)
    print(f"\nExported per-sensor aggregates to {export_path}")
    con.close()

    # Everything persisted in one file: reopen and verify.
    con = repro.connect(database_file)
    print("Reopened database; cleaned rows:",
          f"{con.query_value('SELECT count(*) FROM readings'):,}")
    con.close()


if __name__ == "__main__":
    main()
