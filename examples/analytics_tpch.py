"""A TPC-H-flavoured analytical workload on the embedded engine.

The paper (§2): OLAP workloads in embedded analytics look like warehouse
workloads -- "large table scans and involve multiple aggregates and complex
join graphs. The workloads also typically only target a subset of the
columns of a large table."

This example generates a scaled-down TPC-H-like schema (customer, orders,
lineitem) in memory and runs three classic query shapes:

* Q1  -- pricing summary: full scan, many aggregates, tiny group count;
* Q6  -- forecast revenue: selective scan with range predicates;
* Q3  -- shipping priority: 3-way join + aggregation + top-N.

Run with::

    python examples/analytics_tpch.py
"""

import time

import numpy as np

import repro

SCALE_LINEITEM = 300_000
SCALE_ORDERS = 75_000
SCALE_CUSTOMER = 7_500


def load(con: "repro.client.connection.Connection") -> None:
    rng = np.random.default_rng(1992)

    con.execute("""
        CREATE TABLE customer (
            c_custkey INTEGER NOT NULL,
            c_mktsegment VARCHAR
        )
    """)
    segments = np.array(["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD",
                         "MACHINERY"], dtype=object)
    with con.appender("customer") as appender:
        appender.append_numpy({
            "c_custkey": np.arange(SCALE_CUSTOMER, dtype=np.int32),
            "c_mktsegment": segments[rng.integers(0, 5, SCALE_CUSTOMER)],
        })

    con.execute("""
        CREATE TABLE orders (
            o_orderkey INTEGER NOT NULL,
            o_custkey INTEGER,
            o_orderdate DATE
        )
    """)
    base_day = 9131  # 1995-01-01 in days since epoch
    with con.appender("orders") as appender:
        appender.append_numpy({
            "o_orderkey": np.arange(SCALE_ORDERS, dtype=np.int32),
            "o_custkey": rng.integers(0, SCALE_CUSTOMER,
                                      SCALE_ORDERS).astype(np.int32),
            "o_orderdate": (base_day + rng.integers(-365, 365, SCALE_ORDERS)
                            ).astype(np.int32),
        })

    con.execute("""
        CREATE TABLE lineitem (
            l_orderkey INTEGER NOT NULL,
            l_quantity DOUBLE,
            l_extendedprice DOUBLE,
            l_discount DOUBLE,
            l_tax DOUBLE,
            l_returnflag VARCHAR,
            l_linestatus VARCHAR,
            l_shipdate DATE
        )
    """)
    flags = np.array(["A", "N", "R"], dtype=object)
    status = np.array(["F", "O"], dtype=object)
    with con.appender("lineitem") as appender:
        appender.append_numpy({
            "l_orderkey": rng.integers(0, SCALE_ORDERS,
                                       SCALE_LINEITEM).astype(np.int32),
            "l_quantity": rng.integers(1, 51, SCALE_LINEITEM).astype(float),
            "l_extendedprice": rng.uniform(900, 105_000, SCALE_LINEITEM),
            "l_discount": rng.integers(0, 11, SCALE_LINEITEM) / 100.0,
            "l_tax": rng.integers(0, 9, SCALE_LINEITEM) / 100.0,
            "l_returnflag": flags[rng.integers(0, 3, SCALE_LINEITEM)],
            "l_linestatus": status[rng.integers(0, 2, SCALE_LINEITEM)],
            "l_shipdate": (base_day + rng.integers(-400, 400, SCALE_LINEITEM)
                           ).astype(np.int32),
        })


Q1 = """
    SELECT l_returnflag, l_linestatus,
           sum(l_quantity)                                       AS sum_qty,
           sum(l_extendedprice)                                  AS sum_base,
           sum(l_extendedprice * (1 - l_discount))               AS sum_disc,
           sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
           avg(l_quantity)                                       AS avg_qty,
           avg(l_extendedprice)                                  AS avg_price,
           avg(l_discount)                                       AS avg_disc,
           count(*)                                              AS count_order
    FROM lineitem
    WHERE l_shipdate <= CAST('1995-09-02' AS DATE)
    GROUP BY l_returnflag, l_linestatus
    ORDER BY l_returnflag, l_linestatus
"""

Q6 = """
    SELECT sum(l_extendedprice * l_discount) AS revenue
    FROM lineitem
    WHERE l_shipdate >= CAST('1995-01-01' AS DATE)
      AND l_shipdate < CAST('1996-01-01' AS DATE)
      AND l_discount BETWEEN 0.05 AND 0.07
      AND l_quantity < 24
"""

Q3 = """
    SELECT l_orderkey,
           sum(l_extendedprice * (1 - l_discount)) AS revenue,
           o_orderdate
    FROM customer
    JOIN orders ON c_custkey = o_custkey
    JOIN lineitem ON l_orderkey = o_orderkey
    WHERE c_mktsegment = 'BUILDING'
      AND o_orderdate < CAST('1995-03-15' AS DATE)
      AND l_shipdate > CAST('1995-03-15' AS DATE)
    GROUP BY l_orderkey, o_orderdate
    ORDER BY revenue DESC
    LIMIT 10
"""


def main() -> None:
    con = repro.connect()
    print("Loading TPC-H-like data "
          f"(lineitem={SCALE_LINEITEM:,}, orders={SCALE_ORDERS:,}, "
          f"customer={SCALE_CUSTOMER:,}) ...")
    load(con)

    for name, sql in (("Q1 pricing summary", Q1),
                      ("Q6 forecast revenue", Q6),
                      ("Q3 shipping priority", Q3)):
        started = time.perf_counter()
        rows = con.execute(sql).fetchall()
        elapsed = (time.perf_counter() - started) * 1000
        print(f"\n{name} ({elapsed:.1f} ms):")
        for row in rows[:5]:
            print("  ", row)
        if len(rows) > 5:
            print(f"   ... {len(rows) - 5} more rows")
    con.close()


if __name__ == "__main__":
    main()
