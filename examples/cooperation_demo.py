"""Cooperative resource usage: a live Figure 1 (paper §4/§6).

A simulated co-resident application ramps its RAM usage up and back down
while the database keeps running aggregation queries.  The reactive
controller watches total memory pressure and moves the engine's
intermediate compression through NONE -> LIGHT -> HEAVY and back --
trading DBMS CPU cycles for machine-wide RAM headroom, exactly the pattern
sketched in the paper's Figure 1.

Run with::

    python examples/cooperation_demo.py
"""

import numpy as np

import repro
from repro.cooperation import SimulatedApplication
from repro.storage.compression import CompressionLevel

MB = 1 << 20
TOTAL_RAM = 1024 * MB


class StepClock:
    """A manual clock so the demo is deterministic."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def main() -> None:
    # The demo re-runs one query under changing memory pressure; the result
    # cache would serve it without executing, so turn it off -- we want the
    # engine to re-plan its compression choice on every run.
    con = repro.connect(config={"result_cache_entries": 0})
    con.execute("CREATE TABLE readings (sensor INTEGER, value DOUBLE)")
    rng = np.random.default_rng(5)
    n = 200_000
    with con.appender("readings") as appender:
        appender.append_numpy({
            "sensor": rng.integers(0, 50, n).astype(np.int32),
            "value": rng.normal(100, 15, n),
        })

    # The co-resident application: idle, then a memory-hungry burst, then
    # a full-blown spike, then back to idle (Figure 1's RAM curve).
    clock = StepClock()
    app = SimulatedApplication([
        (4.0, 100 * MB, 0.1),    # idle
        (4.0, 600 * MB, 0.4),    # busy
        (4.0, 900 * MB, 0.8),    # spike
        (4.0, 300 * MB, 0.2),    # recovering
        (4.0, 100 * MB, 0.1),    # idle again
    ], clock=clock)
    controller = con.database.enable_reactive_resources(TOTAL_RAM, app,
                                                        clock=clock)

    level_names = {CompressionLevel.NONE: "none",
                   CompressionLevel.LIGHT: "light",
                   CompressionLevel.HEAVY: "HEAVY"}
    print(f"{'t':>4} {'app RAM':>9} {'pressure':>9} {'compression':>12} "
          f"{'dbms intermediates':>20}")

    query = ("SELECT sensor, avg(value), count(*) FROM readings "
             "GROUP BY sensor")
    for step in range(10):
        clock.now = step * 2.0
        result = con.execute(query)
        rows = result.fetchall()
        assert len(rows) == 50
        decision = controller.decisions[-1]
        _, sample, level = decision
        bar = "#" * int(sample.ram_pressure * 20)
        print(f"{clock.now:4.0f} {sample.app_ram // MB:7d}MB "
              f"{sample.ram_pressure:9.2f} {level_names[level]:>12} {bar}")

    levels_seen = {level for _, _, level in controller.decisions}
    print("\ncompression levels exercised:",
          sorted(level_names[level] for level in levels_seen))
    assert CompressionLevel.HEAVY in levels_seen
    assert CompressionLevel.NONE in levels_seen
    print("The engine escalated to heavy compression during the spike and "
          "relaxed afterwards - Figure 1 reproduced.")
    con.close()


if __name__ == "__main__":
    main()
