"""Resilience on unreliable consumer hardware (paper §3/§6).

Demonstrates each layer of the defense the paper calls for:

1. **Block checksums** -- flip one bit in the database file; the engine
   refuses to serve corrupted data instead of silently returning garbage.
2. **AN-coded in-memory data** -- flip a bit in RAM-resident data; the
   divisibility check catches it during aggregation.
3. **Moving-inversions memtests in the buffer manager** -- allocate buffers
   from a simulated broken DIMM; the bad region is quarantined and avoided.
4. **The failure model behind it all** -- the Table 1 rates showing why an
   embedded database must assume consumer hardware fails.

Run with::

    python examples/resilience_demo.py
"""

import os
import random
import tempfile

import numpy as np

import repro
from repro.config import DatabaseConfig
from repro.resilience import (
    ANCodedVector,
    FaultyMemory,
    FleetSimulator,
    inject_bit_flips,
    moving_inversions,
)
from repro.storage.buffer_manager import BufferManager
from repro.types import Vector


def demo_block_checksums() -> None:
    print("=== 1. Block checksums detect on-disk bit flips ===")
    path = os.path.join(tempfile.mkdtemp(), "fragile.qdb")
    con = repro.connect(path)
    con.execute("CREATE TABLE balances AS SELECT 1 AS account, 1000 AS cents")
    con.close()

    # A cosmic ray / failing disk flips one bit inside the data file.
    size = os.path.getsize(path)
    random.seed(4)
    with open(path, "r+b") as handle:
        offset = random.randrange(8192 + 16, size)
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0x10]))
    print(f"  flipped one bit at file offset {offset}")

    try:
        con = repro.connect(path)
        con.execute("SELECT * FROM balances").fetchall()
        print("  !! corruption went UNDETECTED (should not happen)")
        con.close()
    except repro.CorruptionError as error:
        print(f"  detected: {error}")
    os.remove(path)


def demo_an_codes() -> None:
    print("\n=== 2. AN codes detect in-memory bit flips ===")
    values = Vector.from_values(list(range(1_000_000)))
    coded = ANCodedVector(values)
    print(f"  checked sum over encoded data: {coded.checked_sum():,}")

    coded.codes = inject_bit_flips(coded.codes, count=1, seed=9)
    print("  injected a single bit flip into resident memory")
    try:
        coded.checked_sum()
        print("  !! flip went UNDETECTED")
    except repro.CorruptionError as error:
        print(f"  detected: {error}")


def demo_buffer_memtests() -> None:
    print("\n=== 3. Buffer-manager memtests quarantine broken regions ===")
    arena = FaultyMemory(1 << 20, seed=3)
    bad_count = arena.inject_stuck_region(64 * 1024, 8 * 1024,
                                          faults_per_kib=4)
    print(f"  simulated DIMM with {bad_count} stuck bits in an 8 KiB region")

    manager = BufferManager(DatabaseConfig(buffer_memtest=True), arena=arena)
    buffers = [manager.allocate_buffer(32 * 1024) for _ in range(6)]
    print(f"  allocated {len(buffers)} buffers; "
          f"{len(manager.quarantined)} region(s) quarantined")
    for buffer in buffers:
        for bad_start, bad_end in manager.quarantined:
            assert not (buffer.arena_offset < bad_end
                        and bad_start < buffer.arena_offset + buffer.size)
    print("  no buffer overlaps a quarantined range")

    report = moving_inversions(arena, 64 * 1024, 8 * 1024)
    print(f"  direct memtest of the bad region: {report!r}")


def demo_failure_model() -> None:
    print("\n=== 4. Why bother? The paper's Table 1, re-derived ===")
    report = FleetSimulator(seed=21).run(machines=300_000, windows=2)
    print(f"  {'Failure':<16}{'Pr[1st failure]':>18}{'Pr[2nd | 1st]':>16}")
    for label, first, again in report.as_table():
        first_text = f"1 in {1 / first:.0f}" if first else "n/a"
        again_text = f"1 in {1 / again:.1f}" if again else "n/a"
        print(f"  {label:<16}{first_text:>18}{again_text:>16}")
    print(f"  silent failures in window 1: {report.silent_failures} "
          f"(vs {report.detected_failures} self-detected)")


def main() -> None:
    demo_block_checksums()
    demo_an_codes()
    demo_buffer_memtests()
    demo_failure_model()


if __name__ == "__main__":
    main()
